#!/usr/bin/env bash
# End-to-end exercise of `noxsim serve`: a real daemon process, real
# signals, and a real kill -9 — the scenarios the in-process chaos
# suite cannot stage. CI runs this as the scripted leg of the serve
# job; it is also runnable locally:
#
#   cargo build --release -p nox
#   scripts/serve_e2e.sh
#
# Override the binary with NOXSIM=/path/to/noxsim.
set -euo pipefail

NOXSIM="${NOXSIM:-target/release/noxsim}"
if [ ! -x "$NOXSIM" ]; then
    echo "error: $NOXSIM not built (cargo build --release -p nox)" >&2
    exit 1
fi

workdir="$(mktemp -d)"
sock="$workdir/nox.sock"
cache="$workdir/cache"
daemon_pid=""

cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

start_daemon() {
    "$NOXSIM" serve --socket "$sock" --cache-dir "$cache" --queue-cap 4 &
    daemon_pid=$!
    # Wait for the socket to come up.
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.1
    done
    echo "FAIL: daemon socket never appeared" >&2
    exit 1
}

client() {
    "$NOXSIM" client "$1" --socket "$sock"
}

SWEEP_A='{"req":"sweep","arch":"nox","rates":[500,1000],"len":1,"seed":7,"tier":"smoke","id":"a"}'
SWEEP_B='{"req":"sweep","arch":"acc","rates":[800],"len":1,"seed":9,"tier":"smoke","id":"b"}'

echo "== start daemon =="
start_daemon

echo "== two concurrent clients =="
client "$SWEEP_A" > "$workdir/a.out" &
pid_a=$!
client "$SWEEP_B" > "$workdir/b.out" &
pid_b=$!
wait "$pid_a" "$pid_b"
grep -q '"event":"result"' "$workdir/a.out"
grep -q '"event":"result"' "$workdir/b.out"
grep -q '"cached":false' "$workdir/a.out"
# Live progress streamed to the requesting client.
grep -q '"event":"stage"' "$workdir/a.out"

echo "== repeated request is an observable cache hit =="
client "$SWEEP_A" > "$workdir/a2.out"
grep -q '"event":"cache_hit"' "$workdir/a2.out"
grep -q '"cached":true' "$workdir/a2.out"
# The cached artifact is byte-identical to the computed one.
art1="$(grep '"event":"result"' "$workdir/a.out" | sed 's/.*"artifact"://;s/}$//')"
art2="$(grep '"event":"result"' "$workdir/a2.out" | sed 's/.*"artifact"://;s/}$//')"
[ "$art1" = "$art2" ] || { echo "FAIL: cached artifact differs from computed" >&2; exit 1; }

echo "== SIGTERM drains gracefully and exits 0 =="
kill -TERM "$daemon_pid"
wait "$daemon_pid"
rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || { echo "FAIL: drain exited $rc" >&2; exit 1; }
[ ! -S "$sock" ] || { echo "FAIL: socket not removed on drain" >&2; exit 1; }

echo "== kill -9, then restart recovers the cache =="
start_daemon
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
start_daemon
client "$SWEEP_A" > "$workdir/a3.out"
grep -q '"event":"cache_hit"' "$workdir/a3.out"
grep -q '"cached":true' "$workdir/a3.out"

echo "== malformed line is shed, daemon survives =="
if client 'this is not json' > "$workdir/bad.out" 2>&1; then
    echo "FAIL: malformed request exited 0" >&2
    exit 1
fi
grep -q 'bad_request' "$workdir/bad.out"
client '{"req":"ping","id":"still-alive"}' > "$workdir/ping.out"
grep -q '"event":"pong"' "$workdir/ping.out"

echo "== final drain =="
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

echo "serve e2e: all scenarios passed"
