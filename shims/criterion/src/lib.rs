//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io, so the `bench` crate
//! links against this minimal harness instead: same macro and builder
//! surface (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `benchmark_group` + `bench_with_input`), but measurement is a plain
//! calibrated wall-clock loop printing mean ns/iteration — no warm-up
//! statistics, outlier analysis, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle passed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named family of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's loop is self-calibrating
    /// and does not take discrete samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one parameterless benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (no-op; prints happen per benchmark).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Measures one closure; created by the harness, driven by `iter`.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count until the measurement
    /// window is long enough to trust (≥ ~20 ms or 10M iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (fills caches, triggers lazy init).
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total_time += start.elapsed();
            total_iters += batch;
            if total_time >= Duration::from_millis(20) || total_iters >= 10_000_000 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.iters = total_iters;
        self.elapsed = total_time;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<40} (no measurement)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!("bench {name:<40} {ns:>12.1} ns/iter ({} iters)", self.iters);
    }
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`] handle.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("nox").0, "nox");
    }
}
