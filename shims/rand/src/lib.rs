//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact subset* of the `rand 0.8` API its members use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods [`Rng::gen_bool`] and [`Rng::gen_range`]
//! over integer and `f64` ranges.
//!
//! The generator is xoshiro256** seeded through splitmix64 — fast,
//! well-distributed, and fully deterministic per seed, which is all the
//! simulator's reproducible traffic generation requires. It is **not**
//! the same stream as upstream `StdRng` (ChaCha12), so absolute numbers
//! in seeded experiments differ from runs against the real crate; every
//! in-repo baseline was produced with this generator.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed through splitmix64, as the xoshiro authors
            // recommend, so nearby seeds yield unrelated streams.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Uniform-range sampling support, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// See [`uniform::SampleRange`].
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce a uniformly distributed value.
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end - self.start) as u64;
                        self.start + (rng.next_u64() % span) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi - lo) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo + (rng.next_u64() % (span + 1)) as $t
                    }
                }
            )*};
        }
        int_sample_range!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool needs p in [0, 1], got {p}"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i: u16 = rng.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_rng() {
        // `Pattern::dest` takes `&mut R` with `R: Rng + ?Sized`.
        fn sample(rng: &mut (dyn RngCore + '_)) -> usize {
            rng.gen_range(0..4)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample(&mut rng) < 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.gen_range(5..5);
    }
}
