//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of proptest's API its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple
//! strategies, [`strategy::Just`], `prop::collection::vec`,
//! `prop::bool::weighted`, `any::<T>()`, the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*!` macros, and a `cases`-only
//! [`test_runner::Config`].
//!
//! Semantics deliberately kept from the real crate:
//!
//! * each `#[test]` inside [`proptest!`] runs its body for `Config::cases`
//!   independently sampled inputs;
//! * sampling is **deterministic** — the RNG is seeded from the test's
//!   `module_path!() :: name` and the case index, so a failure reproduces
//!   exactly on re-run with no persistence files.
//!
//! Dropped (acceptable for an offline harness): input **shrinking** and
//! failure persistence. A failing case panics with the ordinary
//! `assert!` message; because sampling is deterministic it recurs on
//! every run until fixed.

/// Runner configuration; only `cases` is honoured.
pub mod test_runner {
    /// How many sampled inputs each property runs against.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases per property (default 256, like upstream).
        pub cases: u32,
    }

    impl Config {
        /// A config overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic RNG driving strategy sampling (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream for one test case from the test's identity.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `generate` samples a value
    /// directly and nothing shrinks.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length bounds for a collection strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::weighted`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&p),
            "weight must be in [0, 1], got {p}"
        );
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` against `Config::cases` sampled inputs.
///
/// An optional leading `#![proptest_config(expr)]` overrides the config
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases.max(1) {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                { $body }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec(0u32..100, 1..20);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn ranges_and_maps_compose() {
        let strat = (1usize..=4).prop_map(|n| n * 2);
        let mut rng = crate::test_runner::TestRng::for_case("m", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let strat = (2usize..5).prop_flat_map(|n| prop::collection::vec(Just(n), n));
        let mut rng = crate::test_runner::TestRng::for_case("fm", 1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.iter().all(|&x| x == v.len()));
        }
    }

    #[test]
    fn oneof_picks_only_listed_options() {
        let strat = prop_oneof![Just(1u16), Just(2), Just(9)];
        let mut rng = crate::test_runner::TestRng::for_case("o", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.iter().all(|v| [1, 2, 9].contains(v)));
        assert_eq!(seen.len(), 3, "all options should appear");
    }

    #[test]
    fn weighted_bool_hits_both_sides() {
        let strat = prop::bool::weighted(0.25);
        let mut rng = crate::test_runner::TestRng::for_case("w", 0);
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!((150..350).contains(&trues), "got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuple patterns, trailing commas.
        #[test]
        fn macro_accepts_full_grammar(
            v in prop::collection::vec(any::<u64>(), 0..8),
            (a, b) in (0u32..10, 0u32..10),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
