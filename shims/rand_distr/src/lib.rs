//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides exactly what the traffic generators use: the [`Distribution`]
//! trait and the exponential distribution [`Exp`], sampled by inverse
//! transform. See the `rand` shim for why this exists.

use rand::Rng;

/// Types that can sample values of `T` from an [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Exp::new`] for a non-positive or non-finite rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpError;

impl core::fmt::Display for ExpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "exponential distribution rate must be positive and finite"
        )
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)` with mean `1/λ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates the distribution, rejecting `rate <= 0` and non-finite rates.
    pub fn new(rate: f64) -> Result<Self, ExpError> {
        if rate > 0.0 && rate.is_finite() {
            Ok(Exp { rate })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: u uniform in (0, 1), -ln(1 - u) / λ.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.5).is_ok());
    }

    #[test]
    fn samples_are_positive_with_roughly_correct_mean() {
        let exp = Exp::new(0.5).unwrap(); // mean 2.0
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((1.8..2.2).contains(&mean), "mean {mean}");
    }
}
