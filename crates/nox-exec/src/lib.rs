//! Deterministic parallel execution for sweep-style workloads.
//!
//! Every harness in this workspace — figure sweeps, fault campaigns, the
//! bounded model checker — is a map over an indexed list of independent
//! simulation points. This crate runs that map across a `std::thread`
//! worker pool while guaranteeing that the *reduction is in submission
//! order*: the result vector is indexed by the position of the work item,
//! never by completion time. Any artifact derived by folding the result
//! vector left-to-right is therefore bit-identical at every thread count,
//! and `threads = 1` executes the exact same code path as the historical
//! serial loops.
//!
//! The same submission-order discipline extends to telemetry: when
//! profiling is on, each job's measurements are captured into a private
//! delta (`nox_telemetry::capture`) and absorbed back one job at a time,
//! in submission order — so a merged profile's *structure* is identical
//! at every thread count. When streaming is on, job-completion events
//! pass through an in-order cursor: a finished job is announced only
//! once every earlier job has been announced, making the event order on
//! the wire deterministic while staying live.
//!
//! The only dependency is `nox-telemetry` (itself `std`-only; the
//! workspace builds offline); workers are scoped threads, so borrowed
//! inputs work without `'static` bounds.
//!
//! # Example
//!
//! ```
//! use nox_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.map(0..10u64, |_, n| n * n);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! // Same bits at any thread count:
//! assert_eq!(squares, Executor::sequential().map(0..10u64, |_, n| n * n));
//! ```

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

use nox_telemetry::stream::Field;
use nox_telemetry::{phase, ProfileAcc, SpanEvent, Stopwatch};

/// A fixed-width worker pool that maps closures over indexed work lists
/// and reduces results in submission order.
///
/// The pool is cheap to construct (threads are scoped per call, not kept
/// alive between calls) — treat it as a value describing *how wide* to
/// fan out, created once near the CLI entry point and passed down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

/// What one job left behind besides its result: its telemetry delta and
/// its wall duration. Empty (and free) unless profiling or streaming is
/// on.
struct JobRecord {
    delta: Option<Box<ProfileAcc>>,
    dur_ns: u64,
}

/// The in-order completion cursor for stream events: job `i`'s event is
/// emitted only once jobs `0..i` have all been emitted, so the wire
/// order is by submission index at any thread count — live, but
/// deterministic.
struct Progress<'a> {
    stage: &'a str,
    total: usize,
    next: usize,
    done: Vec<Option<u64>>,
}

impl Progress<'_> {
    fn complete(&mut self, index: usize, dur_ns: u64) {
        self.done[index] = Some(dur_ns);
        while self.next < self.total {
            let Some(dur) = self.done[self.next] else {
                break;
            };
            nox_telemetry::stream::emit(
                "job",
                &[
                    ("stage", Field::Str(self.stage)),
                    ("index", Field::U64(self.next as u64)),
                    ("total", Field::U64(self.total as u64)),
                    ("ms", Field::F64(dur as f64 / 1e6)),
                ],
            );
            self.next += 1;
        }
    }
}

/// Runs one job, measuring it when `observe` is set: the job's telemetry
/// lands in a private capture delta (later absorbed in submission
/// order), annotated with its own `exec.job` span and queue-wait sample.
fn run_job<T, R>(
    f: &(impl Fn(usize, T) -> R + Sync),
    i: usize,
    item: T,
    observe: bool,
    wait_ns: u64,
) -> (R, JobRecord) {
    if !observe {
        return (
            f(i, item),
            JobRecord {
                delta: None,
                dur_ns: 0,
            },
        );
    }
    let start_ns = nox_telemetry::epoch_ns();
    let (result, mut delta) = nox_telemetry::capture(|| f(i, item));
    let dur_ns = nox_telemetry::epoch_ns().saturating_sub(start_ns);
    if nox_telemetry::profiling() {
        let d = delta.get_or_insert_with(|| Box::new(ProfileAcc::new()));
        d.add_span(phase::EXEC_JOB, dur_ns);
        d.push_event(SpanEvent {
            phase: phase::EXEC_JOB,
            index: i as u32,
            tid: nox_telemetry::thread_tag(),
            start_ns,
            dur_ns,
        });
        d.sample_ns("exec.job_ns", dur_ns);
        d.sample_ns("exec.queue_wait_ns", wait_ns);
    }
    (result, JobRecord { delta, dur_ns })
}

/// One job's panic, caught by [`Executor::try_map`]: the submission
/// index that panicked plus the stringified panic payload.
///
/// The payload keeps only its message (`&str` / `String` payloads are
/// preserved verbatim; anything else is summarized), because the boxed
/// payload itself is not `Sync` and callers only ever report it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// The panic message.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-worker tallies for the utilization gauges.
#[derive(Clone, Copy, Default)]
struct WorkerStats {
    jobs: u64,
    busy_ns: u64,
    wait_ns: u64,
}

impl WorkerStats {
    fn publish(&self, acc: &mut ProfileAcc, worker: usize) {
        acc.set_gauge(&format!("exec.worker.{worker}.jobs"), self.jobs);
        acc.set_gauge(&format!("exec.worker.{worker}.busy_ns"), self.busy_ns);
        acc.set_gauge(&format!("exec.worker.{worker}.wait_ns"), self.wait_ns);
    }
}

impl Executor {
    /// An executor that fans out over `threads` workers. A width of zero
    /// is clamped to one.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The single-threaded executor: runs every closure inline, in
    /// submission order, on the calling thread — byte-for-byte the
    /// historical serial behavior.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor as wide as the machine
    /// ([`std::thread::available_parallelism`]), falling back to one
    /// worker when the parallelism cannot be determined.
    pub fn available() -> Self {
        // Thread count only sizes the pool; `map`'s ordered reduction
        // keeps results identical at any width.
        Executor::new(available_parallelism()) // detlint: allow(thread_count)
    }

    /// Number of workers this executor fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results **in submission order**.
    ///
    /// `f` receives the submission index alongside the item. With more
    /// than one worker, closures run concurrently on scoped threads; the
    /// result vector is still indexed by submission slot, so folds over
    /// it are independent of scheduling. A panic in any closure
    /// propagates to the caller once the pool joins.
    pub fn map<T, R, F>(&self, items: impl IntoIterator<Item = T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_stage("exec.map", items, f)
    }

    /// [`map`](Self::map) with a stage label: the label names this fan-out
    /// in profile counters (`exec.stage.<label>.jobs`) and on streamed
    /// progress events. Harnesses use it to attribute their sweeps.
    pub fn map_stage<T, R, F>(
        &self,
        stage: &str,
        items: impl IntoIterator<Item = T>,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        let n = items.len();
        let profiling = nox_telemetry::profiling();
        let streaming = nox_telemetry::stream::active();
        let observe = profiling || streaming;
        if profiling {
            nox_telemetry::with_acc(|a| a.add_count(&format!("exec.stage.{stage}.jobs"), n as u64));
        }
        if streaming {
            nox_telemetry::stream::emit(
                "stage",
                &[("stage", Field::Str(stage)), ("jobs", Field::U64(n as u64))],
            );
        }
        let mut progress = Progress {
            stage,
            total: n,
            next: 0,
            done: if streaming { vec![None; n] } else { Vec::new() },
        };

        if self.threads == 1 || n <= 1 {
            // The historical serial path: inline, on the calling thread.
            let mut worker = WorkerStats::default();
            let out = items
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let (r, rec) = run_job(&f, i, t, observe, 0);
                    worker.jobs += 1;
                    worker.busy_ns += rec.dur_ns;
                    if let Some(delta) = rec.delta {
                        nox_telemetry::absorb(delta);
                    }
                    if streaming {
                        progress.complete(i, rec.dur_ns);
                    }
                    r
                })
                .collect();
            if profiling {
                nox_telemetry::with_acc(|a| worker.publish(a, 0));
            }
            return out;
        }

        let workers = self.threads.min(n);
        // Shared work queue: each worker pulls the next (index, item) pair
        // and writes its result into the slot for that index. Work items
        // are coarse (whole simulation runs), so the mutexes see no
        // meaningful contention.
        let queue = Mutex::new(items.into_iter().enumerate());
        let slots: Vec<Mutex<Option<(R, JobRecord)>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let progress = Mutex::new(progress);

        let stats = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worker = WorkerStats::default();
                        loop {
                            let idle = observe.then(Stopwatch::start);
                            let next = queue.lock().expect("work queue poisoned").next();
                            let wait_ns = idle.map_or(0, |sw| sw.elapsed_ns());
                            match next {
                                Some((i, item)) => {
                                    let (r, rec) = run_job(&f, i, item, observe, wait_ns);
                                    worker.jobs += 1;
                                    worker.busy_ns += rec.dur_ns;
                                    worker.wait_ns += wait_ns;
                                    let dur_ns = rec.dur_ns;
                                    *slots[i].lock().expect("result slot poisoned") =
                                        Some((r, rec));
                                    if streaming {
                                        progress
                                            .lock()
                                            .expect("progress cursor poisoned")
                                            .complete(i, dur_ns);
                                    }
                                }
                                None => break worker,
                            }
                        }
                    })
                })
                .collect();
            let mut stats = Vec::with_capacity(workers);
            for h in handles {
                // Re-raise a worker's panic with its original payload.
                match h.join() {
                    Ok(s) => stats.push(s),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            stats
        });

        if profiling {
            nox_telemetry::with_acc(|a| {
                for (w, s) in stats.iter().enumerate() {
                    s.publish(a, w);
                }
            });
        }

        // Drain the slots — and absorb each job's telemetry delta — in
        // submission order, so the merged accumulator's structure is
        // independent of which worker ran which job.
        slots
            .into_iter()
            .map(|slot| {
                let (r, rec) = slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without filling its slot");
                if let Some(delta) = rec.delta {
                    nox_telemetry::absorb(delta);
                }
                r
            })
            .collect()
    }

    /// [`map`](Self::map) with per-job panic containment: every slot is
    /// `Ok(result)` or `Err(JobPanic)`, still in submission order.
    ///
    /// Where [`map`](Self::map) re-raises the first worker panic to the
    /// caller (all-or-nothing, the right default for sweeps whose points
    /// are expected to succeed), `try_map` catches each job's panic at
    /// the job boundary: one poisoned item costs exactly its own slot,
    /// every other job still runs, and the caller decides what a
    /// per-item failure means. This is the isolation primitive the
    /// `noxsim serve` daemon builds on — a panicking request becomes a
    /// structured error instead of taking the process down.
    ///
    /// Ordering, telemetry capture, and stream-event semantics are
    /// identical to [`map`](Self::map); `threads = 1` runs inline on the
    /// calling thread.
    ///
    /// # Example
    ///
    /// ```
    /// use nox_exec::Executor;
    ///
    /// let out = Executor::new(4).try_map(0..4u32, |_, n| {
    ///     if n == 2 { panic!("poisoned item") }
    ///     n * 10
    /// });
    /// assert_eq!(out[0], Ok(0));
    /// assert_eq!(out[3], Ok(30));
    /// assert_eq!(out[2].as_ref().unwrap_err().message, "poisoned item");
    /// ```
    pub fn try_map<T, R, F>(
        &self,
        items: impl IntoIterator<Item = T>,
        f: F,
    ) -> Vec<Result<R, JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.try_map_stage("exec.try_map", items, f)
    }

    /// [`try_map`](Self::try_map) with a stage label (see
    /// [`map_stage`](Self::map_stage)).
    pub fn try_map_stage<T, R, F>(
        &self,
        stage: &str,
        items: impl IntoIterator<Item = T>,
        f: F,
    ) -> Vec<Result<R, JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_stage(stage, items, |i, item| {
            // The catch boundary sits inside the job, so a panic is
            // contained before it can poison the worker thread or the
            // result slot: the slot is filled with `Err` and the pool
            // keeps draining the queue.
            std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| JobPanic {
                index: i,
                message: panic_message(payload),
            })
        })
    }

    /// Maps `f` over the index range `0..n` — convenience for work lists
    /// that are naturally "the i-th point of a grid".
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map(0..n, |_, i| f(i))
    }
}

impl Default for Executor {
    /// Defaults to the machine's available parallelism, like the CLI.
    fn default() -> Self {
        Executor::available()
    }
}

/// The machine's available parallelism, or 1 when it cannot be queried.
// The one sanctioned query point: it decides only how wide Executor
// pools fan out, never what they emit.
// detlint: allow(thread_count)
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism() // detlint: allow(thread_count)
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--threads` CLI value: a positive integer, or the word
/// `auto` for the machine's available parallelism.
///
/// # Example
///
/// ```
/// assert_eq!(nox_exec::parse_threads("3"), Ok(3));
/// assert!(nox_exec::parse_threads("auto").unwrap() >= 1);
/// assert!(nox_exec::parse_threads("0").is_err());
/// ```
pub fn parse_threads(s: &str) -> Result<usize, String> {
    if s == "auto" {
        return Ok(available_parallelism()); // detlint: allow(thread_count)
    }
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid --threads value '{s}': expected a positive integer or 'auto'"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn results_are_in_submission_order() {
        let exec = Executor::new(8);
        // Stagger completion so late submissions finish first.
        let out = exec.map(0..64u64, |i, n| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n * 3 + 1
        });
        assert_eq!(out, (0..64u64).map(|n| n * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let work: Vec<u64> = (0..100).collect();
        let f = |i: usize, n: u64| format!("{i}:{}", n.wrapping_mul(0x9E37_79B9));
        let serial = Executor::sequential().map(work.clone(), f);
        for threads in [2, 3, 8] {
            assert_eq!(Executor::new(threads).map(work.clone(), f), serial);
        }
    }

    #[test]
    fn all_items_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = Executor::new(4).run(57, |i| {
            count.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(count.load(Ordering::SeqCst), 57);
        assert_eq!(out, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn zero_width_clamps_to_one_worker() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn empty_and_singleton_work_lists() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(exec.map(vec![42], |i, x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn borrows_non_static_inputs() {
        let data = [1u32, 2, 3];
        let slice = &data[..];
        let out = Executor::new(2).run(slice.len(), |i| slice[i] * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Executor::new(4).run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn try_map_contains_panics_in_their_own_slots() {
        for threads in [1usize, 4] {
            let out = Executor::new(threads).try_map(0..16u32, |i, n| {
                if i % 5 == 3 {
                    panic!("boom at {i}");
                }
                n * 2
            });
            assert_eq!(out.len(), 16);
            for (i, slot) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let err = slot.as_ref().expect_err("poisoned slot must be Err");
                    assert_eq!(err.index, i);
                    assert_eq!(err.message, format!("boom at {i}"));
                } else {
                    assert_eq!(slot, &Ok(i as u32 * 2), "healthy slot {i} must survive");
                }
            }
        }
    }

    #[test]
    fn try_map_with_string_payload_and_all_ok() {
        let out = Executor::new(2).try_map(0..3u32, |i, n| {
            if i == 1 {
                std::panic::panic_any(format!("typed {n}"));
            }
            n
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1].as_ref().unwrap_err().message, "typed 1");
        assert_eq!(out[2], Ok(2));
        // And a fully healthy run matches map exactly.
        let healthy = Executor::new(3).try_map(0..8u64, |_, n| n + 1);
        assert_eq!(
            healthy.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            Executor::new(3).map(0..8u64, |_, n| n + 1)
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_still_reraises_panics() {
        // try_map's containment must not change map's all-or-nothing
        // contract.
        Executor::new(2).map(0..4u32, |i, n| {
            if i == 2 {
                panic!("boom");
            }
            n
        });
    }

    #[test]
    fn parse_threads_accepts_auto_and_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert!(parse_threads("auto").unwrap() >= 1);
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("four").is_err());
    }

    // -------------------------------------------------------- telemetry

    /// Serializes tests that toggle the process-global telemetry state.
    static TELEMETRY: Mutex<()> = Mutex::new(());

    fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
        TELEMETRY.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Capture {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn telemetry_off_allocates_no_accumulator() {
        let _g = telemetry_lock();
        nox_telemetry::set_profiling(false);
        nox_telemetry::stream::clear();
        let _ = nox_telemetry::take_acc();
        Executor::new(4).run(16, |i| i * 2);
        assert!(
            !nox_telemetry::acc_allocated(),
            "map must not touch telemetry when profiling and streaming are off"
        );
    }

    #[test]
    fn job_deltas_merge_in_submission_order() {
        let _g = telemetry_lock();
        nox_telemetry::set_profiling(true);
        nox_telemetry::stream::clear();
        let _ = nox_telemetry::take_acc();
        // Jobs record one span event each and finish intentionally out of
        // order; merged event order must still be submission order.
        Executor::new(4).map(0..16u32, |i, n| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _s = nox_telemetry::SpanGuard::with_index(phase::HARNESS_POINT, n);
            n
        });
        let acc = nox_telemetry::take_acc().expect("profiling allocates the acc");
        nox_telemetry::set_profiling(false);
        let point_events: Vec<u32> = acc
            .events()
            .iter()
            .filter(|e| e.phase == phase::HARNESS_POINT)
            .map(|e| e.index)
            .collect();
        assert_eq!(point_events, (0..16).collect::<Vec<_>>());
        assert_eq!(acc.phase(phase::EXEC_JOB).count, 16);
        assert_eq!(acc.counters().get("exec.stage.exec.map.jobs"), Some(&16));
        assert_eq!(acc.samples()["exec.job_ns"].count(), 16);
        // Worker gauges exist for at least worker 0.
        assert!(acc.gauges().keys().any(|k| k.starts_with("exec.worker.0.")));
    }

    #[test]
    fn stream_events_are_in_submission_order_at_any_width() {
        let _g = telemetry_lock();
        nox_telemetry::set_profiling(false);
        let mut per_width = Vec::new();
        for threads in [1usize, 4] {
            let cap = Capture::default();
            nox_telemetry::stream::set(Box::new(cap.clone()));
            Executor::new(threads).map_stage("demo", 0..12u32, |i, n| {
                if i % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                n
            });
            nox_telemetry::stream::clear();
            let lines = cap.lines();
            // One stage frame plus one frame per job, every line a
            // complete JSON object.
            assert_eq!(lines.len(), 13);
            for l in &lines {
                assert!(l.starts_with('{') && l.ends_with('}'), "partial frame: {l}");
            }
            assert!(lines[0].contains(r#""event":"stage","seq":0,"stage":"demo","jobs":12"#));
            // Job frames carry ascending indices regardless of width.
            let indices: Vec<String> = lines[1..]
                .iter()
                .map(|l| {
                    let at = l.find(r#""index":"#).expect("job frame has an index") + 9;
                    l[at - 1..].split(',').next().unwrap().to_string()
                })
                .collect();
            per_width.push(indices);
        }
        assert_eq!(per_width[0], per_width[1], "order must not depend on width");
    }
}
