//! Deterministic parallel execution for sweep-style workloads.
//!
//! Every harness in this workspace — figure sweeps, fault campaigns, the
//! bounded model checker — is a map over an indexed list of independent
//! simulation points. This crate runs that map across a `std::thread`
//! worker pool while guaranteeing that the *reduction is in submission
//! order*: the result vector is indexed by the position of the work item,
//! never by completion time. Any artifact derived by folding the result
//! vector left-to-right is therefore bit-identical at every thread count,
//! and `threads = 1` executes the exact same code path as the historical
//! serial loops.
//!
//! There are no dependencies beyond `std` (the workspace builds offline);
//! workers are scoped threads, so borrowed inputs work without `'static`
//! bounds.
//!
//! # Example
//!
//! ```
//! use nox_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.map(0..10u64, |_, n| n * n);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! // Same bits at any thread count:
//! assert_eq!(squares, Executor::sequential().map(0..10u64, |_, n| n * n));
//! ```

use std::sync::Mutex;

/// A fixed-width worker pool that maps closures over indexed work lists
/// and reduces results in submission order.
///
/// The pool is cheap to construct (threads are scoped per call, not kept
/// alive between calls) — treat it as a value describing *how wide* to
/// fan out, created once near the CLI entry point and passed down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor that fans out over `threads` workers. A width of zero
    /// is clamped to one.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The single-threaded executor: runs every closure inline, in
    /// submission order, on the calling thread — byte-for-byte the
    /// historical serial behavior.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor as wide as the machine
    /// ([`std::thread::available_parallelism`]), falling back to one
    /// worker when the parallelism cannot be determined.
    pub fn available() -> Self {
        // Thread count only sizes the pool; `map`'s ordered reduction
        // keeps results identical at any width.
        Executor::new(available_parallelism()) // detlint: allow(thread_count)
    }

    /// Number of workers this executor fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results **in submission order**.
    ///
    /// `f` receives the submission index alongside the item. With more
    /// than one worker, closures run concurrently on scoped threads; the
    /// result vector is still indexed by submission slot, so folds over
    /// it are independent of scheduling. A panic in any closure
    /// propagates to the caller once the pool joins.
    pub fn map<T, R, F>(&self, items: impl IntoIterator<Item = T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let items: Vec<T> = items.into_iter().collect();
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        let n = items.len();
        let workers = self.threads.min(n);
        // Shared work queue: each worker pulls the next (index, item) pair
        // and writes its result into the slot for that index. Work items
        // are coarse (whole simulation runs), so the mutexes see no
        // meaningful contention.
        let queue = Mutex::new(items.into_iter().enumerate());
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let next = queue.lock().expect("work queue poisoned").next();
                        match next {
                            Some((i, item)) => {
                                let r = f(i, item);
                                *slots[i].lock().expect("result slot poisoned") = Some(r);
                            }
                            None => break,
                        }
                    })
                })
                .collect();
            for h in handles {
                // Re-raise a worker's panic with its original payload.
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without filling its slot")
            })
            .collect()
    }

    /// Maps `f` over the index range `0..n` — convenience for work lists
    /// that are naturally "the i-th point of a grid".
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.map(0..n, |_, i| f(i))
    }
}

impl Default for Executor {
    /// Defaults to the machine's available parallelism, like the CLI.
    fn default() -> Self {
        Executor::available()
    }
}

/// The machine's available parallelism, or 1 when it cannot be queried.
// The one sanctioned query point: it decides only how wide Executor
// pools fan out, never what they emit.
// detlint: allow(thread_count)
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism() // detlint: allow(thread_count)
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--threads` CLI value: a positive integer, or the word
/// `auto` for the machine's available parallelism.
///
/// # Example
///
/// ```
/// assert_eq!(nox_exec::parse_threads("3"), Ok(3));
/// assert!(nox_exec::parse_threads("auto").unwrap() >= 1);
/// assert!(nox_exec::parse_threads("0").is_err());
/// ```
pub fn parse_threads(s: &str) -> Result<usize, String> {
    if s == "auto" {
        return Ok(available_parallelism()); // detlint: allow(thread_count)
    }
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid --threads value '{s}': expected a positive integer or 'auto'"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_submission_order() {
        let exec = Executor::new(8);
        // Stagger completion so late submissions finish first.
        let out = exec.map(0..64u64, |i, n| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            n * 3 + 1
        });
        assert_eq!(out, (0..64u64).map(|n| n * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let work: Vec<u64> = (0..100).collect();
        let f = |i: usize, n: u64| format!("{i}:{}", n.wrapping_mul(0x9E37_79B9));
        let serial = Executor::sequential().map(work.clone(), f);
        for threads in [2, 3, 8] {
            assert_eq!(Executor::new(threads).map(work.clone(), f), serial);
        }
    }

    #[test]
    fn all_items_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = Executor::new(4).run(57, |i| {
            count.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(count.load(Ordering::SeqCst), 57);
        assert_eq!(out, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn zero_width_clamps_to_one_worker() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn empty_and_singleton_work_lists() {
        let exec = Executor::new(4);
        assert_eq!(exec.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(exec.map(vec![42], |i, x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn borrows_non_static_inputs() {
        let data = [1u32, 2, 3];
        let slice = &data[..];
        let out = Executor::new(2).run(slice.len(), |i| slice[i] * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Executor::new(4).run(8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn parse_threads_accepts_auto_and_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert!(parse_threads("auto").unwrap() >= 1);
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("four").is_err());
    }
}
