//! The two halves of the lint gate, as tests: the workspace itself must
//! scan clean, and the seeded fixture must still trip every rule (so the
//! gate cannot silently rot into a no-op).

use std::path::{Path, PathBuf};

use nox_statics::lint::{scan_path, Rule};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_crates_scan_clean() {
    let findings = scan_path(&workspace_root().join("crates")).expect("scan crates/");
    assert!(
        findings.is_empty(),
        "determinism lint findings in the workspace:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_fixture_trips_every_rule() {
    let fixture = workspace_root().join("crates/nox-statics/tests/fixtures/seeded_violations.rs");
    let findings = scan_path(&fixture).expect("scan fixture");
    for rule in Rule::ALL {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixture no longer trips {rule}: {findings:?}"
        );
    }
}

#[test]
fn directory_walks_skip_fixtures() {
    let findings = scan_path(&workspace_root().join("crates/nox-statics")).expect("scan");
    assert!(
        findings.is_empty(),
        "fixtures/ must be skipped during walks: {findings:?}"
    );
}
