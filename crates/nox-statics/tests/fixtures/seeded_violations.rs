//! Deliberately nondeterministic code: the CI gate runs `detlint` on
//! this file and asserts that it FAILS. Never compiled into any target;
//! directory walks skip `fixtures/`, so only an explicit scan sees it.

use std::collections::HashMap;
use std::time::Instant;

pub fn unstable_summary() -> String {
    let mut counts: HashMap<String, u32> = HashMap::new();
    counts.insert("a".into(), 1);
    counts.insert("b".into(), 2);
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v};"));
    }
    let t = Instant::now();
    let width = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("{out} width={width} took {:?}", t.elapsed())
}
