//! Channel-dependency-graph extraction and cycle detection.
//!
//! Dally & Seitz: a deterministic wormhole network is deadlock-free iff
//! its channel-dependency graph (CDG) is acyclic. Nodes of the CDG are
//! the directed inter-router channels; there is an edge `c1 -> c2`
//! whenever some route holds `c1` and then requests `c2` at the next
//! router. Ejection (local) ports always drain (sinks consume
//! unconditionally) and injection never holds a network channel, so only
//! router-to-router channels participate.
//!
//! The extraction walks the *actual* routing function of a
//! [`Topology`] — `Topology::route` plus `Topology::link_dest` — over
//! every (source router, destination core) pair, so the graph reflects
//! what the simulator executes, not a re-derivation of it. The per-source
//! walks fan out over a [`nox_exec::Executor`] and merge in submission
//! order, so the result (and everything derived from it) is identical at
//! any thread count.

use std::collections::{BTreeMap, BTreeSet};

use nox_core::PortId;
use nox_exec::Executor;
use nox_sim::topology::{NodeId, Topology};

/// A CDG node: one directed inter-router channel, identified by the
/// upstream router and the output port driving the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Channel {
    /// The router driving the channel.
    pub router: NodeId,
    /// The output port at that router.
    pub out: PortId,
}

impl Channel {
    /// A stable human-readable label, e.g. `n5.E`.
    pub fn label(&self, topo: &Topology) -> String {
        format!("{}.{}", self.router, topo.port_direction(self.out))
    }
}

/// The channel-dependency graph of one topology × routing function.
#[derive(Clone, Debug)]
pub struct Cdg {
    /// All channels any route uses, sorted.
    pub channels: Vec<Channel>,
    /// Dependency edges `c1 -> c2`, deduplicated and sorted.
    pub edges: BTreeSet<(Channel, Channel)>,
    /// Number of (source router, destination core) routes walked.
    pub routes_walked: usize,
    /// Longest route observed, in channels.
    pub max_route_hops: u32,
}

/// One witness cycle: channels in dependency order; the last depends on
/// the first again.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleWitness {
    /// The channels of the cycle, in order.
    pub channels: Vec<Channel>,
}

/// Walks every route and collects the channel-dependency graph.
///
/// # Panics
///
/// Panics if the routing function uses an unwired port or fails to reach
/// its destination within `2 * routers + 2` hops (a livelock would
/// otherwise loop forever).
pub fn extract(topo: &Topology, exec: &Executor) -> Cdg {
    let routers = topo.routers();
    let hop_cap = 2 * routers as u32 + 2;
    let per_src = exec.run(routers, |src| {
        let src = NodeId(src as u16);
        let mut channels: Vec<Channel> = Vec::new();
        let mut edges: Vec<(Channel, Channel)> = Vec::new();
        let mut walked = 0usize;
        let mut max_hops = 0u32;
        for dest in 0..topo.cores() as u16 {
            let dest = NodeId(dest);
            let mut cur = src;
            let mut prev: Option<Channel> = None;
            let mut hops = 0u32;
            loop {
                let out = topo.route(cur, dest);
                if topo.is_local(out) {
                    break;
                }
                let ch = Channel { router: cur, out };
                channels.push(ch);
                if let Some(p) = prev {
                    edges.push((p, ch));
                }
                let (next, _) = topo
                    .link_dest(cur, out)
                    .expect("routing function chose an unwired port");
                prev = Some(ch);
                cur = next;
                hops += 1;
                assert!(
                    hops <= hop_cap,
                    "route {src}->{dest} exceeded {hop_cap} hops: routing does not terminate"
                );
            }
            walked += 1;
            max_hops = max_hops.max(hops);
        }
        (channels, edges, walked, max_hops)
    });

    let mut channels: BTreeSet<Channel> = BTreeSet::new();
    let mut edges: BTreeSet<(Channel, Channel)> = BTreeSet::new();
    let mut routes_walked = 0;
    let mut max_route_hops = 0;
    for (cs, es, walked, hops) in per_src {
        channels.extend(cs);
        edges.extend(es);
        routes_walked += walked;
        max_route_hops = max_route_hops.max(hops);
    }
    Cdg {
        channels: channels.into_iter().collect(),
        edges,
        routes_walked,
        max_route_hops,
    }
}

impl Cdg {
    /// Adjacency lists over channel indices, sorted both ways.
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let index: BTreeMap<Channel, usize> = self
            .channels
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        let mut adj = vec![Vec::new(); self.channels.len()];
        for &(a, b) in &self.edges {
            adj[index[&a]].push(index[&b]);
        }
        adj
    }

    /// The strongly connected components that contain a cycle (size > 1,
    /// or a self-loop), each as a sorted list of channel indices, ordered
    /// by smallest member. Empty iff the graph is acyclic.
    pub fn cyclic_sccs(&self) -> Vec<Vec<usize>> {
        let adj = self.adjacency();
        let sccs = tarjan(&adj);
        let self_loops: BTreeSet<usize> = self
            .edges
            .iter()
            .filter(|(a, b)| a == b)
            .map(|(a, _)| self.channels.binary_search(a).unwrap())
            .collect();
        let mut cyclic: Vec<Vec<usize>> = sccs
            .into_iter()
            .map(|mut scc| {
                scc.sort_unstable();
                scc
            })
            .filter(|scc| scc.len() > 1 || self_loops.contains(&scc[0]))
            .collect();
        cyclic.sort();
        cyclic
    }

    /// One concrete witness cycle per cyclic SCC: the shortest dependency
    /// cycle through the SCC's smallest channel, found by BFS restricted
    /// to the SCC. Deterministic: ties resolve toward smaller indices.
    pub fn witnesses(&self) -> Vec<CycleWitness> {
        let adj = self.adjacency();
        self.cyclic_sccs()
            .into_iter()
            .map(|scc| {
                let inside: BTreeSet<usize> = scc.iter().copied().collect();
                let start = scc[0];
                // BFS from start back to start within the SCC.
                let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
                let mut queue = std::collections::VecDeque::from([start]);
                let mut closed_from = None;
                'bfs: while let Some(v) = queue.pop_front() {
                    for &w in &adj[v] {
                        if !inside.contains(&w) {
                            continue;
                        }
                        if w == start {
                            closed_from = Some(v);
                            break 'bfs;
                        }
                        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(w) {
                            e.insert(v);
                            queue.push_back(w);
                        }
                    }
                }
                let mut rev = vec![closed_from.expect("cyclic SCC must close a cycle")];
                while *rev.last().unwrap() != start {
                    rev.push(parent[rev.last().unwrap()]);
                }
                rev.reverse();
                CycleWitness {
                    channels: rev.into_iter().map(|i| self.channels[i]).collect(),
                }
            })
            .collect()
    }

    /// `true` iff the CDG has no cycle — the Dally-Seitz deadlock-freedom
    /// condition for deterministic wormhole routing.
    pub fn deadlock_free(&self) -> bool {
        self.cyclic_sccs().is_empty()
    }

    /// Checks that a witness is a genuine dependency cycle of this graph:
    /// every consecutive pair (and last -> first) is an edge, and
    /// consecutive channels are physically connected by a link.
    pub fn validate_witness(&self, topo: &Topology, w: &CycleWitness) -> Result<(), String> {
        if w.channels.is_empty() {
            return Err("empty witness".into());
        }
        for (i, &c) in w.channels.iter().enumerate() {
            let n = w.channels[(i + 1) % w.channels.len()];
            if !self.edges.contains(&(c, n)) {
                return Err(format!(
                    "witness step {} -> {} is not a CDG edge",
                    c.label(topo),
                    n.label(topo)
                ));
            }
            let (down, _) = topo
                .link_dest(c.router, c.out)
                .ok_or_else(|| format!("witness channel {} is unwired", c.label(topo)))?;
            if down != n.router {
                return Err(format!(
                    "witness channels {} and {} are not physically adjacent",
                    c.label(topo),
                    n.label(topo)
                ));
            }
        }
        Ok(())
    }
}

/// Iterative Tarjan SCC over adjacency lists; returns components in
/// a deterministic order (reverse topological, as Tarjan emits them).
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (vertex, next child position).
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> Executor {
        Executor::sequential()
    }

    #[test]
    fn xy_mesh_cdg_is_acyclic_at_many_sizes() {
        for (w, h) in [(2u8, 2u8), (3, 3), (4, 4), (8, 8), (5, 3)] {
            let topo = Topology::mesh(w, h);
            let cdg = extract(&topo, &seq());
            assert!(cdg.deadlock_free(), "{w}x{h} mesh must be deadlock-free");
            assert!(cdg.witnesses().is_empty());
        }
    }

    #[test]
    fn cmesh_cdg_is_acyclic() {
        let topo = Topology::cmesh(4, 4, 4);
        let cdg = extract(&topo, &seq());
        assert!(cdg.deadlock_free());
    }

    #[test]
    fn mesh_channel_and_edge_counts_match_closed_form() {
        // An 8x8 XY mesh uses every directed inter-router link:
        // 2 * (2 * 8 * 7) = 224 channels. Edges: straight-through X
        // (6 per row-direction), straight-through Y, and one E/W -> N/S
        // turn per (intermediate column, direction) — all deduplicated.
        let topo = Topology::mesh(8, 8);
        let cdg = extract(&topo, &seq());
        assert_eq!(cdg.channels.len(), 224);
        assert_eq!(cdg.routes_walked, 64 * 64);
        assert_eq!(cdg.max_route_hops, 14);
        // Every edge respects XY order: never N/S -> E/W.
        use nox_sim::topology::Port;
        for &(a, b) in &cdg.edges {
            let (da, db) = (topo.port_direction(a.out), topo.port_direction(b.out));
            let ya = matches!(da, Port::North | Port::South);
            let xb = matches!(db, Port::East | Port::West);
            assert!(!(ya && xb), "XY violated: {} -> {}", da, db);
        }
    }

    #[test]
    fn ring_cdg_has_witness_cycles() {
        let topo = Topology::ring(8);
        let cdg = extract(&topo, &seq());
        assert!(!cdg.deadlock_free(), "unrestricted ring must be unsafe");
        let ws = cdg.witnesses();
        assert!(!ws.is_empty());
        for w in &ws {
            cdg.validate_witness(&topo, w).unwrap();
        }
        // The East cycle wraps the whole ring: 8 channels.
        assert!(ws.iter().any(|w| w.channels.len() == 8));
    }

    #[test]
    fn ring_witness_is_deterministic() {
        let topo = Topology::ring(6);
        let a = extract(&topo, &seq()).witnesses();
        let b = extract(&topo, &Executor::new(4)).witnesses();
        assert_eq!(a, b);
    }

    #[test]
    fn three_ring_is_trivially_safe_but_four_ring_is_not() {
        // n=3: every shortest path is a single hop, so no route ever
        // holds one channel while requesting another — no CDG edges, no
        // deadlock. The analyzer gets this subtlety right for free
        // because it walks real routes instead of pattern-matching on
        // "has a wraparound link".
        let cdg3 = extract(&Topology::ring(3), &seq());
        assert!(cdg3.edges.is_empty());
        assert!(cdg3.deadlock_free());
        // n=4: two-hop East routes (antipodal ties break East) chain the
        // East channels into a full cycle.
        let cdg4 = extract(&Topology::ring(4), &seq());
        assert!(!cdg4.deadlock_free());
    }

    #[test]
    fn tarjan_handles_known_graph() {
        // 0->1->2->0 cycle plus a tail 2->3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let sccs = tarjan(&adj);
        let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3]);
    }
}
