//! The `nox-bench/statics/v1` artifact: the standard design-analysis
//! suite, its gating verdict, and the deterministic JSON rendering.
//!
//! The writer is self-contained (this crate sits *below* `nox-analysis`
//! in the dependency graph, so it cannot borrow that crate's JSON
//! module): ASCII-escaped strings, shortest-roundtrip float formatting,
//! fields emitted in fixed order. Byte-identical output at any
//! `--threads` width is part of the contract and is tested.

use nox_exec::Executor;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::topology::{Topology, TopologyKind};

use crate::cdg;
use crate::credit::{check_credits, CreditCheck};

/// Schema identifier of the statics artifact.
pub const SCHEMA: &str = "nox-bench/statics/v1";

/// The deadlock analysis of one topology × routing function.
#[derive(Clone, Debug)]
pub struct DesignAnalysis {
    /// Suite entry label, e.g. `mesh8x8-xy`.
    pub name: String,
    /// Topology description, e.g. `mesh 8x8`.
    pub topology: String,
    /// Routing function description.
    pub routing: String,
    /// Whether the suite expects this instance to be deadlock-free.
    pub expect_safe: bool,
    /// Router count.
    pub routers: usize,
    /// CDG node count (directed inter-router channels in use).
    pub channels: usize,
    /// CDG edge count.
    pub edges: usize,
    /// Number of cyclic strongly connected components.
    pub cyclic_sccs: usize,
    /// The Dally-Seitz verdict: CDG acyclic.
    pub deadlock_free: bool,
    /// One concrete witness cycle per cyclic SCC (channel labels).
    pub witnesses: Vec<Vec<String>>,
    /// Routes walked during extraction.
    pub routes_walked: usize,
    /// Longest route observed, in hops.
    pub max_route_hops: u32,
}

/// Analyzes one topology and packages the result for the report.
pub fn analyze_topology(
    name: &str,
    topo: &Topology,
    expect_safe: bool,
    exec: &Executor,
) -> DesignAnalysis {
    let cdg = cdg::extract(topo, exec);
    let witnesses = cdg
        .witnesses()
        .iter()
        .map(|w| {
            cdg.validate_witness(topo, w)
                .expect("extractor produced an invalid witness");
            w.channels.iter().map(|c| c.label(topo)).collect()
        })
        .collect();
    DesignAnalysis {
        name: name.to_string(),
        topology: describe_topology(topo),
        routing: match topo.kind() {
            TopologyKind::Ring => "ring-shortest-path".to_string(),
            _ => "xy-dor".to_string(),
        },
        expect_safe,
        routers: topo.routers(),
        channels: cdg.channels.len(),
        edges: cdg.edges.len(),
        cyclic_sccs: cdg.cyclic_sccs().len(),
        deadlock_free: cdg.deadlock_free(),
        witnesses,
        routes_walked: cdg.routes_walked,
        max_route_hops: cdg.max_route_hops,
    }
}

fn describe_topology(topo: &Topology) -> String {
    let g = topo.grid();
    match topo.kind() {
        TopologyKind::Mesh => format!("mesh {}x{}", g.width(), g.height()),
        TopologyKind::CMesh { concentration } => {
            format!("cmesh {}x{}x{}", g.width(), g.height(), concentration)
        }
        TopologyKind::Ring => format!("ring {}", g.width()),
    }
}

/// The full statics report: design analyses plus credit-sizing checks.
#[derive(Clone, Debug)]
pub struct StaticsReport {
    /// Deadlock analyses, in suite order.
    pub analyses: Vec<DesignAnalysis>,
    /// Credit-sizing checks, in suite order.
    pub credits: Vec<CreditCheck>,
}

/// The standard suite: the paper's mesh (safe), the small test mesh
/// (safe), the concentrated mesh (safe), and the unrestricted ring
/// (unsafe, with witness); credit checks over every Table 1 architecture
/// plus one deliberately undersized configuration that must be flagged.
pub fn standard_report(exec: &Executor) -> StaticsReport {
    let analyses = vec![
        analyze_topology("mesh8x8-xy", &Topology::mesh(8, 8), true, exec),
        analyze_topology("mesh4x4-xy", &Topology::mesh(4, 4), true, exec),
        analyze_topology("cmesh4x4x4-xy", &Topology::cmesh(4, 4, 4), true, exec),
        analyze_topology("ring8-shortest", &Topology::ring(8), false, exec),
    ];
    let mut credits: Vec<CreditCheck> = Arch::ALL
        .iter()
        .map(|&a| {
            check_credits(
                &format!("paper-{}", a.name().to_ascii_lowercase()),
                &NetConfig::paper(a),
                true,
            )
        })
        .collect();
    credits.push(check_credits(
        "ring8-paper-buffers",
        &NetConfig::ring(Arch::Nox, 8),
        true,
    ));
    let mut undersized = NetConfig::paper(Arch::Nox);
    undersized.credit_delay = 6;
    credits.push(check_credits("undersized-demo", &undersized, false));
    StaticsReport { analyses, credits }
}

impl StaticsReport {
    /// The gating verdict: every analysis matches its expectation, every
    /// unsafe instance carries at least one witness cycle, and every
    /// credit check matches its expected soundness.
    pub fn verdict_ok(&self) -> bool {
        self.analyses.iter().all(|a| {
            a.deadlock_free == a.expect_safe && (a.deadlock_free || !a.witnesses.is_empty())
        }) && self.credits.iter().all(|c| c.sound == c.expect_sound)
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("channel-dependency analysis (Dally-Seitz):\n");
        for a in &self.analyses {
            let verdict = if a.deadlock_free {
                "deadlock-free"
            } else {
                "DEADLOCK-PRONE"
            };
            let status = if a.deadlock_free == a.expect_safe {
                "ok"
            } else {
                "UNEXPECTED"
            };
            out.push_str(&format!(
                "  {:<16} {:<12} {:<18} {} [{}]: {} channels, {} edges, {} cyclic SCCs\n",
                a.name, a.topology, a.routing, verdict, status, a.channels, a.edges, a.cyclic_sccs
            ));
            for w in &a.witnesses {
                out.push_str(&format!("    witness cycle: {}\n", w.join(" -> ")));
            }
        }
        out.push_str("credit sizing (round trip = 2 + credit_delay cycles):\n");
        for c in &self.credits {
            out.push_str(&format!(
                "  {:<20} depth {} vs round-trip {}: {} (max link duty {:.2})\n",
                c.name,
                c.buffer_depth,
                c.round_trip,
                if c.sound { "sound" } else { "UNDERSIZED" },
                c.max_link_duty
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.verdict_ok() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// The `nox-bench/statics/v1` JSON artifact. Deterministic: fixed
    /// field order, sorted content, no floats beyond shortest-roundtrip
    /// duty ratios, no timestamps.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        w.str_field("schema", SCHEMA);
        w.raw(",\"analyses\":[");
        for (i, a) in self.analyses.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.str_field("name", &a.name);
            w.raw(",");
            w.str_field("topology", &a.topology);
            w.raw(",");
            w.str_field("routing", &a.routing);
            w.raw(",");
            w.bool_field("expect_safe", a.expect_safe);
            w.raw(",");
            w.uint_field("routers", a.routers as u64);
            w.raw(",");
            w.uint_field("channels", a.channels as u64);
            w.raw(",");
            w.uint_field("edges", a.edges as u64);
            w.raw(",");
            w.uint_field("cyclic_sccs", a.cyclic_sccs as u64);
            w.raw(",");
            w.bool_field("deadlock_free", a.deadlock_free);
            w.raw(",");
            w.uint_field("routes_walked", a.routes_walked as u64);
            w.raw(",");
            w.uint_field("max_route_hops", a.max_route_hops as u64);
            w.raw(",\"witness_cycles\":[");
            for (j, cycle) in a.witnesses.iter().enumerate() {
                if j > 0 {
                    w.raw(",");
                }
                w.raw("[");
                for (k, ch) in cycle.iter().enumerate() {
                    if k > 0 {
                        w.raw(",");
                    }
                    w.string(ch);
                }
                w.raw("]");
            }
            w.raw("]}");
        }
        w.raw("],\"credit_checks\":[");
        for (i, c) in self.credits.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("{");
            w.str_field("name", &c.name);
            w.raw(",");
            w.str_field("arch", &c.arch);
            w.raw(",");
            w.uint_field("buffer_depth", c.buffer_depth as u64);
            w.raw(",");
            w.uint_field("credit_delay", c.credit_delay);
            w.raw(",");
            w.uint_field("round_trip_cycles", c.round_trip);
            w.raw(",");
            w.bool_field("sound", c.sound);
            w.raw(",");
            w.bool_field("expect_sound", c.expect_sound);
            w.raw(",");
            w.float_field("max_link_duty", c.max_link_duty);
            w.raw("}");
        }
        w.raw("],");
        w.bool_field("verdict_ok", self.verdict_ok());
        w.raw("}\n");
        w.finish()
    }
}

/// Minimal deterministic JSON assembly: the caller controls structure,
/// the writer only guarantees escaping and canonical number formatting.
struct JsonWriter {
    buf: String,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter { buf: String::new() }
    }

    fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    fn string(&mut self, s: &str) {
        self.buf.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn str_field(&mut self, key: &str, val: &str) {
        self.string(key);
        self.buf.push(':');
        self.string(val);
    }

    fn uint_field(&mut self, key: &str, val: u64) {
        self.string(key);
        self.buf.push_str(&format!(":{val}"));
    }

    fn bool_field(&mut self, key: &str, val: bool) {
        self.string(key);
        self.buf.push_str(if val { ":true" } else { ":false" });
    }

    /// Shortest-roundtrip decimal, always with a decimal point or
    /// exponent so readers see a float.
    fn float_field(&mut self, key: &str, val: f64) {
        self.string(key);
        let s = format!("{val}");
        let s = if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        };
        self.buf.push(':');
        self.buf.push_str(&s);
    }

    fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_verdict_passes() {
        let r = standard_report(&Executor::sequential());
        assert!(r.verdict_ok(), "{}", r.render());
        // The mesh entries are provably safe with zero cycles...
        for a in &r.analyses[..3] {
            assert!(a.deadlock_free);
            assert_eq!(a.cyclic_sccs, 0);
            assert!(a.witnesses.is_empty());
        }
        // ...and the ring carries concrete witnesses.
        let ring = &r.analyses[3];
        assert!(!ring.deadlock_free);
        assert!(!ring.witnesses.is_empty());
        // The undersized demo is flagged, as expected.
        let demo = r.credits.last().unwrap();
        assert!(!demo.sound && !demo.expect_sound);
    }

    #[test]
    fn json_is_byte_identical_across_thread_counts() {
        let baseline = standard_report(&Executor::sequential()).to_json();
        for threads in [2, 8] {
            assert_eq!(
                standard_report(&Executor::new(threads)).to_json(),
                baseline,
                "statics artifact must not depend on --threads"
            );
        }
    }

    #[test]
    fn json_shape_is_sane() {
        let j = standard_report(&Executor::sequential()).to_json();
        assert!(j.starts_with("{\"schema\":\"nox-bench/statics/v1\""));
        assert!(j.contains("\"witness_cycles\":[["));
        assert!(j.contains("\"verdict_ok\":true"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn render_mentions_witness_and_verdict() {
        let r = standard_report(&Executor::sequential());
        let txt = r.render();
        assert!(txt.contains("witness cycle:"));
        assert!(txt.contains("verdict: PASS"));
        assert!(txt.contains("DEADLOCK-PRONE"));
        assert!(txt.contains("UNDERSIZED"));
    }

    #[test]
    fn string_escaping_is_correct() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd");
        assert_eq!(w.finish(), r#""a\"b\\c\nd""#);
    }
}
