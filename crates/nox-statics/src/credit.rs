//! Static credit-sizing check: buffer depth vs. credit round-trip.
//!
//! A wormhole link sustains one flit per cycle only if the upstream
//! output never runs out of credits. A credit spent at cycle `c` is
//! reusable earliest at
//!
//! `c + 1 (link traversal) + 1 (downstream pop, single-cycle service)
//!    + credit_delay (return path)`
//!
//! so the round-trip is `2 + credit_delay` cycles and the input buffer
//! must hold at least that many flits to keep the link at full duty
//! (Table 1's 4-entry buffers exactly cover the paper's
//! `credit_delay = 2`). NoX's decode latch can pop in the delivery cycle
//! and shave one cycle off the service term, so this bound is
//! conservative — an undersized verdict here is a *real* throughput cap,
//! a sound verdict can only have slack.
//!
//! When `buffer_depth < round_trip`, the steady-state link duty is
//! capped at `buffer_depth / round_trip`: the check reports that cap so
//! sweeps can anticipate the saturation ceiling.

use nox_sim::config::NetConfig;

/// The outcome of one credit-sizing check.
#[derive(Clone, Debug, PartialEq)]
pub struct CreditCheck {
    /// Which configuration was checked (display label).
    pub name: String,
    /// Architecture display name.
    pub arch: String,
    /// Input buffer depth, flits.
    pub buffer_depth: usize,
    /// Credit return delay, cycles.
    pub credit_delay: u64,
    /// Worst-case credit round-trip, cycles.
    pub round_trip: u64,
    /// `buffer_depth >= round_trip`.
    pub sound: bool,
    /// Steady-state per-link duty cap implied by the sizing, `0..=1`.
    pub max_link_duty: f64,
    /// What the suite expects (drives the gating verdict).
    pub expect_sound: bool,
}

/// Link traversal plus single-cycle downstream service, before the
/// configurable return delay.
pub const FIXED_ROUND_TRIP_CYCLES: u64 = 2;

/// Runs the credit-sizing check on one configuration.
pub fn check_credits(name: &str, cfg: &NetConfig, expect_sound: bool) -> CreditCheck {
    let round_trip = FIXED_ROUND_TRIP_CYCLES + cfg.credit_delay;
    let sound = cfg.buffer_depth as u64 >= round_trip;
    CreditCheck {
        name: name.to_string(),
        arch: cfg.arch.name().to_string(),
        buffer_depth: cfg.buffer_depth,
        credit_delay: cfg.credit_delay,
        round_trip,
        sound,
        max_link_duty: (cfg.buffer_depth as f64 / round_trip as f64).min(1.0),
        expect_sound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nox_sim::config::Arch;

    #[test]
    fn paper_config_is_exactly_sound() {
        // Table 1: depth 4, credit_delay 2 -> round trip 4, zero slack.
        let c = check_credits("paper", &NetConfig::paper(Arch::Nox), true);
        assert!(c.sound);
        assert_eq!(c.round_trip, 4);
        assert_eq!(c.buffer_depth, 4);
        assert_eq!(c.max_link_duty, 1.0);
    }

    #[test]
    fn slow_credit_return_is_flagged_with_duty_cap() {
        let mut cfg = NetConfig::paper(Arch::Nox);
        cfg.credit_delay = 6; // round trip 8 > depth 4
        let c = check_credits("slow", &cfg, false);
        assert!(!c.sound);
        assert_eq!(c.round_trip, 8);
        assert_eq!(c.max_link_duty, 0.5);
    }

    #[test]
    fn deep_buffers_cap_duty_at_one() {
        let mut cfg = NetConfig::paper(Arch::Nox);
        cfg.buffer_depth = 16;
        let c = check_credits("deep", &cfg, true);
        assert!(c.sound);
        assert_eq!(c.max_link_duty, 1.0);
    }
}
