//! Workspace determinism lint: `detlint [PATH ...]`.
//!
//! Scans `.rs` sources for determinism hazards (see
//! [`nox_statics::lint`]) and exits non-zero when any finding survives
//! the `// detlint: allow(...)` escape hatch — the CI gate. With no
//! arguments, scans `crates/`. Directory walks skip `fixtures/`
//! directories; naming a fixture file explicitly scans it anyway, which
//! is how CI proves the lint still fires on a seeded violation.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<String> = if args.is_empty() {
        vec!["crates".to_string()]
    } else {
        args
    };

    let mut findings = Vec::new();
    for root in &roots {
        match nox_statics::lint::scan_path(Path::new(root)) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("error: {root}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    findings.sort();

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("detlint: clean ({} root(s) scanned)", roots.len());
        ExitCode::SUCCESS
    } else {
        println!("detlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
