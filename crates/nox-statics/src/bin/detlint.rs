//! Workspace determinism lint: `detlint [--audit] [PATH ...]`.
//!
//! Scans `.rs` sources for determinism hazards (see
//! [`nox_statics::lint`]) and exits non-zero when any finding survives
//! the `// detlint: allow(...)` escape hatch — the CI gate. With no
//! arguments, scans `crates/`. Directory walks skip `fixtures/`
//! directories; naming a fixture file explicitly scans it anyway, which
//! is how CI proves the lint still fires on a seeded violation.
//!
//! `--audit` additionally checks the allow directives themselves:
//! `allow(wall_clock)` is policy-restricted to the self-profiling crates
//! (`nox-telemetry`, `nox-probe`) and the perf benchmark (`bench`), so a
//! wall-clock read can never hide behind an `allow` inside the
//! simulation or analysis code.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let audit = args.iter().any(|a| a == "--audit");
    let roots: Vec<String> = {
        let named: Vec<String> = args.into_iter().filter(|a| a != "--audit").collect();
        if named.is_empty() {
            vec!["crates".to_string()]
        } else {
            named
        }
    };

    let mut findings = Vec::new();
    let mut audit_findings = Vec::new();
    for root in &roots {
        match nox_statics::lint::scan_path(Path::new(root)) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("error: {root}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if audit {
            match nox_statics::lint::audit_path(Path::new(root)) {
                Ok(f) => audit_findings.extend(f),
                Err(e) => {
                    eprintln!("error: {root}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    findings.sort();
    audit_findings.sort();

    for f in &findings {
        println!("{f}");
    }
    for f in &audit_findings {
        println!("{f}");
    }
    let total = findings.len() + audit_findings.len();
    if total == 0 {
        println!(
            "detlint: clean ({} root(s) scanned{})",
            roots.len(),
            if audit { ", allowlist audited" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        println!("detlint: {total} finding(s)");
        ExitCode::FAILURE
    }
}
