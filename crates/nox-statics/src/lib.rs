//! Static analysis for the NoX reproduction.
//!
//! Two independent passes, both wired into `noxsim` and CI:
//!
//! - **Design analysis** ([`cdg`], [`credit`], [`report`]): extracts the
//!   channel-dependency graph of any [`nox_sim::topology::Topology`] ×
//!   routing function by walking the simulator's own route decisions,
//!   runs SCC/cycle detection for the Dally-Seitz deadlock-freedom
//!   verdict (with concrete witness cycles when unsafe), and statically
//!   checks credit round-trip against buffer depth. Results ship as the
//!   `nox-bench/statics/v1` JSON artifact, byte-identical at any thread
//!   count.
//! - **Codebase lint** ([`lint`], the `detlint` binary): scans workspace
//!   sources for determinism hazards — unordered hash-container usage in
//!   artifact-feeding code, wall-clock reads, thread-count-dependent
//!   output — with a `// detlint: allow(...)` escape hatch.
//!
//! This crate deliberately sits *below* `nox-analysis` so the claims
//! registry can cite its verdicts as machine-checked claims.

pub mod cdg;
pub mod credit;
pub mod lint;
pub mod report;

pub use report::{standard_report, StaticsReport, SCHEMA};
