//! `detlint`: a source-level determinism lint for the workspace.
//!
//! The claims/caching story rests on artifacts being byte-identical
//! across runs and thread counts. The runtime guards that with
//! byte-compare tests; this lint guards it *statically* by scanning for
//! the three ways nondeterminism has historically crept into simulators:
//!
//! - `unordered_iter` — iterating a variable declared as a hash
//!   container (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for _ in
//!   map`): iteration order varies per process, so anything folded from
//!   it can differ run to run. Checked in every crate.
//! - `unordered_collection` — *declaring* a hash container at all inside
//!   an artifact-feeding crate. Stricter than `unordered_iter` (even
//!   membership-only maps get flagged) because a later refactor can add
//!   iteration without revisiting the declaration; ordered `BTreeMap` /
//!   `BTreeSet` cost nothing at these sizes.
//! - `wall_clock` — `Instant::now()` / `SystemTime::now()`: real-time
//!   reads must never feed simulated results, only clearly-labelled
//!   self-profiling.
//! - `thread_count` — `available_parallelism`: worker-pool width must
//!   size fan-out, never change output.
//!
//! Escape hatch: a `// detlint: allow(rule, rule)` comment suppresses
//! those rules on its own line and the line directly below it.
//!
//! The scanner is a *lint*, not a parser: it masks comments and string /
//! char literals with a small state machine (so rule names in strings —
//! including this crate's own sources — never self-flag), then pattern
//! matches on what remains. Fixture directories (any path component
//! named `fixtures`) are skipped during directory walks but scanned when
//! named explicitly, which is how CI proves the lint still fires.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose outputs end up in machine-checked artifacts; hash
/// container *declarations* are banned here outright.
pub const ARTIFACT_CRATES: &[&str] = &[
    "nox",
    "nox-analysis",
    "nox-fault",
    "nox-power",
    "nox-probe",
    "nox-sim",
    "nox-statics",
    "nox-telemetry",
    "nox-traffic",
];

/// Crates (by `crates/<dir>` name) whose sources may carry
/// `allow(wall_clock)` directives: the self-profiling layers whose whole
/// job is reading the wall clock, and the perf benchmark whose artifact
/// *is* wall time. The allowlist audit ([`audit_path`]) flags a
/// wall-clock allow anywhere else — the directive suppresses the lint,
/// so the audit is what keeps real-time reads from quietly spreading
/// into the simulation and analysis crates under cover of an `allow`.
pub const WALL_CLOCK_ALLOW_CRATES: &[&str] = &["bench", "nox-probe", "nox-telemetry"];

/// The lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a hash-container variable.
    UnorderedIter,
    /// Hash-container declaration in an artifact-feeding crate.
    UnorderedCollection,
    /// Wall-clock read.
    WallClock,
    /// Thread-count query.
    ThreadCount,
}

impl Rule {
    /// All rules.
    pub const ALL: [Rule; 4] = [
        Rule::UnorderedIter,
        Rule::UnorderedCollection,
        Rule::WallClock,
        Rule::ThreadCount,
    ];

    /// The name used in findings and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered_iter",
            Rule::UnorderedCollection => "unordered_collection",
            Rule::WallClock => "wall_clock",
            Rule::ThreadCount => "thread_count",
        }
    }

    /// Inverse of [`Rule::name`].
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File the finding is in (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Comments and the *contents* of string/char literals replaced by
/// spaces (newlines kept), plus the comment text collected per line for
/// directive parsing.
struct Masked {
    code: String,
    comments: Vec<String>,
}

fn mask_source(src: &str) -> Masked {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let mut code = String::with_capacity(src.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut state = State::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push('\n');
            comments.push(String::new());
            line += 1;
            if state == State::LineComment {
                state = State::Normal;
            }
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if c == 'r' && raw_str_hashes(&chars, i).is_some() {
                    let hashes = raw_str_hashes(&chars, i).unwrap();
                    state = State::RawStr(hashes);
                    for _ in 0..(hashes as usize + 2) {
                        code.push(' ');
                    }
                    i += hashes as usize + 2;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    state = State::CharLit;
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comments[line].push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    code.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comments[line].push_str("/*");
                    code.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    comments[line].push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Keep line accounting intact across `\`-newline
                    // string continuations.
                    if chars.get(i + 1) == Some(&'\n') {
                        code.push_str(" \n");
                        comments.push(String::new());
                        line += 1;
                    } else {
                        code.push_str("  ");
                    }
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..(hashes as usize + 1) {
                        code.push(' ');
                    }
                    i += hashes as usize + 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    Masked { code, comments }
}

/// `r`, `r#`, `r##`... followed by `"` starting at `i` (which holds the
/// `r`); returns the hash count.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<u32> {
    // An identifier character before the `r` means this is the tail of a
    // longer identifier, not a raw-string prefix.
    if i > 0 && is_ident_char(chars[i - 1]) {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime: `'a` (lifetime) has an
/// identifier char after the quote and no closing quote right behind it.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c) if is_ident_char(c) => chars.get(i + 2) == Some(&'\''),
        Some(_) => true, // escape, punctuation, quote: a char literal
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// `true` if `pat` occurs in `s` delimited by non-identifier characters.
fn word_bounded(s: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = s[from..].find(pat) {
        let start = from + pos;
        let end = start + pat.len();
        let pre_ok = start == 0 || !is_ident_char(s[..start].chars().next_back().unwrap());
        let post_ok = end == s.len() || !is_ident_char(s[end..].chars().next().unwrap());
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// Names of variables/fields declared on this masked line as a hash
/// container. Heuristics: `let [mut] NAME` on the line, or the
/// identifier directly before a `:` type ascription.
fn declared_hash_names(code_line: &str) -> Vec<String> {
    if !HASH_TYPES.iter().any(|t| word_bounded(code_line, t)) {
        return Vec::new();
    }
    let mut names = Vec::new();
    // `let mut name` / `let name`
    let toks: Vec<&str> = code_line
        .split(|c: char| !is_ident_char(c))
        .filter(|t| !t.is_empty())
        .collect();
    if let Some(p) = toks.iter().position(|&t| t == "let") {
        let mut q = p + 1;
        if toks.get(q) == Some(&"mut") {
            q += 1;
        }
        if let Some(name) = toks.get(q) {
            names.push((*name).to_string());
        }
    } else {
        // Field or binding ascription: `name: path::HashMap<..>`.
        if let Some(colon) = code_line.find(':') {
            let before = &code_line[..colon];
            if let Some(name) = before
                .split(|c: char| !is_ident_char(c))
                .rfind(|t| !t.is_empty())
            {
                names.push(name.to_string());
            }
        }
    }
    names
}

/// `detlint: allow(...)` directives in the file's comments, as
/// (0-based line, rule) pairs in line order.
fn allow_directives(comments: &[String]) -> Vec<(usize, Rule)> {
    let mut out = Vec::new();
    for (ln, comment) in comments.iter().enumerate() {
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("detlint: allow(") {
            rest = &rest[pos + "detlint: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            for name in rest[..close].split(',') {
                if let Some(rule) = Rule::parse(name.trim()) {
                    out.push((ln, rule));
                }
            }
            rest = &rest[close..];
        }
    }
    out
}

/// Scans one source text. `file` labels findings; `artifact_crate`
/// enables the declaration-level `unordered_collection` rule.
pub fn scan_source(file: &str, src: &str, artifact_crate: bool) -> Vec<Finding> {
    let masked = mask_source(src);
    let code_lines: Vec<&str> = masked.code.lines().collect();
    let src_lines: Vec<&str> = src.lines().collect();

    // Allow directives: each applies to its own line and the next.
    let mut allowed: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); code_lines.len() + 1];
    for (ln, rule) in allow_directives(&masked.comments) {
        if ln < allowed.len() {
            allowed[ln].insert(rule);
        }
        if ln + 1 < allowed.len() {
            allowed[ln + 1].insert(rule);
        }
    }

    // Pass 1: hash-container variable names declared anywhere in the file.
    let mut hash_vars: BTreeSet<String> = BTreeSet::new();
    for line in &code_lines {
        hash_vars.extend(declared_hash_names(line));
    }

    let mut findings: BTreeSet<Finding> = BTreeSet::new();
    let push = |findings: &mut BTreeSet<Finding>, ln: usize, rule: Rule| {
        if allowed[ln].contains(&rule) {
            return;
        }
        findings.insert(Finding {
            file: file.to_string(),
            line: ln + 1,
            rule,
            excerpt: src_lines.get(ln).unwrap_or(&"").trim().to_string(),
        });
    };

    for (ln, code) in code_lines.iter().enumerate() {
        if word_bounded(code, "Instant") && code.contains("Instant::now")
            || word_bounded(code, "SystemTime") && code.contains("SystemTime::now")
        {
            push(&mut findings, ln, Rule::WallClock);
        }
        if word_bounded(code, "available_parallelism") {
            push(&mut findings, ln, Rule::ThreadCount);
        }
        if artifact_crate && HASH_TYPES.iter().any(|t| word_bounded(code, t)) {
            push(&mut findings, ln, Rule::UnorderedCollection);
        }
        for var in &hash_vars {
            let method_hit = ITER_METHODS
                .iter()
                .any(|m| code.contains(&format!("{var}{m}")));
            let for_hit = word_bounded(code, "for")
                && word_bounded(code, "in")
                && word_bounded(code, var)
                && code
                    .find(" in ")
                    .is_some_and(|p| word_bounded(&code[p + 4..], var));
            if method_hit || for_hit {
                push(&mut findings, ln, Rule::UnorderedIter);
            }
        }
    }
    findings.into_iter().collect()
}

/// Which workspace crate a path belongs to: the component after a
/// `crates` component, if any.
fn crate_of(path: &Path) -> Option<String> {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    comps
        .iter()
        .position(|c| c == "crates")
        .and_then(|i| comps.get(i + 1))
        .cloned()
}

/// Scans a file, or recursively a directory tree, of `.rs` sources.
/// Directory walks skip `target` and any `fixtures` component;
/// explicitly named files are always scanned.
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn scan_path(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
    } else {
        collect_rs_files(root, &mut files)?;
        files.sort();
    }
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let artifact = crate_of(&f)
            .map(|c| ARTIFACT_CRATES.contains(&c.as_str()))
            .unwrap_or(false);
        findings.extend(scan_source(&f.display().to_string(), &src, artifact));
    }
    Ok(findings)
}

/// One allowlist-audit violation: an `allow(...)` directive in a crate
/// the policy does not permit to carry it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AuditFinding {
    /// File the directive is in.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// The rule the directive suppresses.
    pub rule: Rule,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow({}) outside the permitted crates ({})",
            self.file,
            self.line,
            self.rule,
            WALL_CLOCK_ALLOW_CRATES.join(", ")
        )
    }
}

/// Audits one source text's `allow` directives against the policy:
/// `wall_clock` allows are permitted only in [`WALL_CLOCK_ALLOW_CRATES`]
/// (`crate_name` is the `crates/<dir>` component; `None` — a path
/// outside the workspace layout — permits nothing). The other rules'
/// allows are unrestricted: suppressing `thread_count` on a pool-sizing
/// line is the directive's intended use anywhere.
pub fn audit_source(file: &str, src: &str, crate_name: Option<&str>) -> Vec<AuditFinding> {
    let masked = mask_source(src);
    allow_directives(&masked.comments)
        .into_iter()
        .filter(|(_, rule)| {
            *rule == Rule::WallClock
                && !crate_name.is_some_and(|c| WALL_CLOCK_ALLOW_CRATES.contains(&c))
        })
        .map(|(ln, rule)| AuditFinding {
            file: file.to_string(),
            line: ln + 1,
            rule,
        })
        .collect()
}

/// Audits a file, or recursively a directory tree, of `.rs` sources
/// against the allowlist policy. Walks the same set of files as
/// [`scan_path`].
///
/// # Errors
///
/// Propagates I/O errors from reading the tree.
pub fn audit_path(root: &Path) -> std::io::Result<Vec<AuditFinding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
    } else {
        collect_rs_files(root, &mut files)?;
        files.sort();
    }
    let mut findings = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let crate_name = crate_of(&f);
        findings.extend(audit_source(
            &f.display().to_string(),
            &src,
            crate_name.as_deref(),
        ));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_wall_clock_reads() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = scan_source("x.rs", src, false);
        assert_eq!(rules(&f), vec![Rule::WallClock]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn flags_system_time_and_thread_count() {
        let src = "fn f() { let _ = SystemTime::now(); }\nfn g() { let _ = std::thread::available_parallelism(); }\n";
        let f = scan_source("x.rs", src, false);
        assert_eq!(rules(&f), vec![Rule::WallClock, Rule::ThreadCount]);
    }

    #[test]
    fn flags_hash_iteration_via_methods_and_for_loops() {
        let src = "fn f() {\n    let mut m = HashMap::new();\n    for (k, v) in m.iter() { }\n    for k in &m { }\n}\n";
        let f = scan_source("x.rs", src, false);
        // Line 3 and 4 both iterate; line 2 declares (not flagged outside
        // artifact crates).
        assert_eq!(
            f.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
            vec![(3, Rule::UnorderedIter), (4, Rule::UnorderedIter)]
        );
    }

    #[test]
    fn flags_declarations_only_in_artifact_crates() {
        let src = "struct S {\n    index: std::collections::HashSet<u64>,\n}\n";
        assert!(scan_source("x.rs", src, false).is_empty());
        let f = scan_source("x.rs", src, true);
        assert_eq!(rules(&f), vec![Rule::UnorderedCollection]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "fn f() {\n    // detlint: allow(wall_clock)\n    let t = Instant::now();\n    let u = Instant::now();\n}\n";
        let f = scan_source("x.rs", src, false);
        assert_eq!(f.iter().map(|x| x.line).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn trailing_allow_directive_works() {
        let src = "fn f() { let t = Instant::now(); } // detlint: allow(wall_clock)\n";
        assert!(scan_source("x.rs", src, false).is_empty());
    }

    #[test]
    fn allow_parses_multiple_rules() {
        let src = "// detlint: allow(wall_clock, thread_count)\nlet t = (Instant::now(), available_parallelism());\n";
        assert!(scan_source("x.rs", src, false).is_empty());
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src = "fn f() {\n    let s = \"Instant::now() HashMap\";\n    let r = r#\"SystemTime::now()\"#;\n    // Instant::now() in a comment\n    /* HashSet<u64> in a block comment */\n}\n";
        assert!(scan_source("x.rs", src, true).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_masker() {
        let src = "fn f<'a>(x: &'a str) -> char {\n    let q = '\"';\n    let t = Instant::now();\n    q\n}\n";
        let f = scan_source("x.rs", src, false);
        assert_eq!(rules(&f), vec![Rule::WallClock]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unknown_allow_rule_is_ignored() {
        let src = "// detlint: allow(no_such_rule)\nlet t = Instant::now();\n";
        assert_eq!(
            rules(&scan_source("x.rs", src, false)),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn findings_are_sorted_and_display_cleanly() {
        let src = "let t = Instant::now();\nlet m: HashMap<u8, u8> = HashMap::new();\n";
        let f = scan_source("z.rs", src, true);
        let shown: Vec<String> = f.iter().map(|x| x.to_string()).collect();
        assert!(shown[0].starts_with("z.rs:1: wall_clock:"), "{shown:?}");
        assert!(shown[1].starts_with("z.rs:2: unordered_collection:"));
    }

    #[test]
    fn rule_names_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
        assert_eq!(Rule::parse("bogus"), None);
    }

    #[test]
    fn audit_flags_wall_clock_allows_outside_permitted_crates() {
        let src = "fn f() {\n    let t = Instant::now(); // detlint: allow(wall_clock)\n}\n";
        // Simulation/analysis crates must not carry the directive.
        let f = audit_source("crates/nox-sim/src/sim.rs", src, Some("nox-sim"));
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (2, Rule::WallClock));
        assert!(f[0].to_string().contains("allow(wall_clock)"));
        // The profiling layers and the perf benchmark may.
        for ok in WALL_CLOCK_ALLOW_CRATES {
            assert!(audit_source("x.rs", src, Some(ok)).is_empty(), "{ok}");
        }
        // Outside the workspace layout nothing is permitted.
        assert_eq!(audit_source("x.rs", src, None).len(), 1);
    }

    #[test]
    fn audit_ignores_other_rules_and_strings() {
        let src = "// detlint: allow(thread_count, unordered_iter)\n\
                   let s = \"detlint: allow(wall_clock)\";\n";
        assert!(audit_source("x.rs", src, Some("nox-sim")).is_empty());
    }

    #[test]
    fn workspace_wall_clock_allows_obey_the_policy() {
        // The live audit over this workspace's own sources: every
        // wall-clock allow must sit in a permitted crate.
        // Canonicalized so `crate_of` sees one clean `crates/<dir>`
        // component (the manifest-relative path has a `../..` in it).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../crates")
            .canonicalize()
            .expect("workspace crates/ exists");
        let findings = audit_path(&root).expect("scan workspace");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(
            crate_of(Path::new("crates/nox-sim/src/sim.rs")),
            Some("nox-sim".to_string())
        );
        assert_eq!(crate_of(Path::new("shims/rand/src/lib.rs")), None);
    }
}
