//! Emits `BENCH_sim_throughput.json` — the simulator's own performance,
//! machine-readable, so the perf trajectory of the reproduction can be
//! tracked across commits (`noxsim bench-compare OLD NEW` diffs two of
//! these artifacts):
//!
//! * simulated cycles per wall-clock second for each architecture on the
//!   paper's 8x8 mesh under uniform traffic — N trials each (default 5,
//!   `--trials N` to change) after W discarded warmup trials (default 1,
//!   `--warmup W`), reported as median/min/max/spread plus the trimmed
//!   median (fastest and slowest measured trial dropped), because
//!   single-shot wall-clock numbers are too noisy to diff; and
//! * wall time of each figure harness binary (run with `--quick`).
//!
//! Run from the repo root so the artifact lands next to the README:
//!
//! ```text
//! cargo run --release -p nox-bench --bin bench_throughput [-- --trials N] [--warmup W] [--threads N]
//! ```
//!
//! `--threads N` fans the (architecture, trial) pairs out over the
//! deterministic `nox-exec` pool. Each trial still times its own
//! simulation, and the per-architecture `cycles` counts are bit-identical
//! at any thread count, but concurrent trials contend for cores and
//! deflate each other's cycles/sec — so the default stays 1 and parallel
//! runs are for smoke passes, not for numbers worth committing.
//!
//! Harness timings spawn the sibling binaries from the same target
//! directory; any that are not built are recorded as skipped rather than
//! failing the whole run. The schema (`nox-bench/sim-throughput/v2`) is
//! documented in the README and implemented in
//! [`nox_analysis::bench_artifact`].

use std::process::{Command, Stdio};
use std::time::Instant;

use nox_analysis::bench_artifact::{ArchThroughput, BenchArtifact, HarnessTiming};
use nox_exec::Executor;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

const OUT: &str = "BENCH_sim_throughput.json";
const RATE_MBPS: f64 = 2_000.0;
const DEFAULT_TRIALS: usize = 5;
const DEFAULT_WARMUP: usize = 1;

/// Every figure harness in `src/bin`, in the index order of `main.rs`.
const HARNESSES: &[&str] = &[
    "figs237",
    "table1",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13_area",
    "ablation",
    "cmesh",
    "feedback",
];

/// One timed trial: simulated cycles and cycles per wall-clock second.
fn sim_trial(arch: Arch) -> (u64, f64) {
    let cores = Mesh::new(8, 8);
    let trace = generate(cores, &SyntheticConfig::uniform(RATE_MBPS, 40_000.0));
    let spec = RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 6_000.0,
        drain_ns: 30_000.0,
    };
    // Wall time is the measurement here: the perf artifact's whole point.
    let t = Instant::now(); // detlint: allow(wall_clock)
    let r = run(NetConfig::paper(arch), &trace, &spec);
    (r.cycles, r.cycles as f64 / t.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|n| n.parse::<usize>().ok())
    };
    let trials = flag("--trials").unwrap_or(DEFAULT_TRIALS).max(1);
    let warmup = flag("--warmup").unwrap_or(DEFAULT_WARMUP);
    let exec = Executor::new(flag("--threads").unwrap_or(1));

    // Warmup trials run first for each architecture (populating caches
    // and letting the CPU settle) and are discarded from the stats.
    let jobs: Vec<Arch> = Arch::ALL
        .into_iter()
        .flat_map(|arch| std::iter::repeat_n(arch, warmup + trials))
        .collect();
    let mut results = exec.map(jobs, |_, arch| sim_trial(arch)).into_iter();
    let architectures: Vec<ArchThroughput> = Arch::ALL
        .into_iter()
        .map(|arch| {
            for _ in 0..warmup {
                let _ = results.next().expect("one result per warmup trial");
            }
            let mut cycles = 0;
            let trials_cps = (0..trials)
                .map(|_| {
                    let (c, cps) = results.next().expect("one result per trial");
                    cycles = c;
                    cps
                })
                .collect();
            let a = ArchThroughput {
                arch: arch.name().to_string(),
                cycles,
                trials_cps,
            };
            println!(
                "{:<16} {:>8} cycles, {trials} trials (+{warmup} warmup): trimmed median {:>12.0} cycles/sec (median {:.0}, min {:.0}, spread {:.0}%)",
                a.arch,
                a.cycles,
                a.trimmed_median_cps(),
                a.median_cps(),
                a.min_cps(),
                a.spread() * 100.0
            );
            a
        })
        .collect();

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    let harnesses = HARNESSES
        .iter()
        .map(|name| {
            let bin = exe_dir.as_ref().map(|d| d.join(name));
            let wall_s = bin.filter(|b| b.exists()).and_then(|b| {
                let t = Instant::now(); // detlint: allow(wall_clock)
                let status = Command::new(&b)
                    .arg("--quick")
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .status()
                    .ok()?;
                status.success().then(|| t.elapsed().as_secs_f64())
            });
            match wall_s {
                Some(secs) => println!("{name:<16} {secs:>6.2} s (--quick)"),
                None => println!("{name:<16} skipped (binary not built or failed)"),
            }
            HarnessTiming {
                harness: name.to_string(),
                args: vec!["--quick".to_string()],
                wall_s,
            }
        })
        .collect();

    let artifact = BenchArtifact {
        schema: nox_analysis::bench_artifact::SCHEMA_V2.to_string(),
        rate_mbps_per_node: RATE_MBPS,
        architectures,
        harnesses,
    };
    match std::fs::write(OUT, format!("{}\n", artifact.to_json())) {
        Ok(()) => println!("wrote {OUT}"),
        Err(e) => {
            eprintln!("error: could not write {OUT}: {e}");
            std::process::exit(1);
        }
    }
}
