//! Emits `BENCH_sim_throughput.json` — the simulator's own performance,
//! machine-readable, so the perf trajectory of the reproduction can be
//! tracked across commits:
//!
//! * simulated cycles per wall-clock second for each architecture on the
//!   paper's 8x8 mesh under uniform traffic, and
//! * wall time of each figure harness binary (run with `--quick`).
//!
//! Run from the repo root so the artifact lands next to the README:
//!
//! ```text
//! cargo run --release -p nox-bench --bin bench_throughput
//! ```
//!
//! Harness timings spawn the sibling binaries from the same target
//! directory; any that are not built are recorded as skipped rather than
//! failing the whole run. The schema is documented in the README.

use std::fmt::Write as _;
use std::process::{Command, Stdio};
use std::time::Instant;

use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

const OUT: &str = "BENCH_sim_throughput.json";
const RATE_MBPS: f64 = 2_000.0;

/// Every figure harness in `src/bin`, in the index order of `main.rs`.
const HARNESSES: &[&str] = &[
    "figs237",
    "table1",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13_area",
    "ablation",
    "cmesh",
    "feedback",
];

fn sim_throughput(arch: Arch) -> (u64, f64) {
    let cores = Mesh::new(8, 8);
    let trace = generate(cores, &SyntheticConfig::uniform(RATE_MBPS, 40_000.0));
    let spec = RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 6_000.0,
        drain_ns: 30_000.0,
    };
    let t = Instant::now();
    let r = run(NetConfig::paper(arch), &trace, &spec);
    (r.cycles, t.elapsed().as_secs_f64())
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut doc = String::new();
    doc.push_str("{\n  \"schema\": \"nox-bench/sim-throughput/v1\",\n");
    let _ = writeln!(doc, "  \"rate_mbps_per_node\": {RATE_MBPS},");
    doc.push_str("  \"architectures\": [\n");
    for (i, arch) in Arch::ALL.into_iter().enumerate() {
        let (cycles, secs) = sim_throughput(arch);
        let cps = cycles as f64 / secs;
        println!(
            "{:<16} {cycles:>8} cycles in {secs:>6.2} s = {cps:>12.0} cycles/sec",
            arch.name()
        );
        let _ = writeln!(
            doc,
            "    {{\"arch\": \"{}\", \"cycles\": {cycles}, \"wall_s\": {}, \"cycles_per_sec\": {}}}{}",
            arch.name(),
            json_f(secs),
            json_f(cps),
            if i + 1 < Arch::ALL.len() { "," } else { "" }
        );
    }
    doc.push_str("  ],\n  \"figure_harnesses\": [\n");

    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()));
    for (i, name) in HARNESSES.iter().enumerate() {
        let bin = exe_dir.as_ref().map(|d| d.join(name));
        let timing = bin.filter(|b| b.exists()).and_then(|b| {
            let t = Instant::now();
            let status = Command::new(&b)
                .arg("--quick")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .status()
                .ok()?;
            status.success().then(|| t.elapsed().as_secs_f64())
        });
        match timing {
            Some(secs) => {
                println!("{name:<16} {secs:>6.2} s (--quick)");
                let _ = write!(
                    doc,
                    "    {{\"harness\": \"{name}\", \"args\": [\"--quick\"], \"wall_s\": {}}}",
                    json_f(secs)
                );
            }
            None => {
                println!("{name:<16} skipped (binary not built or failed)");
                let _ = write!(
                    doc,
                    "    {{\"harness\": \"{name}\", \"args\": [\"--quick\"], \"wall_s\": null}}"
                );
            }
        }
        doc.push_str(if i + 1 < HARNESSES.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");

    match std::fs::write(OUT, &doc) {
        Ok(()) => println!("wrote {OUT}"),
        Err(e) => {
            eprintln!("error: could not write {OUT}: {e}");
            std::process::exit(1);
        }
    }
}
