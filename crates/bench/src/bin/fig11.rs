//! Regenerates Figure 11 — application energy-delay² — and the paper's
//! headline mean improvements (+29.5% / +34.4% / +2.7%).
//!
//! Thin renderer over [`nox_analysis::harness::fig11`]. Pass `--quick`,
//! `--smoke`, or `--json`.

use nox_analysis::harness::fig11;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig11::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
