//! Regenerates Figure 11 — application energy-delay^2 — over the nine
//! synthesized CMP workloads, and the paper's headline summary: "On
//! average the NoX architecture outperforms the non-speculative,
//! Spec-Fast, and Spec-Accurate by 29.5%, 34.4%, and 2.7% respectively on
//! an energy-delay^2 basis."

use nox_analysis::apps::{app_run_spec, mean_ed2_improvement_pct, run_workload, AppResult};
use nox_analysis::Table;
use nox_sim::config::Arch;
use nox_traffic::WORKLOADS;

fn main() {
    let spec = app_run_spec();
    let mut per_arch: Vec<Vec<AppResult>> = vec![Vec::new(); 4];
    let mut t = Table::new(
        "Figure 11: application energy-delay^2 (pJ*ns^2)",
        &["workload", "Non-Spec", "Spec-Fast", "Spec-Acc", "NoX"],
    );
    for w in &WORKLOADS {
        let results: Vec<AppResult> = Arch::ALL
            .iter()
            .map(|&a| run_workload(a, w, 13, &spec))
            .collect();
        t.row([
            w.name.to_string(),
            format!("{:.3e}", results[0].ed2),
            format!("{:.3e}", results[1].ed2),
            format!("{:.3e}", results[2].ed2),
            format!("{:.3e}", results[3].ed2),
        ]);
        for (v, r) in per_arch.iter_mut().zip(results) {
            v.push(r);
        }
    }
    println!("{t}");

    let nox = &per_arch[3];
    println!("Mean ED^2 improvement of NoX (geometric mean across workloads):");
    for (i, paper) in [(0usize, 29.5), (1, 34.4), (2, 2.7)] {
        println!(
            "  vs {:<16} {:+.1}%   (paper: +{:.1}%)",
            per_arch[i][0].arch.name(),
            mean_ed2_improvement_pct(nox, &per_arch[i]),
            paper
        );
    }
}
