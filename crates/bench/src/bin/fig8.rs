//! Regenerates Figure 8 — synthetic traffic latency versus injection
//! bandwidth — for four traffic scenarios: uniform random, transpose,
//! bit-complement (Poisson arrivals), and self-similar Pareto ON/OFF
//! uniform traffic (`alpha = 1.4`, `b = 8`, §5.1).
//!
//! Prints one latency table per scenario plus the saturation and
//! crossover summary the paper reports in prose. Latencies are in
//! nanoseconds and injection rates in MB/s per node, exactly as the
//! paper's axes. Pass `--quick` for a coarser, faster sweep.

use nox_analysis::sweep::{crossover_mbps, sweep, ArchSeries, SweepConfig};
use nox_analysis::Table;
use nox_sim::config::Arch;
use nox_traffic::synthetic::Process;
use nox_traffic::Pattern;

fn scenarios() -> Vec<(&'static str, Pattern, Process)> {
    vec![
        (
            "a) uniform random",
            Pattern::UniformRandom,
            Process::Poisson,
        ),
        ("b) transpose", Pattern::Transpose, Process::Poisson),
        (
            "c) bit-complement",
            Pattern::BitComplement,
            Process::Poisson,
        ),
        (
            "d) self-similar (Pareto on/off)",
            Pattern::UniformRandom,
            Process::ParetoOnOff,
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let step = if quick { 500.0 } else { 250.0 };
    let max = 3_500.0;
    let rates: Vec<f64> = (1..)
        .map(|i| i as f64 * step)
        .take_while(|&r| r <= max)
        .collect();

    for (name, pattern, process) in scenarios() {
        let cfg = SweepConfig {
            pattern,
            process,
            ..SweepConfig::uniform(rates.clone())
        };
        let series: Vec<ArchSeries> = Arch::ALL.iter().map(|&a| sweep(a, &cfg)).collect();

        let mut t = Table::new(
            format!("Figure 8{name}: mean latency (ns) vs offered load (MB/s/node)"),
            &["MB/s/node", "Non-Spec", "Spec-Fast", "Spec-Acc", "NoX"],
        );
        for (i, &rate) in rates.iter().enumerate() {
            let cell = |s: &ArchSeries| {
                let p = &s.points[i];
                if p.drained {
                    format!("{:.2}", p.latency_ns)
                } else {
                    "sat".to_string()
                }
            };
            t.row([
                format!("{rate:.0}"),
                cell(&series[0]),
                cell(&series[1]),
                cell(&series[2]),
                cell(&series[3]),
            ]);
        }
        println!("{t}");

        print!("  saturation throughput (MB/s/node):");
        for s in &series {
            print!("  {} {:.0}", s.arch.name(), s.saturation_mbps(15.0));
        }
        println!();
        let nox = &series[3];
        let best_other = series[..3]
            .iter()
            .map(|s| s.saturation_mbps(15.0))
            .fold(0.0, f64::max);
        println!(
            "  NoX throughput vs best other: {:+.1}%  (paper: up to +9.9% across patterns)",
            (nox.saturation_mbps(15.0) / best_other - 1.0) * 100.0
        );
        if let Some(x) = crossover_mbps(nox, &series[2]) {
            println!("  NoX overtakes Spec-Accurate from {x:.0} MB/s/node");
        }
        if let Some(x) = crossover_mbps(&series[2], &series[1]) {
            println!("  Spec-Accurate overtakes Spec-Fast from {x:.0} MB/s/node");
        }
        println!();
    }
    println!(
        "Paper prose for Fig 8a: Spec-Fast best to 575 MB/s/node, Spec-Accurate to\n\
         750 MB/s/node, NoX best above that until saturation at 2775 MB/s/node;\n\
         Spec-Fast frequently saturates at less than half the others' bandwidth."
    );
}
