//! Regenerates Figure 8 — synthetic traffic latency versus injection
//! bandwidth — for the paper's four traffic scenarios (§5.1).
//!
//! Thin renderer over [`nox_analysis::harness::fig8`]; the same library
//! function feeds the claims registry. Pass `--quick` for a coarser
//! sweep, `--smoke` for a CI-fast one, `--json` for the versioned
//! machine-readable document.

use nox_analysis::harness::fig8;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig8::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
