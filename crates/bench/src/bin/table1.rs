//! Regenerates Table 1 — common system parameters — from the live
//! configuration types, so any drift between code and paper shows up
//! here.
//!
//! Thin renderer over [`nox_analysis::harness::table1`]. Pass `--json`
//! for the versioned machine-readable document.

use nox_analysis::harness::table1;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = table1::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
