//! Regenerates Table 1 — common system parameters — from the live
//! configuration types, so any drift between code and paper shows up here.

use nox_analysis::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_traffic::cmp::{CTRL_FLITS, DATA_FLITS};

fn main() {
    let cfg = NetConfig::paper(Arch::Nox);
    let mut t = Table::new("Table 1: Common System Parameters", &["Parameter", "Value"]);
    t.row(["Cores", &cfg.nodes().to_string()]);
    t.row(["Topology", &format!("{}x{} mesh", cfg.width, cfg.height)]);
    t.row([
        "Processor",
        "3GHz in-order PowerPC (trace synthesizer model)",
    ]);
    t.row([
        "L1 I/D Caches",
        "32KB, 2-way set associative (modeled via miss rates)",
    ]);
    t.row([
        "L2 Cache",
        "256KB, 8-way set associative (modeled via home nodes)",
    ]);
    t.row(["Cache Line Size", "64-bytes"]);
    t.row([
        "Memory Latency",
        "100 cycles (folded into workload service_ns)",
    ]);
    t.row([
        "Interconnect",
        &format!(
            "{}-bit request, {}-bit reply network",
            cfg.flit_bytes * 8,
            cfg.flit_bytes * 8
        ),
    ]);
    t.row([
        "Packet Sizes",
        &format!(
            "{} byte control ({} flit), {} byte data ({} flits)",
            CTRL_FLITS as u32 * cfg.flit_bytes,
            CTRL_FLITS,
            DATA_FLITS as u32 * cfg.flit_bytes,
            DATA_FLITS
        ),
    ]);
    t.row([
        "Buffer Depth",
        &format!("{} 64-bit entries/port", cfg.buffer_depth),
    ]);
    t.row(["Channel Length", "2mm"]);
    t.row(["Routing Algorithm", "Dimension Ordered Routing"]);
    println!("{t}");
}
