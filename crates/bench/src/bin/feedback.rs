//! §5.2 conjecture (beyond the paper): closed-loop CMP runs with
//! bounded MSHRs and think times, where network latency feeds back into
//! issue rate.
//!
//! Thin renderer over [`nox_analysis::harness::feedback`]. Pass
//! `--quick`, `--smoke`, or `--json`.

use nox_analysis::harness::feedback;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = feedback::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
