//! Tests the paper's §5.2 conjecture: "these latency results are
//! conservative due to our trace-based methodology and the self-throttling
//! nature of interconnection networks ... allowing network feedback would
//! result in higher contention favoring the NoX router."
//!
//! Runs the closed-loop CMP driver (bounded MSHRs, think times) on every
//! router architecture: each core can only issue a new miss after earlier
//! replies return, so a lower-latency network completes more misses per
//! nanosecond. Miss throughput becomes the end-to-end performance metric
//! the trace methodology cannot measure.

use nox_analysis::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_traffic::closed_loop::{run_closed_loop, ClosedLoopConfig};
use nox_traffic::cmp::workload;

fn main() {
    let cfg = ClosedLoopConfig {
        mshrs: 8,
        think_ns: 4.0,
        warmup_cycles: 3_000,
        measure_cycles: 20_000,
        seed: 0xC10,
    };

    for name in ["ocean", "tpcc"] {
        let w = workload(name).unwrap();
        let mut t = Table::new(
            format!(
                "closed-loop {name}: {} MSHRs/core, {} ns think time",
                cfg.mshrs, cfg.think_ns
            ),
            &[
                "architecture",
                "miss latency (ns)",
                "misses/us (all cores)",
                "vs NoX",
            ],
        );
        let mut rows = Vec::new();
        for arch in Arch::ALL {
            let r = run_closed_loop(NetConfig::paper(arch), w, &cfg);
            rows.push((arch, r));
        }
        let nox_tp = rows
            .iter()
            .find(|(a, _)| *a == Arch::Nox)
            .unwrap()
            .1
            .miss_throughput_per_ns;
        for (arch, r) in &rows {
            t.row([
                arch.name().to_string(),
                format!("{:.2}", r.miss_latency_ns.mean()),
                format!("{:.1}", r.miss_throughput_per_ns * 1_000.0),
                format!("{:+.1}%", (r.miss_throughput_per_ns / nox_tp - 1.0) * 100.0),
            ]);
        }
        println!("{t}");
    }
    println!(
        "With feedback, network latency feeds straight back into issue rate.\n\
         On the control-heavy commercial workload (tpcc) NoX leads everyone,\n\
         with the gaps wider than the open-loop Figure 10 — §5.2's prediction.\n\
         On the data-fill-heavy scientific workload (ocean) the 9-flit reply\n\
         network dominates and Spec-Accurate's shorter clock keeps it level."
    );
}
