//! The paper's future-work study (§8): "evaluate the NoX architecture on
//! alternative, higher radix, topologies ... which may derive more
//! benefit given their higher arbitration latencies, their longer
//! channels, and the fixed cost of the NoX decoding hardware."
//!
//! Compares the 64-core 8x8 mesh of five-port routers against a 64-core
//! 4x4 *concentrated* mesh of radix-8 routers (4 cores per router, 4 mm
//! channels, clocks re-derived by the logical-effort model), sweeping
//! uniform random traffic on both.

use nox_analysis::Table;
use nox_power::timing::CriticalPath;
use nox_sim::config::{cmesh_clock_ps, Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

fn main() {
    println!("Radix-8 concentrated-mesh clock periods (logical-effort model):\n");
    let mut t = Table::new(
        "",
        &[
            "architecture",
            "mesh clock (ns)",
            "cmesh clock (ns)",
            "NoX-relative penalty",
        ],
    );
    for arch in Arch::ALL {
        let pen_mesh = Arch::Nox.clock_ps() as f64 / arch.clock_ps() as f64;
        let pen_cmesh = cmesh_clock_ps(Arch::Nox) as f64 / cmesh_clock_ps(arch) as f64;
        t.row([
            arch.name().to_string(),
            format!("{:.2}", arch.clock_ps() as f64 / 1000.0),
            format!("{:.2}", cmesh_clock_ps(arch) as f64 / 1000.0),
            format!("{:.3} -> {:.3}", pen_mesh, pen_cmesh),
        ]);
        assert_eq!(
            CriticalPath::cmesh(arch).period_table2_ps(),
            cmesh_clock_ps(arch)
        );
    }
    println!("{t}");

    let spec = RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 6_000.0,
        drain_ns: 30_000.0,
    };
    // Same 64-core uniform traffic drives both topologies.
    let cores = Mesh::new(8, 8);

    type ConfigFn = fn(Arch) -> NetConfig;
    let variants: [(&str, ConfigFn); 2] = [
        ("8x8 mesh (radix 5)", NetConfig::paper),
        ("4x4 cmesh (radix 8)", NetConfig::cmesh_paper),
    ];
    for (label, cfg_of) in variants {
        let mut t = Table::new(
            format!("{label}: mean latency (ns) vs offered load, uniform random"),
            &[
                "MB/s/node",
                "Non-Spec",
                "Spec-Fast",
                "Spec-Acc",
                "NoX",
                "NoX vs Spec-Acc",
            ],
        );
        for rate in [500.0, 1000.0, 1500.0, 2000.0, 2500.0] {
            let trace = generate(cores, &SyntheticConfig::uniform(rate, 40_000.0));
            let lat: Vec<(f64, bool)> = Arch::ALL
                .iter()
                .map(|&a| {
                    let r = run(cfg_of(a), &trace, &spec);
                    (r.avg_latency_ns(), r.drained)
                })
                .collect();
            let cell = |i: usize| {
                if lat[i].1 {
                    format!("{:.2}", lat[i].0)
                } else {
                    "sat".into()
                }
            };
            t.row([
                format!("{rate:.0}"),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
                if lat[2].1 && lat[3].1 {
                    format!("{:+.1}%", (lat[3].0 / lat[2].0 - 1.0) * 100.0)
                } else {
                    "-".into()
                },
            ]);
        }
        println!("{t}");
    }
    println!(
        "Hypothesis check (§8): NoX's clock penalty vs Spec-Accurate shrinks from\n\
         {:.1}% on the mesh to {:.1}% on the cmesh, while per-hop contention rises\n\
         (fewer, wider routers) — both effects work in NoX's favour at higher radix.",
        (Arch::Nox.clock_ps() as f64 / Arch::SpecAccurate.clock_ps() as f64 - 1.0) * 100.0,
        (cmesh_clock_ps(Arch::Nox) as f64 / cmesh_clock_ps(Arch::SpecAccurate) as f64 - 1.0)
            * 100.0,
    );
}
