//! §8 future-work study: the NoX architecture on a higher-radix
//! 64-core concentrated mesh, versus the paper's 8x8 mesh.
//!
//! Thin renderer over [`nox_analysis::harness::cmesh`]. Pass `--quick`,
//! `--smoke`, or `--json`. Exits nonzero if the cmesh clock model
//! diverges from the logical-effort critical paths.

use nox_analysis::harness::cmesh;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = cmesh::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
    if !r.clocks_consistent {
        std::process::exit(1);
    }
}
