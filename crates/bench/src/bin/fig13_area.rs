//! Regenerates Figure 13 / §6.2 — router floorplans and the NoX area
//! penalty — from the parametric floorplan model.

use nox_power::area::{Floorplan, CELL_HEIGHT_UM, NOX_EXTRA_WIDTH_UM};

fn main() {
    println!("Baseline router floorplan (non-speculative / Spec-Fast / Spec-Accurate):");
    print!("{}", Floorplan::baseline().report());
    println!();
    println!("NoX router floorplan:");
    print!("{}", Floorplan::nox().report());
    println!();

    let base = Floorplan::baseline();
    let nox = Floorplan::nox();
    println!("Standard cell height: {CELL_HEIGHT_UM} um (paper: 2.52 um)");
    println!(
        "NoX extra horizontal length: {:.1} um (paper: 28.2 um)",
        nox.width_um() - base.width_um()
    );
    println!(
        "NoX router tile area penalty: {:.1}% (paper: 17.2%)",
        nox.overhead_vs_baseline() * 100.0
    );
    assert!((nox.width_um() - base.width_um() - NOX_EXTRA_WIDTH_UM).abs() < 1e-9);
    assert!((nox.overhead_vs_baseline() - 0.172).abs() < 0.005);
    println!("\nAllocation, abort, and route-computation logic fits in the spare");
    println!("corner and does not change either envelope (§6.2).");
}
