//! Regenerates Figure 13 / §6.2 — router floorplans and the NoX area
//! penalty — from the parametric floorplan model.
//!
//! Thin renderer over [`nox_analysis::harness::fig13`]. Pass `--json`
//! for the versioned machine-readable document (the area model is
//! analytic, so the tier flags are accepted but change nothing).

use nox_analysis::harness::fig13;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig13::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
