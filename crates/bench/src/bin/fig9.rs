//! Regenerates Figure 9 — synthetic traffic energy-delay^2 versus
//! injection bandwidth — for the same four scenarios as Figure 8. ED^2 is
//! mean packet energy (pJ) times mean packet latency squared (ns^2); the
//! paper notes the Figure 8 trends are amplified here because the
//! speculative routers also waste link energy on misspeculation.

use nox_analysis::sweep::{sweep, ArchSeries, SweepConfig};
use nox_analysis::Table;
use nox_sim::config::Arch;
use nox_traffic::synthetic::Process;
use nox_traffic::Pattern;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let step = if quick { 500.0 } else { 250.0 };
    let rates: Vec<f64> = (1..)
        .map(|i| i as f64 * step)
        .take_while(|&r| r <= 3_500.0)
        .collect();

    let scenarios = [
        (
            "a) uniform random",
            Pattern::UniformRandom,
            Process::Poisson,
        ),
        ("b) transpose", Pattern::Transpose, Process::Poisson),
        (
            "c) bit-complement",
            Pattern::BitComplement,
            Process::Poisson,
        ),
        (
            "d) self-similar (Pareto on/off)",
            Pattern::UniformRandom,
            Process::ParetoOnOff,
        ),
    ];

    for (name, pattern, process) in scenarios {
        let cfg = SweepConfig {
            pattern,
            process,
            ..SweepConfig::uniform(rates.clone())
        };
        let series: Vec<ArchSeries> = Arch::ALL.iter().map(|&a| sweep(a, &cfg)).collect();

        let mut t = Table::new(
            format!("Figure 9{name}: energy-delay^2 (pJ*ns^2) vs offered load (MB/s/node)"),
            &["MB/s/node", "Non-Spec", "Spec-Fast", "Spec-Acc", "NoX"],
        );
        for (i, &rate) in rates.iter().enumerate() {
            let cell = |s: &ArchSeries| {
                let p = &s.points[i];
                if p.drained {
                    format!("{:.3e}", p.ed2)
                } else {
                    "sat".to_string()
                }
            };
            t.row([
                format!("{rate:.0}"),
                cell(&series[0]),
                cell(&series[1]),
                cell(&series[2]),
                cell(&series[3]),
            ]);
        }
        println!("{t}");

        // The last rate at which everyone is still below saturation gives
        // a fair ED^2 comparison point.
        if let Some(i) = (0..rates.len())
            .rev()
            .find(|&i| series.iter().all(|s| s.points[i].drained))
        {
            let nox = series[3].points[i].ed2;
            print!("  at {:.0} MB/s/node, ED^2 vs NoX:", rates[i]);
            for s in &series[..3] {
                print!(
                    "  {} {:+.1}%",
                    s.arch.name(),
                    (s.points[i].ed2 / nox - 1.0) * 100.0
                );
            }
            println!("\n");
        }
    }
}
