//! Regenerates Figure 9 — synthetic traffic energy-delay² versus
//! injection bandwidth — from the same sweeps as Figure 8.
//!
//! Thin renderer over [`nox_analysis::harness::fig9`]. Pass `--quick`,
//! `--smoke`, or `--json`.

use nox_analysis::harness::fig9;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig9::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
