//! Regenerates Figure 12 — network dynamic power at 2 GB/s/node uniform
//! random traffic, split by component (Spec-Fast omitted as in the
//! paper).
//!
//! Thin renderer over [`nox_analysis::harness::fig12`]. Pass `--quick`,
//! `--smoke`, or `--json`.

use nox_analysis::harness::fig12;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig12::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
