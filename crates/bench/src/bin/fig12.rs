//! Regenerates Figure 12 — total network dynamic power for 2 GB/s/node
//! single-flit uniform random traffic — split by component. Spec-Fast is
//! omitted exactly as in the paper ("not shown due to its low saturation
//! bandwidth": 2 GB/s/node is at/beyond its saturation point).
//!
//! Checks reported alongside the table (§5.3):
//! * links dominate at ~74% of network power;
//! * Spec-Accurate draws more link energy but slightly less switch energy
//!   than NoX, netting ~2.5% more total power;
//! * the non-speculative router consumes the least;
//! * NoX decode energy is minimal.

use nox_analysis::Table;
use nox_power::energy::EnergyModel;
use nox_power::EnergyBreakdown;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

fn main() {
    let mesh = Mesh::new(8, 8);
    // 2 GB/s/node = 2000 MB/s/node.
    let trace = generate(mesh, &SyntheticConfig::uniform(2_000.0, 40_000.0));
    let spec = RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 8_000.0,
        drain_ns: 30_000.0,
    };

    let archs = [Arch::NonSpec, Arch::SpecAccurate, Arch::Nox];
    let mut t = Table::new(
        "Figure 12: network dynamic power (mW) @ 2 GB/s/node uniform random",
        &[
            "architecture",
            "link",
            "buffer",
            "switch",
            "arb",
            "decode",
            "total",
            "link %",
        ],
    );
    let mut bk: Vec<EnergyBreakdown> = Vec::new();
    for arch in archs {
        let r = run(NetConfig::paper(arch), &trace, &spec);
        let b = EnergyModel::for_arch(arch).breakdown(&r.window_counters);
        let w = r.window_ns;
        t.row([
            arch.name().to_string(),
            format!("{:.1}", b.link_pj / w),
            format!("{:.1}", b.buffer_pj / w),
            format!("{:.1}", b.xbar_pj / w),
            format!("{:.1}", b.arb_pj / w),
            format!("{:.1}", b.decode_pj / w),
            format!("{:.1}", b.power_mw(w)),
            format!("{:.1}", b.link_share() * 100.0),
        ]);
        bk.push(b);
    }
    println!("{t}");

    let (nonspec, acc, nox) = (&bk[0], &bk[1], &bk[2]);
    println!("Checks against §5.3:");
    println!(
        "  link share of total power: {:.1}% (paper: ~74%)",
        nox.link_share() * 100.0
    );
    println!(
        "  Spec-Accurate vs NoX link energy:   {:+.1}%  (paper: +4.6%)",
        (acc.link_pj / nox.link_pj - 1.0) * 100.0
    );
    println!(
        "  Spec-Accurate vs NoX switch energy: {:+.1}%  (paper: -2.4%)",
        (acc.xbar_pj / nox.xbar_pj - 1.0) * 100.0
    );
    println!(
        "  Spec-Accurate vs NoX total power:   {:+.1}%  (paper: +2.5%)",
        (acc.total_pj() / nox.total_pj() - 1.0) * 100.0
    );
    println!(
        "  non-speculative vs NoX total power: {:+.1}%  (paper: lowest of all)",
        (nonspec.total_pj() / nox.total_pj() - 1.0) * 100.0
    );
    println!(
        "  NoX decode share of total:          {:.2}%  (paper: minimal)",
        nox.decode_pj / nox.total_pj() * 100.0
    );
}
