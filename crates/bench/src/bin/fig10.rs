//! Regenerates Figure 10 — application average packet latency — over
//! the nine synthesized CMP workloads on dual physical networks.
//!
//! Thin renderer over [`nox_analysis::harness::fig10`]. Pass `--quick`,
//! `--smoke`, or `--json`.

use nox_analysis::harness::fig10;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = fig10::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
