//! Regenerates Figure 10 — application average packet latency — over the
//! nine synthesized CMP workloads (the substitution for the paper's
//! SPLASH-2 / SPEC / TPC traces; see DESIGN.md), each replayed on two
//! 64-bit physical wormhole networks per Table 1.

use nox_analysis::apps::{app_run_spec, run_workload, AppResult};
use nox_analysis::Table;
use nox_sim::config::Arch;
use nox_traffic::WORKLOADS;

fn main() {
    let spec = app_run_spec();
    let mut t = Table::new(
        "Figure 10: application average packet latency (ns)",
        &[
            "workload",
            "Non-Spec",
            "Spec-Fast",
            "Spec-Acc",
            "NoX",
            "best",
        ],
    );
    let mut sums = [0.0f64; 4];
    let mut nox_wins = 0;
    for w in &WORKLOADS {
        let results: Vec<AppResult> = Arch::ALL
            .iter()
            .map(|&a| run_workload(a, w, 13, &spec))
            .collect();
        let best = results
            .iter()
            .min_by(|a, b| a.latency_ns.total_cmp(&b.latency_ns))
            .unwrap()
            .arch;
        if best == Arch::Nox {
            nox_wins += 1;
        }
        for (s, r) in sums.iter_mut().zip(&results) {
            *s += r.latency_ns;
        }
        t.row([
            w.name.to_string(),
            format!("{:.2}", results[0].latency_ns),
            format!("{:.2}", results[1].latency_ns),
            format!("{:.2}", results[2].latency_ns),
            format!("{:.2}", results[3].latency_ns),
            best.name().to_string(),
        ]);
    }
    t.row([
        "MEAN".to_string(),
        format!("{:.2}", sums[0] / WORKLOADS.len() as f64),
        format!("{:.2}", sums[1] / WORKLOADS.len() as f64),
        format!("{:.2}", sums[2] / WORKLOADS.len() as f64),
        format!("{:.2}", sums[3] / WORKLOADS.len() as f64),
        if sums[3]
            <= *sums[..3]
                .iter()
                .fold(&f64::INFINITY, |m, x| if x < m { x } else { m })
        {
            "NoX"
        } else {
            "-"
        }
        .to_string(),
    ]);
    println!("{t}");
    println!(
        "NoX is the lowest-latency network on {nox_wins} of {} workloads.\n\
         Paper prose: \"the NoX architecture [is] the optimal network given our\n\
         application workloads\"; Spec-Fast is overly aggressive and even the\n\
         non-speculative router can outperform it on contended workloads (tpcc).",
        WORKLOADS.len()
    );
}
