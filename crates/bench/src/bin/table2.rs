//! Regenerates Table 2 — router clock periods — from the logical-effort
//! timing model, printing the per-block critical-path breakdown and the
//! comparison against the published numbers.

use nox_analysis::Table;
use nox_power::timing::CriticalPath;
use nox_sim::config::Arch;

fn main() {
    println!("Critical paths (logical-effort model, 65 nm-class process):\n");
    for arch in Arch::ALL {
        let path = CriticalPath::new(arch);
        println!("{}:", arch.name());
        print!("{}", path.report());
        println!();
    }

    let mut t = Table::new(
        "Table 2: Router Clock Periods",
        &["Architecture", "modeled (ns)", "paper (ns)", "match"],
    );
    let mut all_match = true;
    for arch in Arch::ALL {
        let modeled = CriticalPath::new(arch).period_table2_ps();
        let paper = arch.clock_ps();
        all_match &= modeled == paper;
        t.row([
            arch.name().to_string(),
            format!("{:.2}", modeled as f64 / 1000.0),
            format!("{:.2}", paper as f64 / 1000.0),
            if modeled == paper { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{t}");

    let nox = CriticalPath::new(Arch::Nox).period_ps();
    let acc = CriticalPath::new(Arch::SpecAccurate).period_ps();
    println!(
        "NoX decode overhead over Spec-Accurate: {:.0} ps (paper: ~40 ps)",
        nox - acc
    );
    let base = CriticalPath::new(Arch::NonSpec).period_ps();
    println!(
        "Clock speedups vs non-speculative: Spec-Fast {:.1}%, Spec-Accurate {:.1}%, NoX {:.1}% \
         (paper: 33.3%, 27.8%, 21.1%)",
        (base / CriticalPath::new(Arch::SpecFast).period_ps() - 1.0) * 100.0,
        (base / acc - 1.0) * 100.0,
        (base / nox - 1.0) * 100.0,
    );
    assert!(all_match, "timing model diverged from Table 2");
}
