//! Regenerates Table 2 — router clock periods — from the logical-effort
//! timing model, with the per-block critical-path breakdown.
//!
//! Thin renderer over [`nox_analysis::harness::table2`]. Pass `--json`
//! for the versioned machine-readable document. Exits nonzero if the
//! model drifts from the published periods.

use nox_analysis::harness::table2;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = table2::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
    if !r.all_match() {
        std::process::exit(1);
    }
}
