//! Regenerates (and verifies) the paper's timing examples — Figures 2, 3
//! and 7 — as golden cycle-by-cycle traces against the real control state
//! machines. Any divergence from the expected trace aborts the run, so
//! this doubles as an executable specification of §2.3 and §3.2.
//!
//! The richer pretty-printer lives in `cargo run -p nox --example
//! timing_diagram`; this harness focuses on asserting the golden traces.

use nox_core::{
    Coded, DecodeAction, DecodePlan, Decoder, NonSpecCtl, OutputCtl, PortId, PortSet, RequestSet,
    SpecCtl, SpecMode,
};

fn set(ports: &[u8]) -> PortSet {
    ports.iter().map(|&p| PortId(p)).collect()
}

/// The shared stimulus: requests present per cycle (A=p0 @0; B=p1,C=p2 @2,
/// persisting until serviced).
struct Stim {
    queues: [Vec<(u64, char)>; 3],
}

impl Stim {
    fn new() -> Self {
        Stim {
            queues: [vec![(0, 'A')], vec![(2, 'B')], vec![(2, 'C')]],
        }
    }
    fn req(&self, cycle: u64) -> RequestSet {
        let mut r = PortSet::EMPTY;
        for (i, q) in self.queues.iter().enumerate() {
            if q.first().is_some_and(|&(c, _)| c <= cycle) {
                r.insert(PortId(i as u8));
            }
        }
        RequestSet::single_flit(r)
    }
    fn pop(&mut self, p: PortId) -> char {
        self.queues[p.index()].remove(0).1
    }
}

fn main() {
    // ------------------------------------------------ Figure 2 (NoX send)
    let mut out = OutputCtl::new(3);
    let mut stim = Stim::new();
    let mut sent: Vec<(u64, String)> = Vec::new();
    let mut link: Vec<Coded<u64>> = Vec::new();
    for cycle in 0..5 {
        let d = out.tick(stim.req(cycle));
        if !d.drive.is_empty() && !d.aborted {
            let word: Coded<u64> = d
                .drive
                .iter()
                .map(|i| {
                    let name = stim.queues[i.index()][0].1;
                    Coded::plain(name as u64, name as u64)
                })
                .collect();
            let label: String = word
                .keys()
                .iter()
                .map(|&k| char::from_u32(k as u32).unwrap())
                .collect();
            sent.push((cycle, label));
            link.push(word);
        }
        for i in d.serviced.iter() {
            stim.pop(i);
        }
    }
    let expect2 = vec![(0, "A".into()), (2, "BC".into()), (3, "C".into())];
    assert_eq!(sent, expect2, "Figure 2 trace diverged");
    println!("Figure 2  (NoX transmit):  A@0, (B^C)@2 encoded, C@3      ... verified");

    // --------------------------------------------- Figure 3 (NoX receive)
    let mut fifo: std::collections::VecDeque<Coded<u64>> = link.into();
    let mut dec = Decoder::new();
    let mut presented = Vec::new();
    for _ in 0..6 {
        match dec.plan(fifo.front()) {
            DecodePlan::Idle => break,
            DecodePlan::Latch => {
                let w = fifo.pop_front().unwrap();
                dec.latch(w);
                presented.push("latch".to_string());
            }
            DecodePlan::Present { word, action } => {
                presented.push(
                    char::from_u32(word.sole_key().unwrap() as u32)
                        .unwrap()
                        .to_string(),
                );
                let popped = match action {
                    DecodeAction::Pass => {
                        fifo.pop_front();
                        None
                    }
                    DecodeAction::DecodeKeep => None,
                    DecodeAction::DecodeShift => Some(fifo.pop_front().unwrap()),
                };
                dec.commit(action, popped);
            }
        }
    }
    assert_eq!(presented, vec!["A", "latch", "B", "C"], "Figure 3 diverged");
    println!("Figure 3  (NoX receive):   A, latch(B^C), B, C           ... verified");

    // --------------------------------------------- Figure 7a (sequential)
    let mut out = NonSpecCtl::new(3);
    let mut stim = Stim::new();
    let mut sent = Vec::new();
    for cycle in 0..5 {
        let d = out.tick(stim.req(cycle));
        if let Some(i) = d.drive {
            sent.push((cycle, stim.pop(i)));
        }
    }
    assert_eq!(
        sent,
        vec![(0, 'A'), (2, 'B'), (3, 'C')],
        "Figure 7a diverged"
    );
    println!("Figure 7a (sequential):    A@0, B@2, C@3                 ... verified");

    // ------------------------------------------------------- Figure 7b/7c
    for (mode, expect, label) in [
        (
            SpecMode::Fast,
            vec![(0, 'A'), (3, 'B'), (5, 'C')],
            "Figure 7b (Spec-Fast):     A@0, XX@2, B@3, --@4, C@5",
        ),
        (
            SpecMode::Accurate,
            vec![(0, 'A'), (3, 'B'), (4, 'C')],
            "Figure 7c (Spec-Accurate): A@0, XX@2, B@3, C@4",
        ),
    ] {
        let mut out = SpecCtl::new(3, mode);
        let mut stim = Stim::new();
        let mut sent = Vec::new();
        let mut collided_cycles = Vec::new();
        for cycle in 0..7 {
            let d = out.tick(stim.req(cycle), PortSet::EMPTY);
            if !d.collided.is_empty() {
                collided_cycles.push(cycle);
            }
            if let Some(i) = d.drive {
                sent.push((cycle, stim.pop(i)));
            }
        }
        assert_eq!(sent, expect, "{mode:?} trace diverged");
        assert_eq!(
            collided_cycles,
            vec![2],
            "{mode:?} collision cycle diverged"
        );
        println!("{label}  ... verified");
    }

    // Cross-check: same stimulus, all inputs serviced, exactly one wasted
    // link cycle for each speculative router, none for NoX/sequential.
    let _ = set(&[0, 1, 2]);
    println!("\nAll golden timing traces of §2.3 and §3.2 reproduced exactly.");
}
