//! Replays the paper's golden timing examples (Figures 2, 3, 7) against
//! the real control state machines — the executable specification of
//! §2.3 and §3.2. The richer pretty-printer lives in `cargo run -p nox
//! --example timing_diagram`.
//!
//! Thin renderer over [`nox_analysis::harness::figs237`]. Pass `--json`
//! for the versioned machine-readable document. Exits nonzero if any
//! trace diverges.

use nox_analysis::harness::figs237;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = figs237::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
    if !r.all_pass() {
        std::process::exit(1);
    }
}
