//! Ablation study (beyond the paper): NoX with its Scheduled mode
//! disabled, isolating what XOR-coded Recovery arbitration alone buys.
//!
//! Thin renderer over [`nox_analysis::harness::ablation`]. Pass
//! `--quick`, `--smoke`, or `--json`.

use nox_analysis::harness::ablation;
use nox_analysis::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    let r = ablation::run(args.tier);
    if args.json {
        println!("{}", r.to_json());
    } else {
        print!("{}", r.render());
    }
}
