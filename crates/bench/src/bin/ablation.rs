//! Ablation study of the NoX design choices called out in DESIGN.md:
//! how much of the router's performance comes from the *Scheduled* mode
//! (the pre-scheduling half of §2.6) versus pure XOR-coded Recovery-mode
//! arbitration?
//!
//! With Scheduled mode disabled, collision losers still drain through the
//! chain correctly (the coding invariant is preserved), but nothing is
//! ever pre-scheduled: sustained contention keeps resolving through fresh
//! encoded collisions, and multi-flit streams hand off by re-colliding.

use nox_analysis::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::cmp::{synthesize, workload};
use nox_traffic::synthetic::{generate, SyntheticConfig};

fn main() {
    let mesh = Mesh::new(8, 8);
    let spec = RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 6_000.0,
        drain_ns: 30_000.0,
    };

    let full = NetConfig::paper(Arch::Nox);
    let ablated = NetConfig {
        nox_scheduled_mode: false,
        ..full
    };

    // Synthetic, single-flit, uniform random.
    let mut t = Table::new(
        "Ablation: NoX with and without Scheduled mode (uniform random)",
        &["MB/s/node", "full NoX (ns)", "no Scheduled (ns)", "penalty"],
    );
    for rate in [500.0, 1500.0, 2500.0, 3000.0] {
        let trace = generate(mesh, &SyntheticConfig::uniform(rate, 40_000.0));
        let a = run(full, &trace, &spec);
        let b = run(ablated, &trace, &spec);
        t.row([
            format!("{rate:.0}"),
            format!("{:.2}", a.avg_latency_ns()),
            format!("{:.2}", b.avg_latency_ns()),
            format!(
                "{:+.1}%",
                (b.avg_latency_ns() / a.avg_latency_ns() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{t}");

    // Application traffic: multi-flit streams exercise the tail handoff.
    let mut t = Table::new(
        "Ablation on application reply networks (9-flit data packets)",
        &["workload", "full NoX (ns)", "no Scheduled (ns)", "penalty"],
    );
    for name in ["ocean", "tpcc"] {
        let w = workload(name).unwrap();
        let traces = synthesize(mesh, w, 40_000.0, 13);
        let a = run(full, &traces.reply, &spec);
        let b = run(ablated, &traces.reply, &spec);
        t.row([
            name.to_string(),
            format!("{:.2}", a.avg_latency_ns()),
            format!("{:.2}", b.avg_latency_ns()),
            format!(
                "{:+.1}%",
                (b.avg_latency_ns() / a.avg_latency_ns() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{t}");
    println!(
        "Takeaway: Recovery-mode coding alone keeps NoX correct and productive,\n\
         but Scheduled mode is what sustains full-rate output under continuous\n\
         contention and hands multi-flit streams off without re-colliding."
    );
}
