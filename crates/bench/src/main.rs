//! Index of the experiment harnesses that regenerate every table and
//! figure of "The NoX Router" (MICRO 2011). Each harness is a binary in
//! `src/bin/`; run them with `cargo run --release -p nox-bench --bin <name>`.

fn main() {
    println!("NoX reproduction — experiment harnesses:");
    println!();
    for (bin, what) in [
        (
            "figs237",
            "Figures 2, 3, 7: golden cycle-by-cycle timing diagrams",
        ),
        ("table1", "Table 1: common system parameters"),
        (
            "table2",
            "Table 2: router clock periods from the logical-effort model",
        ),
        (
            "fig8",
            "Figure 8: synthetic traffic latency vs injection bandwidth",
        ),
        (
            "fig9",
            "Figure 9: synthetic traffic energy-delay^2 vs injection bandwidth",
        ),
        ("fig10", "Figure 10: application average packet latency"),
        (
            "fig11",
            "Figure 11: application energy-delay^2 (with paper comparison)",
        ),
        (
            "fig12",
            "Figure 12: network dynamic power breakdown @ 2 GB/s/node",
        ),
        (
            "fig13_area",
            "Figure 13 / section 6.2: router floorplans and area penalty",
        ),
        (
            "ablation",
            "beyond the paper: NoX with Scheduled mode disabled",
        ),
        ("cmesh", "section 8 future work: radix-8 concentrated mesh"),
        (
            "feedback",
            "section 5.2 conjecture: closed-loop (self-throttling) CMP",
        ),
    ] {
        println!("  cargo run --release -p nox-bench --bin {bin:<12} # {what}");
    }
    println!();
    println!("Every harness accepts --quick (coarse sweep), --smoke (CI-fast), and");
    println!("--json (versioned machine-readable output, schema nox-bench/<name>/v1).");
    println!();
    println!("Conformance registry:        cargo run --release -p nox --bin noxsim -- claims");
    println!(
        "Perf artifact:               cargo run --release -p nox-bench --bin bench_throughput"
    );
    println!("Criterion micro-benchmarks:  cargo bench -p nox-bench");
}
