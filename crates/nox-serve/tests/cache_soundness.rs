//! Cache soundness: content addressing is only sound because artifacts
//! are byte-identical however they are computed. These tests pin the
//! whole chain: thread-count independence of the artifact bytes, the
//! observable `cache_hit` path, corruption detection, and crash
//! recovery (a simulated `kill -9` mid-write).

#![cfg(unix)]

mod common;

use common::{daemon, kind, Conn};
use nox_analysis::json::Json;
use nox_exec::Executor;
use nox_serve::cache::{content_key, Cache, Lookup};
use nox_serve::job::{execute, CancelToken};
use nox_serve::proto::Request;

const SWEEP: &str = r#"{"req":"sweep","arch":"nox","pattern":"uniform","rates":[500],"len":1,"seed":7,"tier":"smoke"}"#;

/// The same request produces one key and byte-identical artifacts at
/// --threads 1, 2, and 8 — the property that makes it sound to exclude
/// the executor width from the cache key.
#[test]
fn the_artifact_is_byte_identical_at_threads_1_2_and_8() {
    let req = Request::parse(
        r#"{"req":"sweep","arch":"all","rates":[400,900,1400],"len":2,"seed":21,"tier":"smoke"}"#,
    )
    .unwrap();
    let token = CancelToken::unbounded();
    let artifacts: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            execute(&req.body, &Executor::new(threads), &token, false)
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(artifacts[0], artifacts[1]);
    assert_eq!(artifacts[0], artifacts[2]);
    // And the key is a pure function of the canonical request.
    let key = content_key(&req.canonical().unwrap());
    assert_eq!(key, content_key(&req.canonical().unwrap()));
}

/// A repeated identical request is served from the cache, observable
/// as a `cache_hit` frame, and the cached artifact is byte-identical
/// to the first run's.
#[test]
fn a_repeated_request_hits_the_cache_with_identical_bytes() {
    let (handle, sock, _) = daemon("hit", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(&format!(r#"{{"id":"first",{}"#, &SWEEP[1..]));
    let (first, frames) = conn.wait_for("result");
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    assert!(
        !frames.iter().any(|f| kind(f) == "cache_hit"),
        "first run must not hit the cache"
    );
    let first_artifact = first.get("artifact").unwrap().to_string();
    let key = first.get("key").and_then(Json::as_str).unwrap().to_string();

    // Different id, different deadline — same content: a hit.
    conn.send(&format!(
        r#"{{"id":"second","deadline_ms":9999,{}"#,
        &SWEEP[1..]
    ));
    let (second, frames) = conn.wait_for("result");
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(second.get("key").and_then(Json::as_str), Some(key.as_str()));
    let hit = frames
        .iter()
        .find(|f| kind(f) == "cache_hit")
        .expect("second run emits a cache_hit frame");
    assert_eq!(hit.get("key").and_then(Json::as_str), Some(key.as_str()));
    assert_eq!(hit.get("id").and_then(Json::as_str), Some("second"));
    assert_eq!(second.get("artifact").unwrap().to_string(), first_artifact);

    handle.shutdown();
    let stats = handle.join();
    assert_eq!((stats.computed, stats.cache_hits), (1, 1));
}

/// A flipped byte on disk is detected by the entry checksum: the entry
/// is quarantined, the request recomputed, and the healed entry hits
/// again — the corrupt artifact is never served.
#[test]
fn a_flipped_byte_is_detected_quarantined_and_recomputed() {
    let (handle, sock, cache_dir) = daemon("flip", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(SWEEP);
    let (first, _) = conn.wait_for("result");
    let key = first.get("key").and_then(Json::as_str).unwrap().to_string();
    let first_artifact = first.get("artifact").unwrap().to_string();

    // Flip one digit inside the stored artifact payload.
    let entry = cache_dir.join(format!("{key}.json"));
    let text = std::fs::read_to_string(&entry).unwrap();
    let pos = text.find("latency_ns").unwrap() + "latency_ns\":".len();
    let mut bytes = text.into_bytes();
    bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
    std::fs::write(&entry, &bytes).unwrap();

    // The corrupt entry must NOT be served: the daemon quarantines it
    // and recomputes.
    conn.send(SWEEP);
    let (second, _) = conn.wait_for("result");
    assert_eq!(second.get("cached"), Some(&Json::Bool(false)));
    assert_eq!(second.get("artifact").unwrap().to_string(), first_artifact);
    assert!(
        cache_dir
            .join("quarantine")
            .join(format!("{key}.json"))
            .exists(),
        "corrupt entry moved to quarantine/"
    );

    // Healed: the third request hits.
    conn.send(SWEEP);
    let (third, _) = conn.wait_for("result");
    assert_eq!(third.get("cached"), Some(&Json::Bool(true)));
    handle.shutdown();
    handle.join();
}

/// Simulated `kill -9` mid-write: a leftover `tmp-*` partial and an
/// entry torn under its final name. A restarted daemon's startup scan
/// removes the partial, quarantines the torn entry, and still serves
/// every committed entry.
#[test]
fn restart_after_a_torn_write_recovers_committed_entries() {
    let (handle, sock, cache_dir) = daemon("torn", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(SWEEP);
    let (first, _) = conn.wait_for("result");
    let key = first.get("key").and_then(Json::as_str).unwrap().to_string();
    handle.shutdown();
    handle.join();

    // Forge the crash debris a kill -9 mid-write can leave: an
    // abandoned temp file, plus an entry whose tail was lost.
    std::fs::write(cache_dir.join("tmp-424242-0"), b"{\"schema\":\"nox-").unwrap();
    let committed = std::fs::read_to_string(cache_dir.join(format!("{key}.json"))).unwrap();
    let torn_key = content_key("a request whose entry tore");
    std::fs::write(
        cache_dir.join(format!("{torn_key}.json")),
        &committed[..committed.len() / 2],
    )
    .unwrap();

    // Restart on the same cache dir: the scan heals, the committed
    // entry survives and is served as a hit.
    let cache = Cache::open(&cache_dir).unwrap();
    assert_eq!(cache.scan.partials_removed, 1);
    assert_eq!(cache.scan.quarantined, 1);
    assert_eq!(cache.scan.valid, 1);
    assert!(matches!(cache.lookup(&key), Lookup::Hit(_)));
    drop(cache);

    let mut cfg =
        nox_serve::daemon::ServeConfig::new(cache_dir.parent().unwrap().join("sock2"), &cache_dir);
    cfg.threads = 2;
    let sock2 = cfg.socket.clone();
    let handle2 = nox_serve::daemon::spawn(cfg, None).unwrap();
    let mut conn2 = Conn::open(&sock2);
    conn2.send(SWEEP);
    let (served, frames) = conn2.wait_for("result");
    assert_eq!(served.get("cached"), Some(&Json::Bool(true)));
    assert!(frames.iter().any(|f| kind(f) == "cache_hit"));
    handle2.shutdown();
    handle2.join();
}

/// Profile artifacts are wall-clock attribution and must never be
/// cached; two profile requests both compute.
#[test]
fn profile_requests_are_never_cached() {
    let req = Request::parse(r#"{"req":"profile","harness":"table1","tier":"smoke"}"#).unwrap();
    assert_eq!(req.canonical(), None);
}
