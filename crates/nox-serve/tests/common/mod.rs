//! Shared plumbing for the serve integration suites: unique scratch
//! paths (no wall-clock, no RNG — process id + a counter), a daemon
//! spawner with chaos-friendly defaults, and a tiny line-frame client.

// Each integration binary compiles its own copy; not every binary uses
// every helper.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use nox_analysis::json::Json;
use nox_serve::daemon::{spawn, DaemonHandle, ServeConfig};

static SCRATCH: AtomicU32 = AtomicU32::new(0);

/// A unique socket + cache-dir pair under the system temp dir.
pub fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let base = std::env::temp_dir().join(format!("nox-serve-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("cache"))
}

/// Spawns a daemon with chaos-test defaults: tiny thread pool, debug
/// ops on, generous watchdog. Callers override fields via `tweak`.
pub fn daemon(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (DaemonHandle, PathBuf, PathBuf) {
    let (sock, cache) = scratch(tag);
    let mut cfg = ServeConfig::new(&sock, &cache);
    cfg.threads = 2;
    cfg.debug_ops = true;
    cfg.watchdog_ms = 60_000;
    tweak(&mut cfg);
    let handle = spawn(cfg, None).expect("daemon spawn");
    (handle, sock, cache)
}

/// One framed connection: sends request lines, reads event frames.
pub struct Conn {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Conn {
    /// Connects (retrying briefly while the listener comes up) and
    /// consumes the `hello` frame.
    pub fn open(sock: &std::path::Path) -> Conn {
        let mut stream = None;
        for _ in 0..200 {
            match UnixStream::connect(sock) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let writer = stream.expect("daemon socket never came up");
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        let mut conn = Conn { writer, reader };
        let hello = conn.next_event();
        assert_eq!(hello.get("event").and_then(Json::as_str), Some("hello"));
        conn
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .expect("send request line");
    }

    /// Sends raw bytes, tolerating a mid-write hangup (the daemon may
    /// legitimately close on us — oversized-line shedding does).
    pub fn send_raw_lossy(&mut self, bytes: &[u8]) {
        let _ = self
            .writer
            .write_all(bytes)
            .and_then(|()| self.writer.flush());
    }

    /// Reads the next event frame (panics after the 60 s read timeout).
    pub fn next_event(&mut self) -> Json {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).expect("read event frame");
            assert!(n > 0, "daemon closed the connection mid-stream");
            if !line.trim().is_empty() {
                return Json::parse(line.trim()).expect("event frame is valid JSON");
            }
        }
    }

    /// Reads frames until one matches `event`, returning it and the
    /// frames skipped on the way (progress frames, usually).
    pub fn wait_for(&mut self, event: &str) -> (Json, Vec<Json>) {
        let mut skipped = Vec::new();
        for _ in 0..10_000 {
            let frame = self.next_event();
            if frame.get("event").and_then(Json::as_str) == Some(event) {
                return (frame, skipped);
            }
            skipped.push(frame);
        }
        panic!("no {event:?} frame within 10000 frames; saw {skipped:?}");
    }

    /// Reads frames until a terminal `result`/`error`/`reject` frame.
    pub fn wait_terminal(&mut self) -> (Json, Vec<Json>) {
        let mut skipped = Vec::new();
        for _ in 0..10_000 {
            let frame = self.next_event();
            if matches!(
                frame.get("event").and_then(Json::as_str),
                Some("result" | "error" | "reject")
            ) {
                return (frame, skipped);
            }
            skipped.push(frame);
        }
        panic!("no terminal frame within 10000 frames; saw {skipped:?}");
    }
}

/// The event kind of a frame.
pub fn kind(frame: &Json) -> &str {
    frame.get("event").and_then(Json::as_str).unwrap_or("?")
}
