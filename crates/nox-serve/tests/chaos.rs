//! Chaos suite: every failure mode in the DESIGN.md §15 table, driven
//! against an in-process daemon. Each scenario asserts the *daemon's*
//! observable behavior — structured frames, graceful exits, surviving
//! connections — not internal state.

#![cfg(unix)]

mod common;

use common::{daemon, kind, Conn};
use nox_analysis::json::Json;

/// Malformed input: fuzz-style garbage lines each get a structured
/// `bad_request` error on a surviving connection, and the daemon still
/// does real work afterwards.
#[test]
fn malformed_lines_get_structured_errors_and_the_daemon_survives() {
    let (handle, sock, _) = daemon("malformed", |_| {});
    let mut conn = Conn::open(&sock);
    let hostile = [
        "not json at all",
        "{\"req\":",
        "{}",
        "[1,2,3]",
        "42",
        "\"claims\"",
        "{\"req\":\"claims\",\"tier\":42}",
        "{\"req\":\"sweep\",\"rates\":[1e999]}",
        "{\"req\":\"claims\",\"id\":\"\"}",
        // Large but bounded, and truncated mid-string.
        &format!("{{\"req\":\"claims\",\"pad\":\"{}", "x".repeat(100_000)),
        &"[".repeat(200),
        "{\"req\":\"debug\",\"op\":\"sleep\"}",
    ];
    for bad in hostile {
        conn.send(bad);
        let (err, _) = conn.wait_terminal();
        assert_eq!(kind(&err), "error", "for input {bad:?}");
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "for input {bad:?}"
        );
    }
    // Same connection, real request: still served.
    conn.send(r#"{"req":"ping","id":"alive"}"#);
    let (pong, _) = conn.wait_for("pong");
    assert_eq!(pong.get("id").and_then(Json::as_str), Some("alive"));
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.bad_requests, hostile.len() as u64);
}

/// Panic containment: a job that panics produces `error {kind:panic}`
/// and the daemon keeps serving.
#[test]
fn a_panicking_job_is_contained_and_the_daemon_keeps_serving() {
    let (handle, sock, _) = daemon("panic", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(r#"{"req":"debug","op":"panic","id":"boom"}"#);
    let (err, _) = conn.wait_terminal();
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("panic"));
    assert_eq!(err.get("id").and_then(Json::as_str), Some("boom"));
    // The daemon survives: the next job on the same connection runs fine.
    conn.send(r#"{"req":"debug","op":"sleep","ms":5,"id":"after"}"#);
    let (res, _) = conn.wait_terminal();
    assert_eq!(kind(&res), "result");
    assert_eq!(res.get("id").and_then(Json::as_str), Some("after"));
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.computed, 1);
}

/// Backpressure: with the queue full, further requests are shed with a
/// structured `reject {reason:overload, retry_after_ms}` — the queue
/// never grows past its bound.
#[test]
fn a_saturated_queue_sheds_load_with_retry_hints() {
    let (handle, sock, _) = daemon("overload", |cfg| cfg.queue_cap = 2);
    let mut conn = Conn::open(&sock);
    // One long job occupies the worker (wait for its `start` so the
    // queue is empty again), then two more fill the queue exactly.
    conn.send(r#"{"req":"debug","op":"sleep","ms":400,"id":"s0"}"#);
    conn.wait_for("start");
    for i in 1..3 {
        conn.send(&format!(
            r#"{{"req":"debug","op":"sleep","ms":400,"id":"s{i}"}}"#
        ));
        let (frame, _) = conn.wait_for("ack");
        assert!(frame.get("queue_depth").and_then(Json::as_u64).unwrap() <= 2);
    }
    // The queue is now at capacity (worker holds s0, queue holds s1+s2
    // in the worst case): the 4th request must be shed.
    conn.send(r#"{"req":"debug","op":"sleep","ms":400,"id":"shed"}"#);
    let (frame, _) = conn.wait_terminal();
    assert_eq!(kind(&frame), "reject");
    assert_eq!(frame.get("reason").and_then(Json::as_str), Some("overload"));
    assert_eq!(frame.get("id").and_then(Json::as_str), Some("shed"));
    let hint = frame
        .get("retry_after_ms")
        .and_then(Json::as_u64)
        .expect("overload reject carries a retry_after_ms hint");
    assert!((100..=60_000).contains(&hint) || hint == 1_000);
    // The accepted jobs all finish.
    for _ in 0..3 {
        let (frame, _) = conn.wait_for("result");
        assert_eq!(frame.get("cached"), Some(&Json::Bool(false)));
    }
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.computed, 3);
}

/// Deadlines: a request whose deadline passes mid-run is cancelled at
/// the next stage boundary with `error {kind:deadline}` — promptly,
/// not after the job would have finished.
#[test]
fn a_past_deadline_request_is_cancelled_promptly() {
    let (handle, sock, _) = daemon("deadline", |_| {});
    let mut conn = Conn::open(&sock);
    let sw = nox_telemetry::Stopwatch::start();
    conn.send(r#"{"req":"debug","op":"sleep","ms":60000,"deadline_ms":80,"id":"late"}"#);
    let (err, _) = conn.wait_terminal();
    let waited_ms = sw.elapsed_ns() / 1_000_000;
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("deadline"));
    assert!(
        waited_ms < 10_000,
        "cancellation took {waited_ms} ms for an 80 ms deadline"
    );
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.deadline_misses, 1);
}

/// The watchdog: a job running past the hang threshold is flagged with
/// a `watchdog` event while it is still running.
#[test]
fn the_watchdog_flags_a_hung_job() {
    let (handle, sock, _) = daemon("watchdog", |cfg| cfg.watchdog_ms = 100);
    let mut conn = Conn::open(&sock);
    conn.send(r#"{"req":"debug","op":"sleep","ms":600,"id":"slow"}"#);
    let (flag, _) = conn.wait_for("watchdog");
    assert_eq!(flag.get("id").and_then(Json::as_str), Some("slow"));
    assert!(flag.get("running_ms").and_then(Json::as_u64).unwrap() >= 100);
    // The job still completes; the watchdog detects, it does not kill.
    let (res, _) = conn.wait_for("result");
    assert_eq!(res.get("id").and_then(Json::as_str), Some("slow"));
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.watchdog_flags, 1);
}

/// Graceful drain: after shutdown, already-queued work finishes and
/// new requests are refused with `reject {reason:draining}`.
#[test]
fn shutdown_drains_queued_work_and_refuses_new_requests() {
    let (handle, sock, _) = daemon("drain", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(r#"{"req":"debug","op":"sleep","ms":300,"id":"inflight"}"#);
    conn.wait_for("ack");
    handle.shutdown();
    // New work is refused while draining (on the still-open connection).
    conn.send(r#"{"req":"debug","op":"sleep","ms":5,"id":"refused"}"#);
    let (mut saw_inflight_result, mut saw_draining) = (false, false);
    for _ in 0..10 {
        let (frame, skipped) = conn.wait_terminal();
        for f in skipped.iter().chain([&frame]) {
            match (kind(f), f.get("id").and_then(Json::as_str)) {
                ("result", Some("inflight")) => saw_inflight_result = true,
                ("reject", Some("refused")) => {
                    assert_eq!(f.get("reason").and_then(Json::as_str), Some("draining"));
                    saw_draining = true;
                }
                _ => {}
            }
        }
        if saw_inflight_result && saw_draining {
            break;
        }
    }
    assert!(
        saw_inflight_result,
        "in-flight job must finish during drain"
    );
    assert!(saw_draining, "new work must be refused during drain");
    let stats = handle.join();
    assert_eq!(stats.computed, 1);
    assert_eq!(stats.rejected_draining, 1);
}

/// Ping answers inline even while a compute job runs, and reports the
/// drain state.
#[test]
fn ping_reports_queue_depth_and_draining() {
    let (handle, sock, _) = daemon("ping", |_| {});
    let mut conn = Conn::open(&sock);
    conn.send(r#"{"req":"ping","id":"p"}"#);
    let (pong, _) = conn.wait_for("pong");
    assert_eq!(pong.get("draining"), Some(&Json::Bool(false)));
    assert_eq!(pong.get("queue_depth").and_then(Json::as_u64), Some(0));
    handle.shutdown();
    conn.send(r#"{"req":"ping","id":"p2"}"#);
    let (pong, _) = conn.wait_for("pong");
    assert_eq!(pong.get("draining"), Some(&Json::Bool(true)));
    handle.join();
}

/// An oversized request line is rejected with a structured error and
/// the connection closed — the daemon never buffers without bound.
#[test]
fn an_oversized_line_is_rejected_not_buffered() {
    let (handle, sock, _) = daemon("oversize", |_| {});
    let mut conn = Conn::open(&sock);
    // 2 MiB with no newline: the daemon must give up at the 1 MiB cap
    // (it may hang up while we are still writing; that is the point).
    let huge = vec![b'x'; 2 * 1024 * 1024];
    conn.send_raw_lossy(&huge);
    let (err, _) = conn.wait_terminal();
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad_request"));
    // A fresh connection still works.
    let mut conn2 = Conn::open(&sock);
    conn2.send(r#"{"req":"ping","id":"ok"}"#);
    conn2.wait_for("pong");
    handle.shutdown();
    handle.join();
}

/// Debug ops are refused without the explicit opt-in flag.
#[test]
fn debug_ops_require_the_opt_in_flag() {
    let (handle, sock, _) = daemon("nodebug", |cfg| cfg.debug_ops = false);
    let mut conn = Conn::open(&sock);
    conn.send(r#"{"req":"debug","op":"panic","id":"d"}"#);
    let (err, _) = conn.wait_terminal();
    assert_eq!(kind(&err), "error");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("bad_request"));
    handle.shutdown();
    handle.join();
}
