//! `noxsim serve` — a crash-safe simulation daemon.
//!
//! This crate turns the workspace's harnesses into a long-running
//! service: a dependency-free Unix-domain-socket daemon speaking the
//! line-delimited JSON protocol of [`nox_telemetry::stream`], accepting
//! `claims` / `faults` / `verify` / `profile` / `sweep` requests,
//! queuing them onto the [`nox_exec`] pool, and streaming run/stage/job
//! progress events back to the requesting client live.
//!
//! Robustness is the design center, not an afterthought:
//!
//! * **Backpressure** — a bounded request queue with explicit load
//!   shedding: a full queue answers `reject` with a `retry_after_ms`
//!   hint instead of growing without bound ([`daemon`]).
//! * **Deadlines** — every request carries a deadline; cancellation is
//!   cooperative and checked at stage boundaries ([`job::CancelToken`]).
//! * **Panic containment** — a poisoned request is caught at the job
//!   boundary ([`nox_exec::Executor::try_map`] per point, plus a
//!   `catch_unwind` around the whole job) and returned as a structured
//!   `error` event; the daemon itself never goes down with a job.
//! * **A watchdog** — flags jobs that run past the hang threshold with
//!   a `watchdog` event and a log line.
//! * **Graceful drain** — on SIGTERM the daemon finishes accepted work,
//!   refuses new requests with `reject {"reason":"draining"}`, and
//!   exits 0.
//! * **Crash safety** — results are cached content-addressed by
//!   (request, seed, code-version) hash with atomic temp-file+rename
//!   writes and checksummed entries; a startup scan quarantines corrupt
//!   or torn entries, so `kill -9` mid-write loses at most the entry
//!   being written ([`cache`]).
//!
//! The client side ([`client`]) reconnects with capped exponential
//! backoff; request IDs are idempotency tokens — resending one after a
//! reconnect re-serves from the cache rather than duplicating work
//! (the determinism guarantees of the executor make every artifact
//! byte-identical however often it is recomputed).
//!
//! The wire protocol is documented in [`proto`] and DESIGN.md §15.

#![warn(missing_docs)]

pub mod cache;
#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod daemon;
pub mod job;
pub mod proto;
#[cfg(unix)]
pub mod signal;

/// The code-version component of every cache key: bump the suffix when
/// a change alters any artifact's bytes, and every stale cache entry
/// becomes unreachable (a miss) instead of silently wrong.
pub const CODE_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+serve-proto/v1");
