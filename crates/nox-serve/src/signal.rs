//! Minimal dependency-free SIGTERM/SIGINT latching.
//!
//! The daemon needs exactly one bit from the OS: "a shutdown was
//! requested". Rather than pull in a signal-handling crate (the build
//! is offline), this module registers a tiny async-signal-safe handler
//! via the libc `signal(2)` symbol that sets a static [`AtomicBool`]
//! the accept loop polls. Everything heavier — draining the queue,
//! refusing new work, exiting 0 — happens on normal threads.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM or SIGINT arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from libc. The return value (the previous handler)
    /// is deliberately ignored.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn latch(_signum: i32) {
    // A store to a static atomic is async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handler and returns the flag it sets.
/// Idempotent; safe to call from tests (though tests normally use
/// [`crate::daemon::DaemonHandle::shutdown`] instead of real signals).
pub fn install() -> &'static AtomicBool {
    unsafe {
        signal(SIGTERM, latch);
        signal(SIGINT, latch);
    }
    &SHUTDOWN
}

/// The flag without installing handlers (for tests).
pub fn flag() -> &'static AtomicBool {
    &SHUTDOWN
}
