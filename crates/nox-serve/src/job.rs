//! Job execution: deadlines, cooperative cancellation, and panic
//! containment around the workspace harnesses.
//!
//! The daemon runs one compute job at a time; each job fans out
//! internally over the shared [`nox_exec::Executor`]. A job is bounded
//! by a [`CancelToken`] — an absolute deadline on the telemetry clock —
//! checked cooperatively at stage boundaries (and per sweep point via
//! [`nox_exec::Executor::try_map`], which also contains per-point
//! panics). The whole dispatch runs under `catch_unwind`, so a
//! poisoned request becomes a structured [`JobError::Panic`] rather
//! than a dead daemon.

use std::panic::{catch_unwind, AssertUnwindSafe};

use nox_analysis::claims::{evaluate, ClaimInputs};
use nox_analysis::harness::{faults, run_by_name, Tier};
use nox_analysis::json::Json;
use nox_analysis::profile;
use nox_analysis::sweep::{point_from_result, SweepPoint};
use nox_exec::Executor;
use nox_power::energy::EnergyModel;
use nox_sim::config::NetConfig;
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};
use nox_verify::{check_with, Bounds};

use crate::proto::{Body, DebugOp, SweepReq};

/// An absolute deadline on the telemetry clock ([`nox_telemetry::epoch_ns`]).
///
/// Cancellation is *cooperative*: jobs check [`expired`](CancelToken::expired)
/// at stage boundaries (per sweep point, per sleep slice), so a cancel
/// takes effect at the next boundary, not instantly — the price of
/// never tearing a computation mid-state. The watchdog covers the gap:
/// a job that stops reaching boundaries gets flagged.
#[derive(Clone, Copy, Debug)]
pub struct CancelToken {
    deadline_ns: Option<u64>,
}

impl CancelToken {
    /// A token that never expires.
    pub fn unbounded() -> CancelToken {
        CancelToken { deadline_ns: None }
    }

    /// A token expiring `ms` milliseconds from now.
    pub fn expires_in_ms(ms: u64) -> CancelToken {
        CancelToken {
            deadline_ns: Some(
                nox_telemetry::epoch_ns().saturating_add(ms.saturating_mul(1_000_000)),
            ),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        match self.deadline_ns {
            None => false,
            Some(d) => nox_telemetry::epoch_ns() >= d,
        }
    }
}

/// Why a job did not produce an artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job (or one of its points) panicked; the daemon survives
    /// and returns the payload message.
    Panic(String),
    /// The deadline passed before the job finished.
    Deadline,
    /// The request cannot be executed on this daemon (e.g. a `debug`
    /// op without `--debug-ops`).
    Refused(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panic(m) => write!(f, "job panicked: {m}"),
            JobError::Deadline => write!(f, "deadline exceeded"),
            JobError::Refused(m) => write!(f, "refused: {m}"),
        }
    }
}

/// The error kind string used in `error` events.
pub fn error_kind(e: &JobError) -> &'static str {
    match e {
        JobError::Panic(_) => "panic",
        JobError::Deadline => "deadline",
        JobError::Refused(_) => "bad_request",
    }
}

/// Executes one request body to its JSON artifact.
///
/// Every path is panic-contained: a panic anywhere in the harness
/// stack (or in any individual sweep point, via `try_map`) returns
/// [`JobError::Panic`]. Deadlines are honored at entry, at stage
/// boundaries, and per sweep point / sleep slice.
pub fn execute(
    body: &Body,
    exec: &Executor,
    token: &CancelToken,
    debug_ops: bool,
) -> Result<Json, JobError> {
    if token.expired() {
        return Err(JobError::Deadline);
    }
    match body {
        Body::Ping => Err(JobError::Refused(
            "ping is answered inline, never queued".into(),
        )),
        Body::Debug(_) if !debug_ops => Err(JobError::Refused(
            "debug ops are disabled; start the daemon with --debug-ops".into(),
        )),
        Body::Debug(DebugOp::Sleep { ms }) => {
            // Sleep in short slices so cancellation stays responsive.
            let mut left = *ms;
            while left > 0 {
                if token.expired() {
                    return Err(JobError::Deadline);
                }
                let slice = left.min(10);
                std::thread::sleep(std::time::Duration::from_millis(slice));
                left -= slice;
            }
            Ok(Json::obj().field("slept_ms", *ms))
        }
        Body::Debug(DebugOp::Panic) => contained(|| panic!("debug-requested panic")),
        Body::Claims { tier } => {
            let tier = *tier;
            contained(|| evaluate(&ClaimInputs::gather_with(tier, exec)).to_json())
        }
        Body::Faults { tier } => {
            let tier = *tier;
            contained(|| faults::run_with(tier, exec).to_json())
        }
        Body::Verify { quick } => {
            let bounds = if *quick {
                Bounds::quick()
            } else {
                Bounds::full()
            };
            contained(|| {
                let r = check_with(&bounds, exec);
                Json::obj()
                    .field("schema", "nox-serve/verify/v1")
                    .field("scenarios", r.scenarios)
                    .field("states", r.states)
                    .field("exhausted", r.exhausted)
                    .field(
                        "violations",
                        Json::Arr(
                            r.violations
                                .iter()
                                .map(|v| Json::from(v.to_string()))
                                .collect(),
                        ),
                    )
            })
        }
        Body::Profile { harness, tier } => {
            let (harness, tier) = (harness.clone(), *tier);
            contained(move || {
                let (_, report) = profile::collect(&harness, tier, exec.threads(), || {
                    run_by_name(&harness, tier, exec)
                });
                report.to_json()
            })
        }
        Body::Sweep(req) => sweep_artifact(req, exec, token),
    }
}

/// Runs `f` under `catch_unwind`, mapping a panic to [`JobError::Panic`].
fn contained(f: impl FnOnce() -> Json) -> Result<Json, JobError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JobError::Panic(panic_text(payload)))
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The simulation windows for a sweep tier. Smoke is sized for CI and
/// chaos tests; quick and full use the Figure 8 windows.
fn sweep_spec(tier: Tier) -> (RunSpec, f64) {
    match tier {
        Tier::Smoke => (
            RunSpec {
                warmup_ns: 500.0,
                measure_ns: 1_500.0,
                drain_ns: 8_000.0,
            },
            6_000.0,
        ),
        Tier::Quick | Tier::Full => (
            RunSpec {
                warmup_ns: 1_500.0,
                measure_ns: 6_000.0,
                drain_ns: 30_000.0,
            },
            40_000.0,
        ),
    }
}

/// Runs a sweep request: every `(arch, rate)` point fans out over the
/// executor with per-point panic containment and a per-point deadline
/// check, reducing to the `nox-serve/sweep/v1` artifact in submission
/// order (byte-identical at any thread count).
fn sweep_artifact(req: &SweepReq, exec: &Executor, token: &CancelToken) -> Result<Json, JobError> {
    let (spec, duration_ns) = sweep_spec(req.tier);
    let points: Vec<_> = req
        .archs
        .iter()
        .flat_map(|&arch| req.rates.iter().map(move |&rate| (arch, rate)))
        .collect();
    let slots = exec.try_map_stage("serve.sweep", points.clone(), |_, (arch, rate)| {
        if token.expired() {
            return None;
        }
        let net = if req.cmesh {
            NetConfig::cmesh_paper(arch)
        } else {
            NetConfig::paper(arch)
        };
        let trace = generate(
            Mesh::new(net.width, net.height),
            &SyntheticConfig {
                pattern: req.pattern,
                process: req.process,
                rate_mbps_per_node: rate,
                len: req.len,
                flit_bytes: net.flit_bytes,
                duration_ns,
                seed: req.seed,
            },
        );
        let result = run(net, &trace, &spec);
        Some(point_from_result(
            rate,
            result,
            &EnergyModel::for_arch(arch),
        ))
    });
    let mut measured = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Err(p) => return Err(JobError::Panic(p.message)),
            Ok(None) => return Err(JobError::Deadline),
            Ok(Some(point)) => measured.push(point),
        }
    }
    let series: Vec<Json> = points
        .iter()
        .zip(&measured)
        .map(|(&(arch, _), p)| point_json(arch.name(), p))
        .collect();
    Ok(Json::obj()
        .field("schema", "nox-serve/sweep/v1")
        .field("pattern", req.pattern.name())
        .field("len", u64::from(req.len))
        .field("seed", req.seed)
        .field("tier", req.tier.name())
        .field("cmesh", req.cmesh)
        .field("points", Json::Arr(series)))
}

fn point_json(arch: &str, p: &SweepPoint) -> Json {
    Json::obj()
        .field("arch", arch)
        .field("rate_mbps", p.rate_mbps)
        .field("latency_ns", p.latency_ns)
        .field("accepted_mbps", p.accepted_mbps)
        .field("energy_per_packet_pj", p.energy_per_packet_pj)
        .field("ed2", p.ed2)
        .field("power_mw", p.power_mw)
        .field("drained", p.drained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    fn exec() -> Executor {
        Executor::new(2)
    }

    #[test]
    fn panic_is_contained_as_a_structured_error() {
        let body = Body::Debug(DebugOp::Panic);
        let got = execute(&body, &exec(), &CancelToken::unbounded(), true);
        assert_eq!(got, Err(JobError::Panic("debug-requested panic".into())));
    }

    #[test]
    fn debug_ops_are_gated() {
        let body = Body::Debug(DebugOp::Sleep { ms: 1 });
        let got = execute(&body, &exec(), &CancelToken::unbounded(), false);
        assert!(matches!(got, Err(JobError::Refused(_))));
    }

    #[test]
    fn expired_token_cancels_before_and_during_work() {
        let token = CancelToken::expires_in_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(token.expired());
        let sleep = Body::Debug(DebugOp::Sleep { ms: 10_000 });
        assert_eq!(
            execute(&sleep, &exec(), &token, true),
            Err(JobError::Deadline)
        );
        // A sweep against an expired token dies at the first point.
        let r =
            Request::parse(r#"{"req":"sweep","arch":"nox","rates":[500],"tier":"smoke"}"#).unwrap();
        assert_eq!(
            execute(&r.body, &exec(), &token, false),
            Err(JobError::Deadline)
        );
    }

    #[test]
    fn sweep_artifact_is_identical_at_any_thread_count() {
        let r = Request::parse(
            r#"{"req":"sweep","arch":"nox","rates":[400,900],"len":1,"seed":11,"tier":"smoke"}"#,
        )
        .unwrap();
        let token = CancelToken::unbounded();
        let one = execute(&r.body, &Executor::new(1), &token, false).unwrap();
        let four = execute(&r.body, &Executor::new(4), &token, false).unwrap();
        assert_eq!(one.to_string(), four.to_string());
        assert!(one
            .to_string()
            .contains("\"schema\":\"nox-serve/sweep/v1\""));
    }
}
