//! The serve wire protocol: line-delimited JSON requests and events.
//!
//! A client sends one JSON object per line; the daemon answers with a
//! stream of event frames in exactly the [`nox_telemetry::stream`]
//! format (`{"event":...,"seq":N,...}\n`, one complete line per frame,
//! sequence numbers restarting per connection). Between a request's
//! `start` and its terminal `result`/`error` frame the daemon forwards
//! the executor's live `stage`/`job` progress frames for that request.
//!
//! Requests:
//!
//! ```json
//! {"req":"ping","id":"p0"}
//! {"req":"claims","id":"c1","tier":"smoke","deadline_ms":60000}
//! {"req":"faults","id":"f1","tier":"smoke"}
//! {"req":"verify","id":"v1","quick":true}
//! {"req":"profile","id":"p1","harness":"fig12","tier":"quick"}
//! {"req":"sweep","id":"s1","arch":"nox","pattern":"uniform","rates":[500,1000],"len":1,"seed":7,"tier":"smoke"}
//! {"req":"debug","id":"d1","op":"sleep","ms":500}
//! ```
//!
//! `id` is a client-chosen **idempotency token** echoed on every frame
//! about the request; resending a request (same or different id) after
//! a reconnect is always safe because cacheable results are
//! content-addressed. `deadline_ms` bounds the request's total time in
//! the daemon (queue wait included); `debug` requests exist for chaos
//! testing and are refused unless the daemon runs with `--debug-ops`.
//!
//! Events the daemon emits (beyond forwarded `stage`/`job` frames):
//! `hello` (connection open: protocol + code version), `pong`, `ack`
//! (queued: cache key + queue depth), `reject` (load shed or draining:
//! `reason`, `retry_after_ms`), `cache_hit`, `start`, `watchdog`
//! (hang flag: `running_ms`), `result` (terminal: `cached`, `key`,
//! `artifact`), and `error` (terminal: `kind` is `bad_request`,
//! `deadline`, `panic`, or `internal`).

use nox_analysis::harness::{Tier, HARNESS_NAMES};
use nox_analysis::json::Json;
use nox_sim::config::Arch;
use nox_traffic::synthetic::Process;
use nox_traffic::Pattern;

/// Protocol revision, announced in the `hello` frame.
pub const PROTO_VERSION: u64 = 1;

/// Longest request line the daemon will read, in bytes. Longer lines
/// are rejected and the connection closed — a malformed client cannot
/// make the daemon buffer without bound.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

/// Most rate points one sweep request may carry.
pub const MAX_SWEEP_RATES: usize = 64;

/// Longest debug sleep (and largest `deadline_ms`) accepted, ms.
pub const MAX_MS: u64 = 24 * 60 * 60 * 1000;

/// One parsed request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen idempotency/correlation token, echoed on every
    /// frame about this request (`"-"` when the client sent none).
    pub id: String,
    /// Deadline for the whole request (queue wait + compute), ms.
    /// `None` leaves the daemon default in force.
    pub deadline_ms: Option<u64>,
    /// What to run.
    pub body: Body,
}

/// The work a request names.
#[derive(Clone, Debug, PartialEq)]
pub enum Body {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Evaluate the conformance-claims registry at a tier.
    Claims {
        /// Evaluation tier.
        tier: Tier,
    },
    /// Run the fault-injection campaign study at a tier.
    Faults {
        /// Campaign tier.
        tier: Tier,
    },
    /// Run the bounded model checker.
    Verify {
        /// Use the fast CI bounds instead of the full ones.
        quick: bool,
    },
    /// Span-profile one named harness. Never cached: the artifact is
    /// wall-clock attribution, different on every run by design.
    Profile {
        /// Harness name (one of `HARNESS_NAMES`).
        harness: String,
        /// Harness tier.
        tier: Tier,
    },
    /// A synthetic-traffic latency/throughput sweep on the paper mesh.
    Sweep(SweepReq),
    /// Chaos-testing hook (sleep / panic), gated behind `--debug-ops`.
    Debug(DebugOp),
}

/// Parameters of a sweep request.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReq {
    /// Architectures to sweep (`Arch::ALL` order preserved).
    pub archs: Vec<Arch>,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Arrival process.
    pub process: Process,
    /// Offered loads, MB/s per node.
    pub rates: Vec<f64>,
    /// Packet length in flits.
    pub len: u16,
    /// Trace seed.
    pub seed: u64,
    /// Simulation windows tier.
    pub tier: Tier,
    /// Use the concentrated-mesh configuration.
    pub cmesh: bool,
}

/// A chaos-testing operation.
#[derive(Clone, Debug, PartialEq)]
pub enum DebugOp {
    /// Sleep for `ms`, checking the cancel token every slice.
    Sleep {
        /// Total sleep, ms.
        ms: u64,
    },
    /// Panic inside the job, to exercise containment.
    Panic,
}

impl Request {
    /// Parses one request line (already known to be valid JSON text).
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line.trim())?;
        Request::from_json(&doc)
    }

    /// Parses a request from its JSON document.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let id = match doc.get("id") {
            None => "-".to_string(),
            Some(v) => {
                let s = v.as_str().ok_or("\"id\" must be a string")?;
                if s.is_empty() || s.len() > 128 {
                    return Err("\"id\" must be 1..=128 bytes".into());
                }
                s.to_string()
            }
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v.as_u64().ok_or("\"deadline_ms\" must be an integer")?;
                if ms == 0 || ms > MAX_MS {
                    return Err(format!("\"deadline_ms\" must be 1..={MAX_MS}"));
                }
                Some(ms)
            }
        };
        let kind = doc
            .get("req")
            .and_then(Json::as_str)
            .ok_or("request needs a string \"req\" field")?;
        let body = match kind {
            "ping" => Body::Ping,
            "claims" => Body::Claims { tier: tier(doc)? },
            "faults" => Body::Faults { tier: tier(doc)? },
            "verify" => Body::Verify {
                quick: flag(doc, "quick")?.unwrap_or(true),
            },
            "profile" => {
                let harness = doc
                    .get("harness")
                    .and_then(Json::as_str)
                    .ok_or("profile needs a string \"harness\" field")?;
                if !HARNESS_NAMES.contains(&harness) {
                    return Err(format!(
                        "unknown harness {harness:?}; one of: {}",
                        HARNESS_NAMES.join(" ")
                    ));
                }
                Body::Profile {
                    harness: harness.to_string(),
                    tier: tier(doc)?,
                }
            }
            "sweep" => Body::Sweep(SweepReq::from_json(doc)?),
            "debug" => Body::Debug(match doc.get("op").and_then(Json::as_str) {
                Some("sleep") => {
                    let ms = doc
                        .get("ms")
                        .and_then(Json::as_u64)
                        .ok_or("debug sleep needs an integer \"ms\" field")?;
                    if ms > MAX_MS {
                        return Err(format!("\"ms\" must be <= {MAX_MS}"));
                    }
                    DebugOp::Sleep { ms }
                }
                Some("panic") => DebugOp::Panic,
                _ => return Err("debug needs \"op\":\"sleep\"|\"panic\"".into()),
            }),
            other => return Err(format!("unknown request kind {other:?}")),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }

    /// The canonical serialization the cache key is derived from, or
    /// `None` for uncacheable requests (ping, profile, debug).
    ///
    /// Canonical means: fixed field order, only the fields that change
    /// the artifact's bytes. The id, the deadline, and the executor
    /// width are all excluded — the first two don't affect the result,
    /// and thread-count independence is exactly what the determinism
    /// guarantees (and the cache-soundness tests) establish.
    pub fn canonical(&self) -> Option<String> {
        let doc = match &self.body {
            Body::Ping | Body::Profile { .. } | Body::Debug(_) => return None,
            Body::Claims { tier } => Json::obj()
                .field("req", "claims")
                .field("tier", tier.name()),
            Body::Faults { tier } => Json::obj()
                .field("req", "faults")
                .field("tier", tier.name()),
            Body::Verify { quick } => Json::obj().field("req", "verify").field("quick", *quick),
            Body::Sweep(s) => Json::obj()
                .field("req", "sweep")
                .field(
                    "archs",
                    Json::Arr(s.archs.iter().map(|a| Json::from(a.name())).collect()),
                )
                .field("pattern", s.pattern.name())
                .field(
                    "process",
                    match s.process {
                        Process::Poisson => "poisson",
                        Process::ParetoOnOff => "pareto",
                    },
                )
                .field(
                    "rates",
                    Json::Arr(s.rates.iter().map(|&r| Json::from(r)).collect()),
                )
                .field("len", u64::from(s.len))
                .field("seed", s.seed)
                .field("tier", s.tier.name())
                .field("cmesh", s.cmesh),
        };
        Some(doc.to_string())
    }
}

impl SweepReq {
    fn from_json(doc: &Json) -> Result<SweepReq, String> {
        let archs = match doc.get("arch").map(|v| v.as_str()) {
            None => Arch::ALL.to_vec(),
            Some(Some("all")) => Arch::ALL.to_vec(),
            Some(Some("nonspec")) => vec![Arch::NonSpec],
            Some(Some("fast")) => vec![Arch::SpecFast],
            Some(Some("acc")) => vec![Arch::SpecAccurate],
            Some(Some("nox")) => vec![Arch::Nox],
            _ => return Err("\"arch\" must be all|nonspec|fast|acc|nox".into()),
        };
        let pattern = match doc.get("pattern").map(|v| v.as_str()) {
            None => Pattern::UniformRandom,
            Some(Some(name)) => Pattern::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| format!("unknown pattern {name:?}"))?,
            Some(None) => return Err("\"pattern\" must be a string".into()),
        };
        let process = match doc.get("process").map(|v| v.as_str()) {
            None | Some(Some("poisson")) => Process::Poisson,
            Some(Some("pareto")) => Process::ParetoOnOff,
            _ => return Err("\"process\" must be poisson|pareto".into()),
        };
        let rates = match doc.get("rates") {
            None => vec![500.0, 1_000.0, 2_000.0],
            Some(v) => {
                let arr = v.as_array().ok_or("\"rates\" must be an array")?;
                if arr.is_empty() || arr.len() > MAX_SWEEP_RATES {
                    return Err(format!("\"rates\" must have 1..={MAX_SWEEP_RATES} points"));
                }
                let mut rates = Vec::with_capacity(arr.len());
                for r in arr {
                    let x = r.as_f64().ok_or("\"rates\" entries must be numbers")?;
                    if !(1.0..=1e6).contains(&x) {
                        return Err("rates must be in [1, 1e6] MB/s/node".into());
                    }
                    rates.push(x);
                }
                rates
            }
        };
        let len = match doc.get("len") {
            None => 1,
            Some(v) => {
                let n = v.as_u64().ok_or("\"len\" must be an integer")?;
                if !(1..=32).contains(&n) {
                    return Err("\"len\" must be 1..=32 flits".into());
                }
                n as u16
            }
        };
        let seed = match doc.get("seed") {
            None => 7,
            Some(v) => v.as_u64().ok_or("\"seed\" must be an integer")?,
        };
        Ok(SweepReq {
            archs,
            pattern,
            process,
            rates,
            len,
            seed,
            tier: tier(doc)?,
            cmesh: flag(doc, "cmesh")?.unwrap_or(false),
        })
    }
}

fn tier(doc: &Json) -> Result<Tier, String> {
    match doc.get("tier") {
        None => Ok(Tier::Smoke),
        Some(v) => {
            let name = v.as_str().ok_or("\"tier\" must be a string")?;
            Tier::parse(name).ok_or_else(|| format!("unknown tier {name:?} (full|quick|smoke)"))
        }
    }
}

fn flag(doc: &Json, key: &str) -> Result<Option<bool>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a boolean")),
    }
}

/// Starts an event frame about request `id`: `{"event":K,"id":I,...}`.
/// The daemon fills remaining fields builder-style and sends the line.
pub fn event(kind: &str, id: &str) -> Json {
    Json::obj().field("event", kind).field("id", id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        let r = Request::parse(r#"{"req":"ping","id":"p"}"#).unwrap();
        assert_eq!((r.id.as_str(), r.body), ("p", Body::Ping));
        let r = Request::parse(r#"{"req":"claims","tier":"quick"}"#).unwrap();
        assert_eq!(r.body, Body::Claims { tier: Tier::Quick });
        assert_eq!(r.id, "-");
        let r = Request::parse(r#"{"req":"verify"}"#).unwrap();
        assert_eq!(r.body, Body::Verify { quick: true });
        let r = Request::parse(r#"{"req":"profile","harness":"fig12"}"#).unwrap();
        assert!(
            matches!(r.body, Body::Profile { ref harness, tier: Tier::Smoke } if harness == "fig12")
        );
        let r = Request::parse(r#"{"req":"debug","op":"sleep","ms":50,"deadline_ms":10}"#).unwrap();
        assert_eq!(r.body, Body::Debug(DebugOp::Sleep { ms: 50 }));
        assert_eq!(r.deadline_ms, Some(10));
        let r = Request::parse(
            r#"{"req":"sweep","arch":"nox","pattern":"uniform","rates":[500,1000],"len":2,"seed":9,"tier":"smoke"}"#,
        )
        .unwrap();
        let Body::Sweep(s) = r.body else { panic!() };
        assert_eq!(s.archs, vec![Arch::Nox]);
        assert_eq!(s.rates, vec![500.0, 1000.0]);
        assert_eq!((s.len, s.seed), (2, 9));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"{"id":"x"}"#,
            r#"{"req":"nope"}"#,
            r#"{"req":"claims","tier":"huge"}"#,
            r#"{"req":"profile"}"#,
            r#"{"req":"profile","harness":"nope"}"#,
            r#"{"req":"sweep","rates":[]}"#,
            r#"{"req":"sweep","rates":[0.5]}"#,
            r#"{"req":"sweep","len":0}"#,
            r#"{"req":"sweep","arch":"mips"}"#,
            r#"{"req":"debug","op":"fork"}"#,
            r#"{"req":"ping","id":""}"#,
            r#"{"req":"ping","deadline_ms":0}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad} should be rejected");
        }
        let too_many = format!(
            r#"{{"req":"sweep","rates":[{}]}}"#,
            vec!["10"; MAX_SWEEP_RATES + 1].join(",")
        );
        assert!(Request::parse(&too_many).is_err());
    }

    #[test]
    fn canonical_excludes_id_deadline_and_is_stable() {
        let a =
            Request::parse(r#"{"req":"claims","id":"a","tier":"smoke","deadline_ms":5}"#).unwrap();
        let b = Request::parse(r#"{"req":"claims","id":"b","tier":"smoke"}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical().unwrap(), r#"{"req":"claims","tier":"smoke"}"#);
        // Uncacheable kinds have no canonical form.
        assert_eq!(
            Request::parse(r#"{"req":"ping"}"#).unwrap().canonical(),
            None
        );
        assert_eq!(
            Request::parse(r#"{"req":"profile","harness":"fig12"}"#)
                .unwrap()
                .canonical(),
            None
        );
        // Field order in the *request* does not matter; the canonical
        // form is emitted in one fixed order.
        let x = Request::parse(r#"{"seed":9,"req":"sweep","rates":[500],"arch":"nox"}"#).unwrap();
        let y = Request::parse(r#"{"req":"sweep","arch":"nox","rates":[500],"seed":9}"#).unwrap();
        assert_eq!(x.canonical(), y.canonical());
    }
}
