//! Content-addressed, crash-safe result cache.
//!
//! Every cacheable request has a **canonical serialization**
//! ([`crate::proto::Request::canonical`]); its cache key is a 128-bit
//! FNV-1a hash of that string joined with [`crate::CODE_VERSION`], so a
//! key names *exactly one* artifact: same request bytes + same code →
//! same key, and any code change that can alter artifact bytes bumps
//! the version and orphans every stale entry. The executor's
//! determinism guarantee (byte-identical output at any thread count)
//! is what makes content addressing sound — the thread count is
//! deliberately *not* part of the key, and the cache-soundness tests
//! pin that down.
//!
//! Crash-safety contract:
//!
//! * **Writes are atomic.** An entry is serialized to a `tmp-*` file in
//!   the cache directory, `sync_all`ed, then `rename`d into place.
//!   POSIX rename atomicity means a reader (or a `kill -9`) sees either
//!   no entry or the whole entry — never a torn one under the final
//!   name.
//! * **Entries are checksummed.** Each entry records an FNV-1a-64
//!   checksum of its artifact text, re-verified on every lookup, so
//!   even out-of-band corruption (a flipped byte on disk) is detected
//!   rather than served.
//! * **Startup heals.** [`Cache::open`] deletes leftover `tmp-*`
//!   partials and moves undecodable or checksum-failing entries into
//!   `quarantine/` for post-mortem instead of serving or deleting them.
//!   After `kill -9` at any instant, a restart loses at most the entry
//!   that was mid-write.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nox_analysis::json::Json;

/// Schema tag stamped into every entry file.
pub const SCHEMA: &str = "nox-serve/cache/v1";

/// FNV-1a-64 over `bytes`, from an arbitrary offset basis.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The content key for a canonical request serialization: 32 hex chars
/// from two independent FNV-1a-64 passes (standard offset basis and a
/// distinct second basis) over `canonical + "\n" + CODE_VERSION`.
///
/// FNV is not cryptographic; the cache defends against *accidents*
/// (crashes, bit rot), not adversaries — anyone who can write the
/// cache directory already owns the daemon.
pub fn content_key(canonical: &str) -> String {
    let mut keyed = String::with_capacity(canonical.len() + crate::CODE_VERSION.len() + 1);
    keyed.push_str(canonical);
    keyed.push('\n');
    keyed.push_str(crate::CODE_VERSION);
    let a = fnv1a(FNV_BASIS, keyed.as_bytes());
    let b = fnv1a(FNV_BASIS ^ 0x5bd1_e995_9e37_79b9, keyed.as_bytes());
    format!("{a:016x}{b:016x}")
}

/// Checksum of an artifact's serialized text, as recorded in entries.
fn checksum(artifact: &str) -> String {
    format!("{:016x}", fnv1a(FNV_BASIS, artifact.as_bytes()))
}

/// Result of a cache lookup.
#[derive(Debug, PartialEq)]
pub enum Lookup {
    /// A valid entry: the stored artifact document.
    Hit(Json),
    /// No entry under this key.
    Miss,
    /// An entry existed but failed validation; it has been moved to
    /// `quarantine/` and the caller should recompute.
    Quarantined,
}

/// What the startup scan found and did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Entries that validated.
    pub valid: usize,
    /// Leftover `tmp-*` partial writes deleted.
    pub partials_removed: usize,
    /// Corrupt entries moved to `quarantine/`.
    pub quarantined: usize,
}

/// The on-disk cache. All methods take `&self`; an internal counter
/// keeps concurrent temp-file names distinct.
pub struct Cache {
    dir: PathBuf,
    tmp_seq: AtomicU64,
    /// Filled by [`Cache::open`]'s integrity scan.
    pub scan: ScanReport,
}

impl Cache {
    /// Opens (creating if needed) the cache at `dir` and runs the
    /// integrity scan: `tmp-*` partials are deleted, entries that fail
    /// validation are moved into `dir/quarantine/`.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        fs::create_dir_all(dir)?;
        let mut scan = ScanReport::default();
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        for path in names {
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.starts_with("tmp-") {
                if fs::remove_file(&path).is_ok() {
                    scan.partials_removed += 1;
                }
                continue;
            }
            let Some(key) = name.strip_suffix(".json") else {
                continue;
            };
            match fs::read_to_string(&path) {
                Ok(text) if validate(key, &text).is_some() => scan.valid += 1,
                _ => {
                    quarantine(dir, &path, &name);
                    scan.quarantined += 1;
                }
            }
        }
        Ok(Cache {
            dir: dir.to_path_buf(),
            tmp_seq: AtomicU64::new(0),
            scan,
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up `key`, re-verifying the entry checksum. A corrupt
    /// entry is quarantined on the spot and reported as
    /// [`Lookup::Quarantined`] so the caller recomputes (and the next
    /// store overwrites the key with a good entry).
    pub fn lookup(&self, key: &str) -> Lookup {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Lookup::Miss,
        };
        match validate(key, &text) {
            Some(artifact) => Lookup::Hit(artifact),
            None => {
                quarantine(&self.dir, &path, &format!("{key}.json"));
                Lookup::Quarantined
            }
        }
    }

    /// Stores `artifact` under `key` atomically: serialize to a
    /// `tmp-*` file, `sync_all`, rename into place. A crash at any
    /// point leaves either the old state or the new entry, never a
    /// torn file under the final name.
    pub fn store(&self, key: &str, artifact: &Json) -> std::io::Result<()> {
        let artifact_text = artifact.to_string();
        let entry = Json::obj()
            .field("schema", SCHEMA)
            .field("key", key)
            .field("checksum", checksum(&artifact_text))
            .field("artifact", artifact.clone());
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("tmp-{}-{seq}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(entry.to_string().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.entry_path(key))
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }
}

/// Parses and fully validates an entry; returns the artifact if sound.
fn validate(key: &str, text: &str) -> Option<Json> {
    let doc = Json::parse(text.trim()).ok()?;
    if doc.get("schema")?.as_str()? != SCHEMA || doc.get("key")?.as_str()? != key {
        return None;
    }
    let artifact = doc.get("artifact")?;
    if doc.get("checksum")?.as_str()? != checksum(&artifact.to_string()) {
        return None;
    }
    Some(artifact.clone())
}

/// Moves a bad entry into `dir/quarantine/` (best-effort: if even that
/// fails the file is deleted so it can never be served).
fn quarantine(dir: &Path, path: &Path, name: &str) {
    let qdir = dir.join("quarantine");
    let moved = fs::create_dir_all(&qdir)
        .and_then(|()| fs::rename(path, qdir.join(name)))
        .is_ok();
    if !moved {
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Unique per-test scratch dir without wall-clock or RNG.
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("nox-serve-cache-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn artifact() -> Json {
        Json::obj().field("answer", 42u64).field("name", "sweep")
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = scratch("roundtrip");
        let cache = Cache::open(&dir).unwrap();
        let key = content_key(r#"{"req":"claims","tier":"smoke"}"#);
        assert_eq!(cache.lookup(&key), Lookup::Miss);
        cache.store(&key, &artifact()).unwrap();
        let Lookup::Hit(got) = cache.lookup(&key) else {
            panic!("expected hit")
        };
        assert_eq!(got.to_string(), artifact().to_string());
        // A second cache instance (a daemon restart) sees the entry.
        let reopened = Cache::open(&dir).unwrap();
        assert_eq!(
            reopened.scan,
            ScanReport {
                valid: 1,
                ..ScanReport::default()
            }
        );
        assert!(matches!(reopened.lookup(&key), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_requests_and_code_versions() {
        let a = content_key(r#"{"req":"claims","tier":"smoke"}"#);
        let b = content_key(r#"{"req":"claims","tier":"quick"}"#);
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        // Stable across calls (pure function of content).
        assert_eq!(a, content_key(r#"{"req":"claims","tier":"smoke"}"#));
    }

    #[test]
    fn flipped_byte_is_quarantined_not_served() {
        let dir = scratch("flip");
        let cache = Cache::open(&dir).unwrap();
        let key = content_key("victim");
        cache.store(&key, &artifact()).unwrap();
        // Corrupt one byte inside the artifact payload on disk.
        let path = dir.join(format!("{key}.json"));
        let mut bytes = fs::read(&path).unwrap();
        let pos = bytes.windows(2).position(|w| w == b"42").unwrap();
        bytes[pos] = b'9';
        fs::write(&path, &bytes).unwrap();

        assert_eq!(cache.lookup(&key), Lookup::Quarantined);
        assert!(dir.join("quarantine").join(format!("{key}.json")).exists());
        assert_eq!(cache.lookup(&key), Lookup::Miss);
        // Recompute + store heals the key.
        cache.store(&key, &artifact()).unwrap();
        assert!(matches!(cache.lookup(&key), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_scan_heals_partials_and_torn_entries() {
        let dir = scratch("scan");
        {
            let cache = Cache::open(&dir).unwrap();
            cache.store(&content_key("good"), &artifact()).unwrap();
        }
        // Simulate kill -9 mid-write: a leftover tmp file and an entry
        // truncated under its final name (as if the fs lost the tail).
        fs::write(dir.join("tmp-999-0"), b"{\"schema\":\"nox-serve/ca").unwrap();
        let torn = content_key("torn");
        fs::write(
            dir.join(format!("{torn}.json")),
            b"{\"schema\":\"nox-serve/cache/v1\",\"key\":\"",
        )
        .unwrap();
        // And one entry with a wrong key (renamed by hand).
        let moved = content_key("moved");
        let good_text =
            fs::read_to_string(dir.join(format!("{}.json", content_key("good")))).unwrap();
        fs::write(dir.join(format!("{moved}.json")), good_text).unwrap();

        let cache = Cache::open(&dir).unwrap();
        assert_eq!(
            cache.scan,
            ScanReport {
                valid: 1,
                partials_removed: 1,
                quarantined: 2
            }
        );
        assert!(!dir.join("tmp-999-0").exists());
        assert!(matches!(cache.lookup(&content_key("good")), Lookup::Hit(_)));
        assert_eq!(cache.lookup(&torn), Lookup::Miss);
        let _ = fs::remove_dir_all(&dir);
    }
}
