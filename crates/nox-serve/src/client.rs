//! The client: connect, send one request, stream events, survive
//! daemon restarts.
//!
//! Robustness lives in two mechanisms:
//!
//! * **Capped exponential backoff** on connect: attempt `n` sleeps
//!   `min(base << n, max)` before retrying, so a restarting daemon is
//!   found quickly without being hammered.
//! * **Idempotent resend**: if the stream ends (EOF) before a terminal
//!   `result`/`error`/`reject` frame, the client reconnects and sends
//!   the *same* request again. Artifacts are content-addressed and
//!   byte-identical across recomputation, so a resend can only hit the
//!   cache or redo identical work — never duplicate effects.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use nox_analysis::json::Json;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Connection attempts before giving up (per request round).
    pub attempts: u32,
    /// First backoff sleep, ms.
    pub base_backoff_ms: u64,
    /// Backoff cap, ms.
    pub max_backoff_ms: u64,
}

impl ClientConfig {
    /// Defaults for a socket path: 5 attempts, 50 ms doubling to 2 s.
    pub fn new(socket: impl Into<PathBuf>) -> ClientConfig {
        ClientConfig {
            socket: socket.into(),
            attempts: 5,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
        }
    }
}

/// How a request round ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A `result` frame arrived.
    Done {
        /// Served from the cache (possibly on a different round than
        /// the one that computed it).
        cached: bool,
        /// The artifact document.
        artifact: Json,
    },
    /// The daemon shed the request.
    Rejected {
        /// `"overload"` or `"draining"`.
        reason: String,
        /// The daemon's suggested wait before retrying, ms.
        retry_after_ms: u64,
    },
    /// A terminal `error` frame arrived.
    Failed {
        /// `bad_request` / `deadline` / `panic` / `internal`.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Connects with capped exponential backoff.
fn connect(cfg: &ClientConfig) -> Result<UnixStream, String> {
    let mut last = String::new();
    for attempt in 0..cfg.attempts.max(1) {
        if attempt > 0 {
            let shift = attempt.min(16) - 1;
            let sleep = cfg
                .base_backoff_ms
                .saturating_mul(1 << shift)
                .min(cfg.max_backoff_ms);
            std::thread::sleep(Duration::from_millis(sleep));
        }
        match UnixStream::connect(&cfg.socket) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
    }
    Err(format!(
        "could not connect to {} after {} attempt(s): {last}",
        cfg.socket.display(),
        cfg.attempts.max(1)
    ))
}

/// Sends `request` (one line, no trailing newline required) and reads
/// events until a terminal frame, invoking `on_event` with every raw
/// line received (progress frames included). EOF before a terminal
/// frame — a daemon crash or restart mid-request — reconnects and
/// resends the same line, up to `cfg.attempts` rounds.
pub fn request(
    cfg: &ClientConfig,
    request: &str,
    mut on_event: impl FnMut(&str),
) -> Result<Outcome, String> {
    let line = format!("{}\n", request.trim_end());
    let mut last = String::from("stream ended before a terminal event");
    for _round in 0..cfg.attempts.max(1) {
        let mut stream = connect(cfg)?;
        if let Err(e) = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.flush())
        {
            last = format!("send: {e}");
            continue;
        }
        // No read timeout: a long compute phase is legitimate silence.
        // Hangs are the daemon watchdog's department, and deadlines
        // ride inside the request itself.
        let _ = stream.set_read_timeout(None);
        match read_until_terminal(stream, &mut on_event) {
            Ok(outcome) => return Ok(outcome),
            Err(e) => last = e, // torn stream: reconnect and resend
        }
    }
    Err(last)
}

/// Like [`request`], but sleeps out `overload` rejections (honoring
/// the daemon's `retry_after_ms` hint, capped) and retries, up to
/// `rounds` times. `draining` rejections are returned immediately —
/// that daemon is going away; waiting on it is pointless.
pub fn request_with_retry(
    cfg: &ClientConfig,
    req: &str,
    rounds: u32,
    mut on_event: impl FnMut(&str),
) -> Result<Outcome, String> {
    for _ in 0..rounds.max(1) {
        match request(cfg, req, &mut on_event)? {
            Outcome::Rejected {
                reason,
                retry_after_ms,
            } if reason == "overload" => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 10_000)));
            }
            other => return Ok(other),
        }
    }
    Err(format!("still overloaded after {rounds} round(s)"))
}

fn read_until_terminal(
    stream: UnixStream,
    on_event: &mut impl FnMut(&str),
) -> Result<Outcome, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("stream ended before a terminal event".into()),
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read: {e}")),
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        on_event(trimmed);
        let Ok(doc) = Json::parse(trimmed) else {
            continue; // tolerate frames from a newer daemon
        };
        match doc.get("event").and_then(Json::as_str) {
            Some("result") => {
                return Ok(Outcome::Done {
                    cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
                    artifact: doc
                        .get("artifact")
                        .cloned()
                        .ok_or_else(|| "result frame without artifact".to_string())?,
                });
            }
            Some("error") => {
                return Ok(Outcome::Failed {
                    kind: doc
                        .get("kind")
                        .and_then(Json::as_str)
                        .unwrap_or("internal")
                        .to_string(),
                    message: doc
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                });
            }
            Some("reject") => {
                return Ok(Outcome::Rejected {
                    reason: doc
                        .get("reason")
                        .and_then(Json::as_str)
                        .unwrap_or("overload")
                        .to_string(),
                    retry_after_ms: doc
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(1_000),
                });
            }
            Some("pong") => {
                return Ok(Outcome::Done {
                    cached: false,
                    artifact: doc,
                });
            }
            _ => {} // hello / ack / cache_hit / start / progress frames
        }
    }
}
