//! The daemon: accept loop, bounded queue, worker, and watchdog.
//!
//! Thread structure (all state shared through one `Arc<Shared>`):
//!
//! * **accept** — nonblocking `UnixListener`; spawns one detached
//!   handler thread per connection; exits when shutdown is requested.
//! * **handlers** — read request lines (bounded at
//!   [`proto::MAX_LINE_BYTES`]), answer `ping` and cache hits inline,
//!   enqueue compute jobs, and shed load with structured `reject`
//!   frames when the queue is full or the daemon is draining. A
//!   malformed line gets a `bad_request` error frame and the
//!   connection lives on.
//! * **worker** — runs *one* compute job at a time (each job fans out
//!   internally over the whole [`nox_exec`] pool), streaming the job's
//!   telemetry frames to its requesting connection; exits only when
//!   shutdown is requested *and* the queue is drained, which is what
//!   makes SIGTERM a graceful drain.
//! * **watchdog** — flags the running job once it exceeds the hang
//!   threshold (a `watchdog` frame to the client plus a log line);
//!   detection only, by design — killing a thread mid-simulation
//!   would trade a hang for corrupted state.
//!
//! Why one compute lane: the executor already saturates every core for
//! a single job, so concurrent jobs would only fight over cores — and
//! a single lane is what lets the process-global telemetry stream sink
//! be bound to the requesting connection for the duration of a job.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nox_analysis::json::Json;
use nox_exec::Executor;
use nox_telemetry::stream::{self, Field};

use crate::cache::{Cache, Lookup};
use crate::job::{self, CancelToken, JobError};
use crate::proto::{self, Body, Request, MAX_LINE_BYTES, PROTO_VERSION};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Bounded queue capacity; a full queue sheds load.
    pub queue_cap: usize,
    /// Executor width for compute jobs (0 = all available cores).
    pub threads: usize,
    /// Deadline applied to requests that don't carry their own, ms.
    pub default_deadline_ms: u64,
    /// Running time after which the watchdog flags a job, ms.
    pub watchdog_ms: u64,
    /// Allow `debug` requests (chaos-testing hooks).
    pub debug_ops: bool,
}

impl ServeConfig {
    /// Defaults for a socket/cache-dir pair.
    pub fn new(socket: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            cache_dir: cache_dir.into(),
            queue_cap: 8,
            threads: 0,
            default_deadline_ms: 600_000,
            watchdog_ms: 30_000,
            debug_ops: false,
        }
    }
}

/// Counters the daemon reports when it exits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Request lines received (any kind).
    pub requests: u64,
    /// Artifacts computed and served.
    pub computed: u64,
    /// Artifacts served straight from the cache.
    pub cache_hits: u64,
    /// Requests shed because the queue was full.
    pub rejected_overload: u64,
    /// Requests refused during drain.
    pub rejected_draining: u64,
    /// Malformed request lines survived.
    pub bad_requests: u64,
    /// Jobs that panicked (contained).
    pub panics: u64,
    /// Jobs cancelled at their deadline.
    pub deadline_misses: u64,
    /// Jobs the watchdog flagged as hung.
    pub watchdog_flags: u64,
}

/// One queued compute job.
struct Queued {
    req: Request,
    key: Option<String>,
    token: CancelToken,
    conn: ConnWriter,
}

/// The job the worker is currently running, for the watchdog.
struct Running {
    id: String,
    started_ns: u64,
    flagged: bool,
    conn: ConnWriter,
}

struct Shared {
    cfg: ServeConfig,
    cache: Cache,
    queue: Mutex<VecDeque<Queued>>,
    wake: Condvar,
    /// Internal shutdown request ([`DaemonHandle::shutdown`]).
    shutdown: AtomicBool,
    /// External shutdown flag (the signal latch), if any.
    ext_shutdown: Option<&'static AtomicBool>,
    /// Set once the worker has drained and exited; lets the watchdog
    /// and lingering connection handlers wind down.
    stopped: AtomicBool,
    running: Mutex<Option<Running>>,
    /// EWMA of recent job duration (ns), for `retry_after_ms` hints.
    recent_job_ns: AtomicU64,
    stats: Stats,
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    computed: AtomicU64,
    cache_hits: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    bad_requests: AtomicU64,
    panics: AtomicU64,
    deadline_misses: AtomicU64,
    watchdog_flags: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || self
                .ext_shutdown
                .map(|f| f.load(Ordering::SeqCst))
                .unwrap_or(false)
    }

    fn snapshot(&self) -> DaemonStats {
        let s = &self.stats;
        DaemonStats {
            requests: s.requests.load(Ordering::Relaxed),
            computed: s.computed.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            rejected_overload: s.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: s.rejected_draining.load(Ordering::Relaxed),
            bad_requests: s.bad_requests.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            deadline_misses: s.deadline_misses.load(Ordering::Relaxed),
            watchdog_flags: s.watchdog_flags.load(Ordering::Relaxed),
        }
    }
}

/// A shareable writer for one connection: whole frames only, under one
/// lock, so daemon frames and forwarded telemetry frames never
/// interleave. Write errors latch the `dead` flag (the client hung
/// up); the job still completes and caches — that is what makes
/// resending a request after a reconnect idempotent.
#[derive(Clone)]
struct ConnWriter {
    stream: Arc<Mutex<UnixStream>>,
    dead: Arc<AtomicBool>,
}

impl ConnWriter {
    fn new(stream: UnixStream) -> ConnWriter {
        ConnWriter {
            stream: Arc::new(Mutex::new(stream)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sends one event frame (a complete line).
    fn send(&self, frame: &Json) {
        self.send_line(format!("{frame}\n").as_bytes());
    }

    fn send_line(&self, line: &[u8]) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut s = self.stream.lock().expect("conn writer lock");
        if s.write_all(line).and_then(|()| s.flush()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// A [`stream`] sink bound to one connection: buffers to newline
/// boundaries (the stream already writes one full line per call, but
/// the sink does not rely on that) and forwards each complete frame
/// through the connection's frame lock.
struct ConnSink {
    conn: ConnWriter,
    buf: Vec<u8>,
}

impl Write for ConnSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            self.conn.send_line(&line);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A running daemon started by [`spawn`].
pub struct DaemonHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    worker: JoinHandle<()>,
    watchdog: JoinHandle<()>,
}

impl DaemonHandle {
    /// Requests a graceful drain: stop accepting, finish queued work.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    /// Waits for the drain to complete and returns the final counters.
    pub fn join(self) -> DaemonStats {
        let _ = self.accept.join();
        let _ = self.worker.join();
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = self.watchdog.join();
        let _ = std::fs::remove_file(&self.shared.cfg.socket);
        self.shared.snapshot()
    }

    /// The daemon's cache scan report (what startup healing found).
    pub fn scan(&self) -> &crate::cache::ScanReport {
        &self.shared.cache.scan
    }
}

/// Binds the socket and starts the daemon threads. `ext_shutdown`, if
/// given, is polled alongside the handle's own flag (the signal latch
/// in the CLI path).
pub fn spawn(
    cfg: ServeConfig,
    ext_shutdown: Option<&'static AtomicBool>,
) -> Result<DaemonHandle, String> {
    let cache = Cache::open(&cfg.cache_dir)
        .map_err(|e| format!("cache dir {}: {e}", cfg.cache_dir.display()))?;
    let listener = bind(&cfg.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    let shared = Arc::new(Shared {
        cfg,
        cache,
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        ext_shutdown,
        stopped: AtomicBool::new(false),
        running: Mutex::new(None),
        recent_job_ns: AtomicU64::new(0),
        stats: Stats::default(),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, listener))
    };
    let worker = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(&shared))
    };
    let watchdog = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || watchdog_loop(&shared))
    };
    Ok(DaemonHandle {
        shared,
        accept,
        worker,
        watchdog,
    })
}

/// Runs a daemon in the foreground until SIGTERM/SIGINT, then drains
/// and returns the final counters. The CLI path.
pub fn run(cfg: ServeConfig) -> Result<DaemonStats, String> {
    let flag = crate::signal::install();
    let socket = cfg.socket.clone();
    let handle = spawn(cfg, Some(flag))?;
    eprintln!(
        "noxsim serve: listening on {} ({} valid cache entries, {} quarantined)",
        socket.display(),
        handle.scan().valid,
        handle.scan().quarantined
    );
    let stats = handle.join();
    eprintln!(
        "noxsim serve: drained and stopped ({} computed, {} cache hits, {} shed)",
        stats.computed, stats.cache_hits, stats.rejected_overload
    );
    Ok(stats)
}

/// Binds the listener, recovering a stale socket file (a previous
/// daemon that died without unlinking) by probing it with a connect:
/// refused means stale, accepted means a live daemon already owns it.
fn bind(path: &std::path::Path) -> Result<UnixListener, String> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(format!("{}: a daemon is already running", path.display()));
            }
            std::fs::remove_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
            UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))
        }
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_conn(&shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Wake the worker so it notices the drain even with an empty queue.
    shared.wake.notify_all();
}

fn handle_conn(shared: &Arc<Shared>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let conn = ConnWriter::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    });
    conn.send(
        &Json::obj()
            .field("event", "hello")
            .field("proto", PROTO_VERSION)
            .field("code_version", crate::CODE_VERSION),
    );
    let mut reader = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => {
                // EOF: a final unterminated line is still a request.
                if !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    handle_line(shared, &conn, &line);
                }
                return;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).into_owned();
                    if !line.trim().is_empty() {
                        handle_line(shared, &conn, &line);
                    }
                }
                if buf.len() as u64 > MAX_LINE_BYTES {
                    conn.send(
                        &proto::event("error", "-")
                            .field("kind", "bad_request")
                            .field("message", "request line exceeds 1 MiB"),
                    );
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stopped.load(Ordering::SeqCst) || conn.dead.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line on a connection.
fn handle_line(shared: &Arc<Shared>, conn: &ConnWriter, line: &str) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            conn.send(
                &proto::event("error", "-")
                    .field("kind", "bad_request")
                    .field("message", msg),
            );
            return;
        }
    };
    if matches!(req.body, Body::Ping) {
        let depth = shared.queue.lock().expect("queue lock").len();
        conn.send(
            &proto::event("pong", &req.id)
                .field("queue_depth", depth)
                .field("draining", shared.shutting_down()),
        );
        return;
    }
    // Cacheable requests are answered from the cache without queueing.
    let key = req.canonical().map(|c| crate::cache::content_key(&c));
    if let Some(key) = &key {
        match shared.cache.lookup(key) {
            Lookup::Hit(artifact) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                conn.send(&proto::event("cache_hit", &req.id).field("key", key.as_str()));
                conn.send(
                    &proto::event("result", &req.id)
                        .field("cached", true)
                        .field("key", key.as_str())
                        .field("artifact", artifact),
                );
                return;
            }
            Lookup::Quarantined => {
                // Corrupt entry healed out of the way; fall through and
                // recompute (the store will rewrite a good entry).
                eprintln!("noxsim serve: quarantined corrupt cache entry {key}");
            }
            Lookup::Miss => {}
        }
    }
    if shared.shutting_down() {
        shared
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        conn.send(
            &proto::event("reject", &req.id)
                .field("reason", "draining")
                .field("retry_after_ms", 1_000u64),
        );
        return;
    }
    let deadline_ms = req.deadline_ms.unwrap_or(shared.cfg.default_deadline_ms);
    let token = CancelToken::expires_in_ms(deadline_ms);
    let mut q = shared.queue.lock().expect("queue lock");
    if q.len() >= shared.cfg.queue_cap {
        drop(q);
        shared
            .stats
            .rejected_overload
            .fetch_add(1, Ordering::Relaxed);
        conn.send(
            &proto::event("reject", &req.id)
                .field("reason", "overload")
                .field("retry_after_ms", retry_after_ms(shared)),
        );
        return;
    }
    let id = req.id.clone();
    q.push_back(Queued {
        req,
        key,
        token,
        conn: conn.clone(),
    });
    let depth = q.len();
    drop(q);
    shared.wake.notify_all();
    conn.send(&proto::event("ack", &id).field("queue_depth", depth));
}

/// The load-shedding hint: scale the recent-job EWMA by the queue
/// depth, clamped to something a client can reasonably sleep.
fn retry_after_ms(shared: &Shared) -> u64 {
    let ewma_ns = shared.recent_job_ns.load(Ordering::Relaxed);
    if ewma_ns == 0 {
        return 1_000;
    }
    let depth = shared.queue.lock().expect("queue lock").len() as u64 + 1;
    ((ewma_ns / 1_000_000).saturating_mul(depth)).clamp(100, 60_000)
}

fn worker_loop(shared: &Arc<Shared>) {
    let exec = if shared.cfg.threads == 0 {
        Executor::default()
    } else {
        Executor::new(shared.cfg.threads)
    };
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down() {
                    return; // drained: graceful exit
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue lock");
                q = guard;
            }
        };
        run_job(shared, &exec, job);
    }
}

fn run_job(shared: &Arc<Shared>, exec: &Executor, job: Queued) {
    let Queued {
        req,
        key,
        token,
        conn,
    } = job;
    if token.expired() {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        conn.send(
            &proto::event("error", &req.id)
                .field("kind", "deadline")
                .field("message", "deadline passed while queued"),
        );
        return;
    }
    let started_ns = nox_telemetry::epoch_ns();
    *shared.running.lock().expect("running lock") = Some(Running {
        id: req.id.clone(),
        started_ns,
        flagged: false,
        conn: conn.clone(),
    });
    conn.send(&proto::event("start", &req.id));
    // Bind the process-global telemetry stream to this connection for
    // the duration of the job: the client sees the same run/stage/job
    // frames `--stream` would print, seq restarting at 0 per job.
    stream::set(Box::new(ConnSink {
        conn: conn.clone(),
        buf: Vec::new(),
    }));
    stream::emit(
        "run",
        &[("cmd", Field::Str("serve")), ("id", Field::Str(&req.id))],
    );
    let outcome = job::execute(&req.body, exec, &token, shared.cfg.debug_ops);
    stream::emit("done", &[]);
    stream::clear();
    *shared.running.lock().expect("running lock") = None;
    let elapsed_ns = nox_telemetry::epoch_ns().saturating_sub(started_ns);
    // EWMA with alpha 0.3, folded in integer ns.
    let prev = shared.recent_job_ns.load(Ordering::Relaxed);
    let next = if prev == 0 {
        elapsed_ns
    } else {
        (prev / 10) * 7 + (elapsed_ns / 10) * 3
    };
    shared.recent_job_ns.store(next, Ordering::Relaxed);
    match outcome {
        Ok(artifact) => {
            if let Some(key) = &key {
                if let Err(e) = shared.cache.store(key, &artifact) {
                    // Serving still succeeds; only future hits are lost.
                    eprintln!("noxsim serve: cache store failed for {key}: {e}");
                }
            }
            shared.stats.computed.fetch_add(1, Ordering::Relaxed);
            let mut frame = proto::event("result", &req.id).field("cached", false);
            if let Some(key) = &key {
                frame = frame.field("key", key.as_str());
            }
            conn.send(&frame.field("artifact", artifact));
        }
        Err(e) => {
            match e {
                JobError::Panic(_) => shared.stats.panics.fetch_add(1, Ordering::Relaxed),
                JobError::Deadline => shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed),
                JobError::Refused(_) => shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed),
            };
            conn.send(
                &proto::event("error", &req.id)
                    .field("kind", job::error_kind(&e))
                    .field("message", e.to_string()),
            );
        }
    }
}

fn watchdog_loop(shared: &Arc<Shared>) {
    let threshold_ns = shared.cfg.watchdog_ms.saturating_mul(1_000_000);
    while !shared.stopped.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        let mut running = shared.running.lock().expect("running lock");
        if let Some(r) = running.as_mut() {
            let elapsed = nox_telemetry::epoch_ns().saturating_sub(r.started_ns);
            if !r.flagged && elapsed > threshold_ns {
                r.flagged = true;
                shared.stats.watchdog_flags.fetch_add(1, Ordering::Relaxed);
                let running_ms = elapsed / 1_000_000;
                eprintln!(
                    "noxsim serve: watchdog: job {} running {running_ms} ms (threshold {} ms)",
                    r.id, shared.cfg.watchdog_ms
                );
                r.conn.send(
                    &proto::event("watchdog", &r.id)
                        .field("running_ms", running_ms)
                        .field("threshold_ms", shared.cfg.watchdog_ms),
                );
            }
        }
    }
}
