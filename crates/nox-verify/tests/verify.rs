//! The tentpole acceptance tests: the real FSMs pass the bounded checker
//! exhaustively with zero violations, and every documented mutation is
//! caught.

use nox_verify::{
    check, check_mutation, check_scenario, mutation_smoke, Bounds, Mutation, Scenario,
};

#[test]
fn real_fsms_pass_the_bounded_checker_exhaustively() {
    let bounds = Bounds::quick();
    let report = check(&bounds);
    assert!(
        report.scenarios > 100,
        "sweep too small: {}",
        report.scenarios
    );
    assert!(
        report.exhausted,
        "state budget exceeded — raise max_states or shrink bounds"
    );
    assert!(
        report.violations.is_empty(),
        "protocol violations on the real FSMs:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.is_clean());
}

#[test]
fn every_documented_mutation_is_caught() {
    let bounds = Bounds::quick();
    for report in mutation_smoke(&bounds) {
        assert!(
            report.caught.is_some(),
            "mutation `{}` ({}) survived the checker — an invariant has no teeth",
            report.mutation.name(),
            report.mutation.description()
        );
    }
}

#[test]
fn disabled_zero_credit_freeze_is_caught_specifically() {
    // The ISSUE's worked example: disabling the zero-credit freeze must
    // surface as a credit-protocol violation.
    let bounds = Bounds::quick();
    let report = check_mutation(&bounds, Mutation::IgnoreCreditFreeze);
    let v = report.caught.expect("freeze mutation must be caught");
    assert!(
        matches!(
            v.kind,
            nox_verify::ViolationKind::CreditUnderflow
                | nox_verify::ViolationKind::FifoOverflow
                | nox_verify::ViolationKind::CreditAccounting
        ),
        "unexpected violation kind: {v}"
    );
}

#[test]
fn three_way_collision_scenario_is_explored_and_clean() {
    // The paper's Figure 3 shape: three single-flit packets collide.
    let bounds = Bounds::quick();
    let sc = Scenario {
        inputs: vec![vec![1], vec![1], vec![1]],
        depth: 2,
        options: Default::default(),
    };
    let r = check_scenario(&sc, &bounds, None);
    assert!(r.exhausted);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    // Three independent arrival points, credit timing, and stalls give a
    // non-trivial space; a tiny count would mean the env is not branching.
    assert!(r.states > 100, "suspiciously small space: {}", r.states);
}

#[test]
fn multiflit_abort_scenario_is_explored_and_clean() {
    // A multi-flit packet colliding with a single-flit packet exercises
    // the abort + stream-lock path (DESIGN.md clarification 2).
    let bounds = Bounds::quick();
    for scheduled_mode in [true, false] {
        let sc = Scenario {
            inputs: vec![vec![2], vec![1]],
            depth: 1,
            options: nox_core::NoxOptions { scheduled_mode },
        };
        let r = check_scenario(&sc, &bounds, None);
        assert!(r.exhausted);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
