//! `nox-verify` — bounded model checking for the NoX protocol invariants.
//!
//! The NoX router (Hayenga & Lipasti, MICRO 2011) deliberately lets
//! packets collide: under contention an output drives the XOR of every
//! colliding flit and relies on a re-collision protocol, per-output
//! masking, and a per-input decode register to deliver every flit
//! exactly once. The correctness argument is distributed across two
//! interacting FSMs (`nox_core::output::OutputCtl` and
//! `nox_core::decode::Decoder`) plus credit flow control — precisely the
//! kind of argument that unit tests sample but never close.
//!
//! This crate closes it, within explicit bounds. It composes the *real*
//! FSM implementations (not re-implementations) with a model of the
//! plumbing the simulator puts around them — input queues, a credit
//! counter with the zero-credit freeze, a one-cycle link, the receiver
//! FIFO — and exhaustively enumerates the joint reachable state space
//! over a bounded scenario family: up to 5 colliding inputs, multi-flit
//! packets, and *every* interleaving of arrivals, credit returns, and
//! receiver stalls. At every transition it checks:
//!
//! * **I1 exact delivery** — every presented word is a single plain
//!   flit with bit-exact payload ([`ViolationKind::DecodeCorruption`],
//!   [`ViolationKind::PayloadCorruption`]);
//! * **I2 exactly-once, in order** — the receiver reproduces the service
//!   order with no loss or duplication ([`ViolationKind::OrderViolation`]);
//! * **I3 decision structure** — every [`nox_core::NoxDecision`] honours
//!   its structural contract ([`ViolationKind::Structural`]);
//! * **I4 chain monotonicity** — loser sets only shrink
//!   ([`ViolationKind::ChainGrowth`]);
//! * **I5 credit conservation** — buffer slots are never lost or
//!   duplicated ([`ViolationKind::CreditAccounting`],
//!   [`ViolationKind::CreditUnderflow`], [`ViolationKind::FifoOverflow`]);
//! * **I6 bounded liveness** — from every reachable state the system
//!   drains within `O(total flits)` cycles once the environment turns
//!   fair ([`ViolationKind::Livelock`]).
//!
//! # Mutation smoke
//!
//! A checker that finds nothing might be checking nothing, so
//! [`mutation_smoke`] flips each documented protocol rule in turn — the
//! zero-credit freeze, the switch-mask discipline, the stream lock, the
//! sole-winner rule, abort suppression, the encoded-latch rule, the
//! chain hold, and the `DecodeKeep` commit — and requires the checker to
//! catch every one.
//!
//! # Entry points
//!
//! ```no_run
//! use nox_verify::{check, mutation_smoke, Bounds};
//!
//! let report = check(&Bounds::quick());
//! assert!(report.is_clean());
//! for m in mutation_smoke(&Bounds::quick()) {
//!     assert!(m.caught.is_some(), "mutation {} survived", m.mutation.name());
//! }
//! ```
//!
//! # Fault invariant
//!
//! The fault-tolerance layer adds one more exhaustively checked property:
//!
//! * **I7 no silent corruption** — with the CRC-8 sideband enabled, the
//!   decoder never presents a silently-wrong flit: every chain shape,
//!   strike position, and single-bit link mask within bounds is driven
//!   through the real decoder and every corrupted presentation must be
//!   flagged ([`fault::check_decoder_crc`]).
//!
//! `noxsim verify` runs the same sweep at [`Bounds::full`] plus a
//! sanitized simulation smoke sweep (`nox-sim`'s `sanitize` feature) and
//! the I7 fault sweep at [`FaultBounds::quick`].

pub mod checker;
pub mod fault;
pub mod model;
pub mod mutation;
pub mod scenario;

pub use checker::{
    check, check_mutation, check_scenario, check_with, mutation_smoke, mutation_smoke_with,
    CheckReport, MutationReport, ScenarioReport,
};
pub use fault::{
    check_decoder_crc, check_decoder_crc_with, FaultBounds, FaultCheckReport, FaultViolation,
};
pub use model::{EnvChoice, Model, Violation, ViolationKind};
pub use mutation::Mutation;
pub use scenario::{scenarios, Bounds, Flit, Scenario};
