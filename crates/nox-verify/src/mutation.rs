//! Mutation smoke testing: each mutation flips one documented protocol
//! rule in the model's harness plumbing (never in `nox-core` itself) and
//! the checker must find a violation, proving the invariants have teeth.

/// A single protocol rule to disable or invert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// While a collision chain is outstanding, a third-party input's flit
    /// bypasses the switch mask and drives the link directly (breaks the
    /// mask discipline of §2.2; corrupts the receiver's decode register).
    ThirdPartyDuringChain,
    /// The zero-credit freeze (DESIGN.md clarification 4) is disabled:
    /// the output keeps arbitrating and driving with no credits.
    IgnoreCreditFreeze,
    /// An encoded transfer services *all* colliding inputs instead of the
    /// sole winner, so the losers never replay and the chain can't decode.
    ServiceAllCollided,
    /// An aborted cycle ships its invalid superposition word downstream
    /// (and pays a credit) instead of wasting the cycle.
    DeliverAbortedWord,
    /// The receiver ignores the encoded marker: an encoded head is
    /// presented as a plain flit instead of being latched.
    SkipEncodedLatch,
    /// The stream lock is broken: other inputs' flits XOR onto the link
    /// mid-packet while an unscheduled multi-flit packet streams.
    NoStreamLock,
    /// A zero-credit stall tears down the outstanding collision chain
    /// instead of freezing it (violates clarification 1's chain hold).
    DropChainOnStall,
    /// Completing a decode chain via `DecodeKeep` also pops the FIFO
    /// head, dropping the chain's final flit.
    PopOnDecodeKeep,
}

impl Mutation {
    /// All mutations, in documentation order.
    pub const ALL: [Mutation; 8] = [
        Mutation::ThirdPartyDuringChain,
        Mutation::IgnoreCreditFreeze,
        Mutation::ServiceAllCollided,
        Mutation::DeliverAbortedWord,
        Mutation::SkipEncodedLatch,
        Mutation::NoStreamLock,
        Mutation::DropChainOnStall,
        Mutation::PopOnDecodeKeep,
    ];

    /// Stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::ThirdPartyDuringChain => "third-party-during-chain",
            Mutation::IgnoreCreditFreeze => "ignore-credit-freeze",
            Mutation::ServiceAllCollided => "service-all-collided",
            Mutation::DeliverAbortedWord => "deliver-aborted-word",
            Mutation::SkipEncodedLatch => "skip-encoded-latch",
            Mutation::NoStreamLock => "no-stream-lock",
            Mutation::DropChainOnStall => "drop-chain-on-stall",
            Mutation::PopOnDecodeKeep => "pop-on-decode-keep",
        }
    }

    /// The rule being flipped, for reports.
    pub fn description(self) -> &'static str {
        match self {
            Mutation::ThirdPartyDuringChain => {
                "third-party flit bypasses the switch mask during a collision chain"
            }
            Mutation::IgnoreCreditFreeze => "zero-credit freeze disabled",
            Mutation::ServiceAllCollided => "encoded transfer services every collider",
            Mutation::DeliverAbortedWord => "aborted cycle delivers its invalid word",
            Mutation::SkipEncodedLatch => "encoded marker ignored at the receiver",
            Mutation::NoStreamLock => "stream lock broken mid-packet",
            Mutation::DropChainOnStall => "credit stall tears down the collision chain",
            Mutation::PopOnDecodeKeep => "chain-final decode pops the FIFO head",
        }
    }
}
