//! Exhaustive fault invariant (I7): with the CRC-8 sideband enabled, the
//! NoX decoder never emits a silently-wrong flit.
//!
//! The sweep enumerates every sequence of back-to-back XOR chains on one
//! link within the flit budget, every received word a single link fault
//! can strike, and every single-bit payload mask plus every single-bit
//! sideband mask. Each faulted stream is driven through the real
//! [`nox_core::Decoder`]; every word it presents is checked exactly as the
//! receiver hardware would — CRC-8 recomputed over the presented payload
//! against the XOR-accumulated sideband — and classified against the
//! ground-truth payload for the presented key.
//!
//! The invariant: a presented word whose payload differs from the ground
//! truth is always flagged; a corrupted flit is never delivered silently.
//! The sweep also measures chain fan-out — a strike on a late chain word
//! corrupts *multiple* presented flits — which is exactly the fragility
//! mechanism the fault campaign quantifies, here demonstrated over the
//! complete bounded space rather than sampled.
//!
//! Striking received word `j > 0` also covers decode-register corruption:
//! the register only ever holds a previously received link word, so every
//! reachable corrupted-register state is reached through some strike on
//! the stream that fed it.
//!
//! Payload *values* are not part of the exhaustive space (they cannot be:
//! the word is 64 bits wide). By CRC linearity the verdict is independent
//! of the base payloads — `crc8(p ^ m) ^ crc8(p) = crc8(m)` depends on the
//! mask alone — so the sweep runs each structural case over a small set of
//! representative payload assignments (hashed, all-zero, all-ones) and
//! leans on `nox-fault`'s linearity unit proofs for the rest.

use nox_core::{Coded, DecodeAction, DecodePlan, Decoder, Xor};
use nox_exec::Executor;
use nox_fault::crc8;

/// A link word as the protected hardware carries it: the 64-bit payload
/// plus the CRC-8 sideband riding on dedicated wires. Both bands XOR
/// independently through superposition and decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Word {
    payload: u64,
    crc: u8,
}

impl Word {
    /// A freshly injected flit: sideband computed at the source NIC.
    fn fresh(payload: u64) -> Self {
        Word {
            payload,
            crc: crc8(payload),
        }
    }

    /// `true` when the sideband matches the payload — the receiver's
    /// ejection check.
    fn crc_ok(&self) -> bool {
        crc8(self.payload) == self.crc
    }
}

impl Xor for Word {
    fn zero() -> Self {
        Word { payload: 0, crc: 0 }
    }
    fn xor(&self, other: &Self) -> Self {
        Word {
            payload: self.payload ^ other.payload,
            crc: self.crc ^ other.crc,
        }
    }
}

/// Limits on the fault-invariant sweep.
#[derive(Clone, Debug)]
pub struct FaultBounds {
    /// Maximum flits on the link across all chains in one stream.
    pub max_total_flits: u16,
    /// Maximum constituents per XOR chain.
    pub max_arity: u16,
}

impl FaultBounds {
    /// Bounds used by tests and `noxsim verify`: streams of up to five
    /// flits, chains up to the 4-way collisions a mesh router can form.
    pub fn quick() -> Self {
        FaultBounds {
            max_total_flits: 5,
            max_arity: 4,
        }
    }
}

/// A corrupted presentation that the CRC sideband failed to flag.
#[derive(Clone, Debug)]
pub struct FaultViolation {
    /// Chain-structure / strike / mask description.
    pub label: String,
    /// Key of the silently wrong flit.
    pub key: u64,
    /// Ground-truth payload for that key.
    pub expected: u64,
    /// Payload actually presented.
    pub actual: u64,
}

/// Aggregate result of the exhaustive decoder-CRC sweep.
#[derive(Clone, Debug, Default)]
pub struct FaultCheckReport {
    /// Chain-structure shapes enumerated.
    pub shapes: usize,
    /// `(shape, payload base, strike, mask)` cases driven end to end.
    pub cases: usize,
    /// Words presented by the decoder across all cases.
    pub presented: u64,
    /// Presentations whose payload differed from the ground truth.
    pub corrupted: u64,
    /// Corrupted presentations flagged by the sideband check.
    pub flagged: u64,
    /// Clean presentations flagged anyway (sideband-wire strikes); these
    /// cost a retransmission, never correctness.
    pub false_flags: u64,
    /// Largest number of flits corrupted by a single strike — the chain
    /// fan-out the fragility claim rests on.
    pub max_fanout: u32,
    /// Silent corruptions: corrupted presentations the check missed.
    pub violations: Vec<FaultViolation>,
}

impl FaultCheckReport {
    /// `true` when the sweep proves the invariant over the bounded space
    /// and was not vacuous: faults really corrupted presentations, the
    /// fan-out amplification really occurred, and every corruption was
    /// flagged.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
            && self.corrupted > 0
            && self.flagged == self.corrupted
            && self.max_fanout >= 2
    }
}

/// Every ordered sequence of chain arities with total at most `budget`
/// and each chain at most `max_arity` constituents (excluding the empty
/// sequence).
fn chain_shapes(budget: u16, max_arity: u16) -> Vec<Vec<u16>> {
    fn rec(budget: u16, max_arity: u16) -> Vec<Vec<u16>> {
        let mut out = vec![Vec::new()];
        for arity in 1..=max_arity.min(budget) {
            for mut tail in rec(budget - arity, max_arity) {
                tail.insert(0, arity);
                out.push(tail);
            }
        }
        out
    }
    rec(budget, max_arity)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect()
}

/// The received stream a NoX output emits for one `arity`-way collision:
/// the suffix-telescoped words `F0^..^Fn-1, F1^..^Fn-1, .., Fn-1`
/// (Figure 3's `A^B^C, B^C, C` generalized). Arity 1 is a plain flit.
fn chain_stream(flits: &[Coded<Word>]) -> Vec<Coded<Word>> {
    (0..flits.len())
        .map(|j| {
            let mut acc = Coded::empty();
            for f in &flits[j..] {
                acc = acc.xor(f);
            }
            acc
        })
        .collect()
}

/// Drains a received stream through the real decoder with an
/// always-granting switch, returning every presented word.
///
/// Corrupted payloads never change the *key* metadata, so the decoder's
/// control flow is identical to the fault-free run and is guaranteed to
/// terminate within the guard bound.
fn drain(stream: Vec<Coded<Word>>) -> Vec<Coded<Word>> {
    let mut fifo: std::collections::VecDeque<Coded<Word>> = stream.into();
    let mut dec: Decoder<Word> = Decoder::new();
    let mut out = Vec::new();
    let mut guard = 0;
    while !fifo.is_empty() || dec.is_mid_chain() {
        guard += 1;
        assert!(guard < 1000, "fault sweep: decoder failed to drain");
        match dec.plan(fifo.front()) {
            DecodePlan::Idle => break,
            DecodePlan::Latch => {
                let head = fifo.pop_front().unwrap();
                dec.latch(head);
            }
            DecodePlan::Present { word, action } => {
                out.push(word);
                let popped = match action {
                    DecodeAction::Pass => {
                        fifo.pop_front();
                        None
                    }
                    DecodeAction::DecodeKeep => None,
                    DecodeAction::DecodeShift => Some(fifo.pop_front().unwrap()),
                };
                dec.commit(action, popped);
            }
        }
    }
    out
}

/// Representative base payload for key `k` under payload-assignment
/// `base`: a splitmix-style hash, all-zeros, or all-ones.
fn base_payload(base: usize, k: u64) -> u64 {
    match base {
        0 => {
            let mut x = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^ (x >> 27)
        }
        1 => 0,
        _ => u64::MAX,
    }
}

/// Exhaustively checks that the decoder plus CRC sideband never delivers
/// a silently-wrong flit, over every chain shape, strike position, and
/// single-bit mask within `bounds`.
pub fn check_decoder_crc(bounds: &FaultBounds) -> FaultCheckReport {
    check_decoder_crc_with(bounds, &Executor::sequential())
}

/// Runs the exhaustive sweep of [`check_decoder_crc`] sharded by chain
/// shape over `exec`. Each shard enumerates one shape's full (payload
/// base, strike, mask) space independently; the shards merge additively
/// in shape order (the serial iteration order), so counters, fan-out
/// maximum, and the violation list are bit-identical to the serial sweep
/// at any thread count.
pub fn check_decoder_crc_with(bounds: &FaultBounds, exec: &Executor) -> FaultCheckReport {
    let shapes = chain_shapes(bounds.max_total_flits, bounds.max_arity);

    // Single-bit strikes on the payload band, then on the sideband band.
    let masks: Vec<Word> = (0..64)
        .map(|b| Word {
            payload: 1u64 << b,
            crc: 0,
        })
        .chain((0..8).map(|b| Word {
            payload: 0,
            crc: 1u8 << b,
        }))
        .collect();

    let partials = exec.map(shapes.iter(), |_, shape| sweep_shape(shape, &masks));
    let mut report = FaultCheckReport {
        shapes: shapes.len(),
        ..FaultCheckReport::default()
    };
    for p in partials {
        report.cases += p.cases;
        report.presented += p.presented;
        report.corrupted += p.corrupted;
        report.flagged += p.flagged;
        report.false_flags += p.false_flags;
        report.max_fanout = report.max_fanout.max(p.max_fanout);
        report.violations.extend(p.violations);
    }
    report
}

/// One shard of the exhaustive sweep: every (payload base, strike, mask)
/// case of a single chain shape, reported as a partial
/// [`FaultCheckReport`] (with `shapes` left zero for the merge).
fn sweep_shape(shape: &[u16], masks: &[Word]) -> FaultCheckReport {
    let mut report = FaultCheckReport::default();
    for base in 0..3 {
        // Ground truth and the fault-free received stream.
        let mut key = 0u64;
        let mut stream: Vec<Coded<Word>> = Vec::new();
        for &arity in shape {
            let flits: Vec<Coded<Word>> = (0..arity)
                .map(|_| {
                    key += 1;
                    Coded::plain(key, Word::fresh(base_payload(base, key)))
                })
                .collect();
            stream.extend(chain_stream(&flits));
        }
        let truth = |k: u64| base_payload(base, k);

        for strike in 0..stream.len() {
            for mask in masks {
                report.cases += 1;
                let mut faulted = stream.clone();
                faulted[strike].corrupt_payload(mask);

                let mut fanout = 0u32;
                for word in drain(faulted) {
                    report.presented += 1;
                    let k = word.sole_key().expect("decoder presented a non-plain word");
                    let actual = word.payload().payload;
                    let corrupted = actual != truth(k);
                    let flagged = !word.payload().crc_ok();
                    if corrupted {
                        report.corrupted += 1;
                        fanout += 1;
                        if flagged {
                            report.flagged += 1;
                        } else {
                            report.violations.push(FaultViolation {
                                label: format!(
                                    "shape={shape:?} base={base} strike={strike} \
                                     mask={:#x}/{:#x}",
                                    mask.payload, mask.crc
                                ),
                                key: k,
                                expected: truth(k),
                                actual,
                            });
                        }
                    } else if flagged {
                        report.false_flags += 1;
                    }
                }
                report.max_fanout = report.max_fanout.max(fanout);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shapes_cover_the_budget() {
        let shapes = chain_shapes(3, 2);
        // [1], [2], [1,1], [1,2], [2,1], [1,1,1]
        assert_eq!(shapes.len(), 6);
        assert!(shapes.iter().all(|s| s.iter().sum::<u16>() <= 3));
    }

    #[test]
    fn fault_free_stream_decodes_to_ground_truth() {
        let flits: Vec<Coded<Word>> = (1..=3)
            .map(|k| Coded::plain(k, Word::fresh(base_payload(0, k))))
            .collect();
        let presented = drain(chain_stream(&flits));
        assert_eq!(presented.len(), 3);
        for word in presented {
            let k = word.sole_key().unwrap();
            assert_eq!(word.payload().payload, base_payload(0, k));
            assert!(word.payload().crc_ok());
        }
    }

    #[test]
    fn late_chain_strike_fans_out_to_two_corruptions() {
        // Figure 3's chain with the middle word (B^C) struck: both B and
        // the register-recovered A present corrupted — and both flagged.
        let flits: Vec<Coded<Word>> = (1..=3)
            .map(|k| Coded::plain(k, Word::fresh(k * 0x1111)))
            .collect();
        let mut stream = chain_stream(&flits);
        stream[1].corrupt_payload(&Word { payload: 1, crc: 0 });
        let bad: Vec<_> = drain(stream)
            .into_iter()
            .filter(|w| !w.payload().crc_ok())
            .collect();
        assert_eq!(bad.len(), 2, "one strike on B^C must corrupt two flits");
    }

    #[test]
    fn exhaustive_sweep_is_clean_and_nonvacuous() {
        let report = check_decoder_crc(&FaultBounds::quick());
        assert!(
            report.violations.is_empty(),
            "silent corruption escaped the CRC: {:?}",
            report.violations.first()
        );
        assert!(report.cases > 10_000, "sweep unexpectedly small");
        assert!(report.corrupted > 0, "vacuous sweep: nothing corrupted");
        assert_eq!(report.flagged, report.corrupted);
        assert!(report.max_fanout >= 2, "chain fan-out never observed");
        assert!(report.false_flags > 0, "sideband strikes never flagged");
        assert!(report.is_clean());
    }
}
