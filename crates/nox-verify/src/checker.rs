//! The bounded model checker: breadth-first exhaustive exploration of
//! every scenario's reachable joint state space, with the invariants
//! checked at every transition and bounded liveness probed from every
//! reachable state.

use std::collections::{HashSet, VecDeque};

use crate::model::{Model, Violation, ViolationKind};
use crate::mutation::Mutation;
use crate::scenario::{scenarios, Bounds, Scenario};
use nox_exec::Executor;

/// Exploration result for one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario explored.
    pub label: String,
    /// Distinct states reached.
    pub states: usize,
    /// Violations found (exploration of a scenario stops at the first).
    pub violations: Vec<Violation>,
    /// `true` if the full reachable space was enumerated within the
    /// state budget.
    pub exhausted: bool,
}

/// Aggregate result over a scenario sweep.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Scenarios explored.
    pub scenarios: usize,
    /// Total distinct states across all scenarios.
    pub states: usize,
    /// All violations found.
    pub violations: Vec<Violation>,
    /// `true` only if *every* scenario was explored to exhaustion.
    pub exhausted: bool,
}

impl CheckReport {
    /// `true` when the sweep proves the invariants over the bounded
    /// space: exhaustive and violation-free.
    pub fn is_clean(&self) -> bool {
        self.exhausted && self.violations.is_empty()
    }
}

/// Result of the mutation smoke sweep for one mutation.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// The mutation applied.
    pub mutation: Mutation,
    /// `Some` with the first violation that caught it, `None` if the
    /// mutation survived the whole sweep (a checker gap).
    pub caught: Option<Violation>,
    /// States explored before it was caught (or in total, if missed).
    pub states: usize,
}

/// Exhaustively explores one scenario under an optional mutation.
///
/// From every newly discovered state the checker (a) probes bounded
/// liveness via the maximally fair schedule, and (b) expands every
/// environment choice, checking the safety invariants on each transition.
/// States are deduplicated by hashing the full joint state, so the
/// exploration terminates exactly when the reachable space is closed.
pub fn check_scenario(
    sc: &Scenario,
    bounds: &Bounds,
    mutation: Option<Mutation>,
) -> ScenarioReport {
    let scripts = sc.scripts();
    let k = bounds.liveness_k(sc);
    let init = Model::init(sc);

    let mut visited: HashSet<Model> = HashSet::new();
    let mut queue: VecDeque<Model> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);

    let mut violations = Vec::new();
    let mut exhausted = true;

    'explore: while let Some(state) = queue.pop_front() {
        if let Err(v) = state.check_liveness(sc, &scripts, k, mutation) {
            violations.push(v);
            break 'explore;
        }
        for choice in state.choices(&scripts) {
            let mut next = state.clone();
            match next.step(sc, &scripts, choice, mutation) {
                Err(v) => {
                    violations.push(v);
                    break 'explore;
                }
                Ok(()) => {
                    if visited.contains(&next) {
                        continue;
                    }
                    if visited.len() >= bounds.max_states {
                        exhausted = false;
                        break 'explore;
                    }
                    visited.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
    }

    ScenarioReport {
        label: sc.label(),
        states: visited.len(),
        violations,
        exhausted,
    }
}

/// Runs the checker over every scenario within `bounds` on the real,
/// unmutated FSMs. A clean report is a bounded proof of the protocol
/// invariants.
pub fn check(bounds: &Bounds) -> CheckReport {
    check_with(bounds, &Executor::sequential())
}

/// Runs the scenario sweep of [`check`] with each scenario's exploration
/// fanned out over `exec`. Every scenario explores an independent state
/// space, and the serial sweep never stops early across scenarios, so
/// the ordered reduction makes this report bit-identical to the serial
/// one at any thread count.
pub fn check_with(bounds: &Bounds, exec: &Executor) -> CheckReport {
    let reports = exec.map(scenarios(bounds), |_, sc| check_scenario(&sc, bounds, None));
    let mut report = CheckReport {
        exhausted: true,
        ..CheckReport::default()
    };
    for r in reports {
        report.scenarios += 1;
        report.states += r.states;
        report.exhausted &= r.exhausted;
        report.violations.extend(r.violations);
    }
    report
}

/// Runs the checker over the scenario sweep with `mutation` applied,
/// stopping at the first violation (which is the desired outcome).
pub fn check_mutation(bounds: &Bounds, mutation: Mutation) -> MutationReport {
    let mut states = 0;
    for sc in scenarios(bounds) {
        let r = check_scenario(&sc, bounds, Some(mutation));
        states += r.states;
        if let Some(v) = r.violations.into_iter().next() {
            return MutationReport {
                mutation,
                caught: Some(v),
                states,
            };
        }
    }
    MutationReport {
        mutation,
        caught: None,
        states,
    }
}

/// Runs every documented mutation through the checker. Each must be
/// caught; a surviving mutation means an invariant has lost its teeth.
pub fn mutation_smoke(bounds: &Bounds) -> Vec<MutationReport> {
    mutation_smoke_with(bounds, &Executor::sequential())
}

/// Runs the mutation smoke sweep with one job per mutation over `exec`.
/// Each mutation's *inner* scenario sweep stays serial — it stops at the
/// first catching scenario, and that early exit is part of the reported
/// state count — so every `MutationReport` is bit-identical to the
/// serial [`mutation_smoke`] at any thread count.
pub fn mutation_smoke_with(bounds: &Bounds, exec: &Executor) -> Vec<MutationReport> {
    exec.map(Mutation::ALL.iter().copied(), |_, m| {
        check_mutation(bounds, m)
    })
}

/// Sanity marker: the kinds a liveness probe may legitimately report.
pub fn is_liveness_kind(kind: ViolationKind) -> bool {
    kind == ViolationKind::Livelock
}
