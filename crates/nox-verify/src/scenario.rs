//! Bounded scenario generation: every way to feed a small number of
//! packets into the colliding inputs of one output port.
//!
//! A scenario fixes the *structure* of the traffic — how many inputs, the
//! packet-length sequence each input injects, the downstream buffer depth,
//! and the controller options. Everything about *timing* (arrival
//! interleaving, credit latency, receiver stalls) is left to the checker's
//! nondeterministic environment, so one scenario covers every schedule of
//! its traffic.

use nox_core::NoxOptions;

/// One script flit as the sender's input port sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Flit {
    /// Globally unique flit key (unique across the whole scenario).
    pub key: u64,
    /// `true` if this flit belongs to a multi-flit packet.
    pub multiflit: bool,
    /// `true` if this flit is the last of its packet.
    pub tail: bool,
}

/// A fixed traffic pattern to exhaustively explore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Per input: the sequence of packet lengths it injects.
    pub inputs: Vec<Vec<u16>>,
    /// Downstream buffer depth (= initial credits).
    pub depth: u8,
    /// Controller options (scheduled mode on/off).
    pub options: NoxOptions,
}

impl Scenario {
    /// Total flits injected across all inputs.
    pub fn total_flits(&self) -> u32 {
        self.inputs
            .iter()
            .flat_map(|pkts| pkts.iter())
            .map(|&l| l as u32)
            .sum()
    }

    /// Expands the packet lengths into per-input flit scripts with
    /// globally unique keys.
    pub fn scripts(&self) -> Vec<Vec<Flit>> {
        let mut key = 1u64;
        self.inputs
            .iter()
            .map(|pkts| {
                let mut script = Vec::new();
                for &len in pkts {
                    for seq in 0..len {
                        script.push(Flit {
                            key,
                            multiflit: len > 1,
                            tail: seq + 1 == len,
                        });
                        key += 1;
                    }
                }
                script
            })
            .collect()
    }

    /// Compact human-readable identifier used in violation reports.
    pub fn label(&self) -> String {
        let pkts: Vec<String> = self
            .inputs
            .iter()
            .map(|p| {
                let lens: Vec<String> = p.iter().map(|l| l.to_string()).collect();
                format!("[{}]", lens.join(","))
            })
            .collect();
        format!(
            "n={} depth={} sched={} pkts={}",
            self.inputs.len(),
            self.depth,
            if self.options.scheduled_mode {
                "on"
            } else {
                "off"
            },
            pkts.join("")
        )
    }
}

/// Limits on the scenario sweep and on each scenario's exploration.
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Maximum number of colliding inputs.
    pub max_inputs: u8,
    /// Maximum flits injected per scenario (all inputs combined).
    pub max_total_flits: u16,
    /// Maximum flits per packet.
    pub max_packet_len: u16,
    /// Buffer depths to sweep.
    pub depths: Vec<u8>,
    /// Per-scenario cap on explored states; exceeding it is reported as
    /// non-exhaustion, never silently truncated.
    pub max_states: usize,
    /// Liveness bound is `liveness_per_flit * total_flits + 16` fair
    /// cycles.
    pub liveness_per_flit: u32,
}

impl Bounds {
    /// Small bounds for tests and CI: up to 3 colliding inputs, 4 flits.
    /// Every documented mutation is catchable within these bounds.
    pub fn quick() -> Self {
        Bounds {
            max_inputs: 3,
            max_total_flits: 4,
            max_packet_len: 3,
            depths: vec![1, 2],
            max_states: 200_000,
            liveness_per_flit: 8,
        }
    }

    /// Full bounds for `noxsim verify`: up to 5 colliding inputs (the
    /// paper's worst case for a 5-port mesh router), deeper buffers.
    pub fn full() -> Self {
        Bounds {
            max_inputs: 5,
            max_total_flits: 5,
            max_packet_len: 4,
            depths: vec![1, 2, 4],
            max_states: 2_000_000,
            liveness_per_flit: 8,
        }
    }

    /// Liveness bound for one scenario.
    pub fn liveness_k(&self, sc: &Scenario) -> u32 {
        self.liveness_per_flit * sc.total_flits() + 16
    }
}

/// Every packet-length sequence (ordered) with total length at most
/// `budget` and each packet at most `max_len` flits.
fn packet_sequences(budget: u16, max_len: u16) -> Vec<Vec<u16>> {
    let mut out = vec![Vec::new()];
    for len in 1..=max_len.min(budget) {
        for mut tail in packet_sequences(budget - len, max_len) {
            tail.insert(0, len);
            out.push(tail);
        }
    }
    out
}

/// Enumerates every scenario within `bounds`: for each input count,
/// depth, and option set, the cartesian product of per-input packet
/// sequences whose combined flit count stays within the budget.
pub fn scenarios(bounds: &Bounds) -> Vec<Scenario> {
    let mut out = Vec::new();
    for n in 1..=bounds.max_inputs {
        let mut assignments: Vec<Vec<Vec<u16>>> = vec![Vec::new()];
        for _ in 0..n {
            let mut next = Vec::new();
            for partial in &assignments {
                let used: u16 = partial.iter().flat_map(|p| p.iter()).sum();
                for seq in packet_sequences(bounds.max_total_flits - used, bounds.max_packet_len) {
                    let mut ext = partial.clone();
                    ext.push(seq);
                    next.push(ext);
                }
            }
            assignments = next;
        }
        for inputs in assignments {
            // Require the last input to inject something, otherwise the
            // scenario is identical to a smaller-n scenario.
            if inputs.last().is_none_or(|p| p.is_empty()) {
                continue;
            }
            if inputs.iter().flat_map(|p| p.iter()).sum::<u16>() == 0 {
                continue;
            }
            for &depth in &bounds.depths {
                for scheduled_mode in [true, false] {
                    out.push(Scenario {
                        inputs: inputs.clone(),
                        depth,
                        options: NoxOptions { scheduled_mode },
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_sequences_are_bounded_and_complete() {
        let seqs = packet_sequences(3, 2);
        // {}, {1}, {2}, {1,1}, {1,2}, {2,1}, {1,1,1}
        assert_eq!(seqs.len(), 7);
        assert!(seqs.iter().all(|s| s.iter().sum::<u16>() <= 3));
        assert!(seqs.iter().all(|s| s.iter().all(|&l| (1..=2).contains(&l))));
    }

    #[test]
    fn scripts_number_flits_uniquely_and_mark_tails() {
        let sc = Scenario {
            inputs: vec![vec![2], vec![1]],
            depth: 2,
            options: NoxOptions::default(),
        };
        let scripts = sc.scripts();
        assert_eq!(scripts[0].len(), 2);
        assert_eq!(scripts[1].len(), 1);
        assert!(scripts[0][0].multiflit && !scripts[0][0].tail);
        assert!(scripts[0][1].multiflit && scripts[0][1].tail);
        assert!(!scripts[1][0].multiflit && scripts[1][0].tail);
        let keys: Vec<u64> = scripts.iter().flatten().map(|f| f.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn scenario_sweep_is_nonempty_and_within_bounds() {
        let bounds = Bounds::quick();
        let all = scenarios(&bounds);
        assert!(!all.is_empty());
        for sc in &all {
            assert!(sc.inputs.len() <= bounds.max_inputs as usize);
            assert!(sc.total_flits() >= 1);
            assert!(sc.total_flits() <= bounds.max_total_flits as u32);
            assert!(!sc.inputs.last().unwrap().is_empty());
        }
    }
}
