//! The verification model: one NoX output port wired to one downstream
//! input port, with every environment degree of freedom left
//! nondeterministic.
//!
//! The model composes the two real control FSMs from `nox-core` — the
//! output-arbitration controller ([`OutputCtl`]) and the input decode
//! register ([`Decoder`]) — with exactly the plumbing the simulator's
//! router puts around them: per-input flit queues, a credit counter with
//! the zero-credit freeze (DESIGN.md clarification 4), a one-cycle link,
//! and the receiver FIFO. Nothing in the protocol logic is re-implemented;
//! the model only schedules the same calls `nox-sim` makes, so a state
//! explored here is a state the simulator can reach.
//!
//! Three environment choices are resolved nondeterministically by the
//! checker each cycle:
//!
//! * **arrivals** — any subset of inputs with pending script flits may
//!   receive their next flit (upstream timing is arbitrary);
//! * **credit release** — any number of credits freed at the receiver may
//!   complete their return trip (credit latency is arbitrary);
//! * **receiver stall** — the receiver's presented word may lose its own
//!   downstream switch allocation this cycle (downstream contention).

use std::collections::VecDeque;

use nox_core::{
    Coded, DecodeAction, DecodePlan, Decoder, Mode, NoxDecision, OutputCtl, PortId, PortSet,
    RequestSet,
};

use crate::mutation::Mutation;
use crate::scenario::{Flit, Scenario};

/// A link word: the XOR-coding wrapper over a 64-bit payload.
pub type Word = Coded<u64>;

/// Deterministic payload bits for a flit key, so the checker can verify
/// bit-exact reconstruction after any decode sequence.
pub fn payload_for(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The plain link word presenting one script flit.
pub fn word_of(f: Flit) -> Word {
    Coded::plain(f.key, payload_for(f.key))
}

/// One cycle's worth of environment nondeterminism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvChoice {
    /// Inputs whose next script flit arrives this cycle.
    pub arrivals: PortSet,
    /// How many receiver-freed credits complete their return this cycle.
    pub release: u8,
    /// `true` if the receiver's presented word loses downstream switch
    /// allocation this cycle (latches are never stalled — they need no
    /// grant).
    pub rx_stall: bool,
}

/// Why a model run was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The receiver presented a word that is not a single plain flit —
    /// the decode register was corrupted (e.g. by a third-party flit
    /// slipping into a collision chain).
    DecodeCorruption,
    /// A presented flit's payload bits differ from the injected bits.
    PayloadCorruption,
    /// Flits were not delivered exactly once in service order.
    OrderViolation,
    /// An outstanding collision chain grew or picked up new members.
    ChainGrowth,
    /// A word was driven onto the link without a downstream credit.
    CreditUnderflow,
    /// The credit loop lost or duplicated a buffer slot.
    CreditAccounting,
    /// A word arrived at a full receiver FIFO.
    FifoOverflow,
    /// A [`NoxDecision`] violated its own structural contract.
    Structural,
    /// The system failed to drain within the liveness bound under
    /// maximally fair scheduling.
    Livelock,
}

impl ViolationKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::DecodeCorruption => "decode-corruption",
            ViolationKind::PayloadCorruption => "payload-corruption",
            ViolationKind::OrderViolation => "order-violation",
            ViolationKind::ChainGrowth => "chain-growth",
            ViolationKind::CreditUnderflow => "credit-underflow",
            ViolationKind::CreditAccounting => "credit-accounting",
            ViolationKind::FifoOverflow => "fifo-overflow",
            ViolationKind::Structural => "structural",
            ViolationKind::Livelock => "livelock",
        }
    }
}

/// A concrete invariant violation found by the checker.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The scenario being explored.
    pub scenario: String,
    /// What exactly went wrong, with the offending state.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.kind.name(),
            self.scenario,
            self.detail
        )
    }
}

/// The joint protocol state: sender FSM, link, receiver FSM, and the
/// bookkeeping needed to state the invariants.
///
/// `Eq`/`Hash` cover the full state, which is what lets the checker
/// deduplicate and explore the reachable space to exhaustion.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Model {
    /// The real per-output arbitration FSM under test.
    ctl: OutputCtl,
    /// Per input: how many script flits have arrived at the sender.
    arrived: Vec<u16>,
    /// Per input: how many script flits have been serviced (sent).
    sent: Vec<u16>,
    /// Sender-side credits for the downstream buffer.
    credits: u8,
    /// Credits freed at the receiver but still in their return flight.
    pending: u8,
    /// The word currently traversing the link (delivered next cycle).
    link: Option<Word>,
    /// The receiver's input FIFO.
    rx_fifo: VecDeque<Word>,
    /// The real input-port decode FSM under test.
    decoder: Decoder<u64>,
    /// Keys serviced by the sender but not yet presented by the receiver,
    /// in service order. The receiver must reproduce exactly this queue.
    outstanding: VecDeque<u64>,
}

impl Model {
    /// The initial state for a scenario: everything empty, full credits.
    pub fn init(sc: &Scenario) -> Self {
        let n = sc.inputs.len();
        Model {
            ctl: OutputCtl::with_options(n as u8, sc.options),
            arrived: vec![0; n],
            sent: vec![0; n],
            credits: sc.depth,
            pending: 0,
            link: None,
            rx_fifo: VecDeque::new(),
            decoder: Decoder::new(),
            outstanding: VecDeque::new(),
        }
    }

    /// The head flit input `i` currently presents, if any.
    fn head(&self, scripts: &[Vec<Flit>], i: usize) -> Option<Flit> {
        if self.sent[i] < self.arrived[i] {
            Some(scripts[i][self.sent[i] as usize])
        } else {
            None
        }
    }

    /// `true` when every flit has been injected, serviced, delivered, and
    /// every credit has come home.
    pub fn is_terminal(&self, scripts: &[Vec<Flit>], depth: u8) -> bool {
        self.sent
            .iter()
            .enumerate()
            .all(|(i, &s)| s as usize == scripts[i].len())
            && self.outstanding.is_empty()
            && self.rx_fifo.is_empty()
            && self.link.is_none()
            && !self.decoder.is_mid_chain()
            && self.credits == depth
    }

    /// Enumerates every environment choice available from this state.
    pub fn choices(&self, scripts: &[Vec<Flit>]) -> Vec<EnvChoice> {
        let eligible: Vec<u8> = (0..scripts.len())
            .filter(|&i| (self.arrived[i] as usize) < scripts[i].len())
            .map(|i| i as u8)
            .collect();
        // The stall choice only matters when the receiver could present.
        let stalls: &[bool] =
            if self.rx_fifo.is_empty() && self.link.is_none() && !self.decoder.is_mid_chain() {
                &[false]
            } else {
                &[false, true]
            };
        let mut out = Vec::new();
        for mask in 0..(1u32 << eligible.len()) {
            let mut arrivals = PortSet::EMPTY;
            for (bit, &i) in eligible.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    arrivals.insert(PortId(i));
                }
            }
            for release in 0..=self.pending {
                for &rx_stall in stalls {
                    out.push(EnvChoice {
                        arrivals,
                        release,
                        rx_stall,
                    });
                }
            }
        }
        out
    }

    fn violation(&self, sc: &Scenario, kind: ViolationKind, detail: String) -> Violation {
        Violation {
            kind,
            scenario: sc.label(),
            detail: format!("{detail}; state: {self:?}"),
        }
    }

    /// Structural contract of a [`NoxDecision`] (the per-cycle checks the
    /// proptests sample, asserted here at every reachable state).
    fn check_decision(
        &self,
        sc: &Scenario,
        d: &NoxDecision,
        req: &RequestSet,
    ) -> Result<(), Violation> {
        let fail = |msg: String| Err(self.violation(sc, ViolationKind::Structural, msg));
        if !d.drive.is_subset(req.req) {
            return fail(format!(
                "drive {:?} outside requests {:?}",
                d.drive, req.req
            ));
        }
        if d.aborted {
            if d.drive.len() < 2 || !d.serviced.is_empty() {
                return fail(format!("malformed abort: {d:?}"));
            }
            return Ok(());
        }
        if !d.serviced.is_subset(d.drive) {
            return fail(format!(
                "serviced {:?} outside drive {:?}",
                d.serviced, d.drive
            ));
        }
        if d.encoded {
            if d.drive.len() < 2 || d.serviced.len() != 1 {
                return fail(format!("malformed encoded transfer: {d:?}"));
            }
        } else if !d.drive.is_empty() && d.drive != d.serviced {
            return fail(format!("plain transfer must service its driver: {d:?}"));
        }
        Ok(())
    }

    /// Advances the model by one cycle under `choice`, applying `mutation`
    /// (if any) to the harness plumbing. Mirrors the simulator's phase
    /// order: deliver, environment, sender tick, receiver decode step,
    /// conservation audit.
    pub fn step(
        &mut self,
        sc: &Scenario,
        scripts: &[Vec<Flit>],
        choice: EnvChoice,
        mutation: Option<Mutation>,
    ) -> Result<(), Violation> {
        let n = scripts.len();

        // Phase 1: the in-flight word lands in the receiver FIFO.
        if let Some(w) = self.link.take() {
            if self.rx_fifo.len() >= sc.depth as usize {
                return Err(self.violation(
                    sc,
                    ViolationKind::FifoOverflow,
                    format!("word {w:?} arrived at a full FIFO (depth {})", sc.depth),
                ));
            }
            self.rx_fifo.push_back(w);
        }

        // Phase 2: environment — arrivals and credit returns.
        for i in choice.arrivals.iter() {
            self.arrived[i.index()] += 1;
        }
        debug_assert!(choice.release <= self.pending);
        self.pending -= choice.release;
        self.credits += choice.release;

        // Phase 3: sender. Credit exhaustion freezes the whole output
        // (clarification 4) unless the freeze itself is the mutation.
        let frozen = self.credits == 0 && mutation != Some(Mutation::IgnoreCreditFreeze);
        if frozen {
            if mutation == Some(Mutation::DropChainOnStall) && !self.ctl.chain().is_empty() {
                // Mutated rule: the stall tears down the outstanding
                // collision chain instead of holding it.
                self.ctl = OutputCtl::with_options(n as u8, sc.options);
            }
        } else {
            self.sender_tick(sc, scripts, mutation)?;
        }

        // Phase 4: receiver decode step.
        self.receiver_step(sc, choice.rx_stall, mutation)?;

        // Phase 5: credit-loop conservation. Every downstream buffer slot
        // is either available (credits), in return flight (pending),
        // occupied (FIFO), or reserved by the word on the link.
        let slots = self.credits as usize
            + self.pending as usize
            + self.rx_fifo.len()
            + usize::from(self.link.is_some());
        if slots != sc.depth as usize {
            return Err(self.violation(
                sc,
                ViolationKind::CreditAccounting,
                format!("slot accounting {} != depth {}", slots, sc.depth),
            ));
        }
        Ok(())
    }

    fn sender_tick(
        &mut self,
        sc: &Scenario,
        scripts: &[Vec<Flit>],
        mutation: Option<Mutation>,
    ) -> Result<(), Violation> {
        let n = scripts.len();
        let chain_before = self.ctl.chain();

        // Mutated rule: a third-party flit bypasses the switch mask while
        // a collision chain is outstanding.
        if mutation == Some(Mutation::ThirdPartyDuringChain) && !chain_before.is_empty() {
            let third = (0..n).find(|&j| {
                !chain_before.contains(PortId(j as u8)) && self.head(scripts, j).is_some()
            });
            if let Some(j) = third {
                let f = self.head(scripts, j).unwrap();
                self.consume_credit(sc)?;
                self.link = Some(word_of(f));
                self.sent[j] += 1;
                self.outstanding.push_back(f.key);
                return Ok(());
            }
        }

        let mut req = RequestSet::default();
        for i in 0..n {
            if let Some(f) = self.head(scripts, i) {
                let p = PortId(i as u8);
                req.req.insert(p);
                if f.multiflit {
                    req.multiflit.insert(p);
                }
                if f.tail {
                    req.tail.insert(p);
                }
            }
        }

        let d = self.ctl.tick(req);
        self.check_decision(sc, &d, &req)?;

        // Chain monotonicity: an outstanding chain only ever shrinks, and
        // a fresh chain can only be born from this cycle's colliders.
        let chain_after = self.ctl.chain();
        let bound = if chain_before.is_empty() {
            d.drive
        } else {
            chain_before
        };
        if !chain_after.is_subset(bound) {
            return Err(self.violation(
                sc,
                ViolationKind::ChainGrowth,
                format!("chain {chain_before:?} -> {chain_after:?} not within {bound:?}"),
            ));
        }

        if d.aborted {
            // An abort wastes the link cycle: invalid word, nothing
            // delivered, no credit consumed…
            if mutation == Some(Mutation::DeliverAbortedWord) {
                // …unless mutated to ship the invalid superposition.
                let word: Word = d
                    .drive
                    .iter()
                    .map(|i| word_of(self.head(scripts, i.index()).unwrap()))
                    .collect();
                self.consume_credit(sc)?;
                self.link = Some(word);
            }
            return Ok(());
        }

        if !d.drive.is_empty() {
            let mut word: Word = d
                .drive
                .iter()
                .map(|i| word_of(self.head(scripts, i.index()).unwrap()))
                .collect();
            if word.is_encoded() != d.encoded {
                return Err(self.violation(
                    sc,
                    ViolationKind::Structural,
                    format!("encoded flag {} disagrees with word {word:?}", d.encoded),
                ));
            }
            if mutation == Some(Mutation::NoStreamLock) && d.mode == Mode::Stream {
                // Mutated rule: the stream lock stops excluding other
                // inputs from the switch.
                for j in 0..n {
                    if !d.drive.contains(PortId(j as u8)) {
                        if let Some(f) = self.head(scripts, j) {
                            word = word.xor(&word_of(f));
                        }
                    }
                }
            }
            self.consume_credit(sc)?;
            self.link = Some(word);

            let serviced = if mutation == Some(Mutation::ServiceAllCollided) && d.encoded {
                d.drive // mutated rule: losers freed too, chain never replays
            } else {
                d.serviced
            };
            for i in serviced.iter() {
                let f = self.head(scripts, i.index()).unwrap();
                self.sent[i.index()] += 1;
                self.outstanding.push_back(f.key);
            }
        }
        Ok(())
    }

    fn consume_credit(&mut self, sc: &Scenario) -> Result<(), Violation> {
        if self.credits == 0 {
            return Err(self.violation(
                sc,
                ViolationKind::CreditUnderflow,
                "drove the link with zero downstream credits".to_string(),
            ));
        }
        self.credits -= 1;
        Ok(())
    }

    fn receiver_step(
        &mut self,
        sc: &Scenario,
        rx_stall: bool,
        mutation: Option<Mutation>,
    ) -> Result<(), Violation> {
        let mut plan = self.decoder.plan(self.rx_fifo.front());
        if mutation == Some(Mutation::SkipEncodedLatch) {
            if let DecodePlan::Latch = plan {
                // Mutated rule: the encoded marker is ignored — the head is
                // presented as if it were a plain flit.
                plan = DecodePlan::Present {
                    word: self.rx_fifo.front().unwrap().clone(),
                    action: DecodeAction::Pass,
                };
            }
        }
        match plan {
            DecodePlan::Idle => {}
            DecodePlan::Latch => {
                // Latching needs no switch grant: it always proceeds, and
                // the freed FIFO slot's credit starts its return trip.
                let w = self.rx_fifo.pop_front().unwrap();
                self.decoder.latch(w);
                self.pending += 1;
            }
            DecodePlan::Present { word, action } => {
                if rx_stall {
                    return Ok(()); // presentation lost switch allocation
                }
                if !word.is_plain() {
                    return Err(self.violation(
                        sc,
                        ViolationKind::DecodeCorruption,
                        format!("receiver presented an undecodable word {word:?}"),
                    ));
                }
                let key = word.sole_key().unwrap();
                if *word.payload() != payload_for(key) {
                    return Err(self.violation(
                        sc,
                        ViolationKind::PayloadCorruption,
                        format!("flit {key} delivered corrupted payload bits"),
                    ));
                }
                match self.outstanding.front() {
                    Some(&k) if k == key => {
                        self.outstanding.pop_front();
                    }
                    other => {
                        return Err(self.violation(
                            sc,
                            ViolationKind::OrderViolation,
                            format!("delivered flit {key}, expected {other:?}"),
                        ));
                    }
                }
                match action {
                    DecodeAction::Pass => {
                        self.rx_fifo.pop_front();
                        self.decoder.commit(DecodeAction::Pass, None);
                        self.pending += 1;
                    }
                    DecodeAction::DecodeKeep => {
                        self.decoder.commit(DecodeAction::DecodeKeep, None);
                        if mutation == Some(Mutation::PopOnDecodeKeep) {
                            // Mutated rule: the chain's final flit is
                            // dropped from the FIFO along with the decode.
                            self.rx_fifo.pop_front();
                            self.pending += 1;
                        }
                    }
                    DecodeAction::DecodeShift => {
                        let head = self.rx_fifo.pop_front().unwrap();
                        self.decoder.commit(DecodeAction::DecodeShift, Some(head));
                        self.pending += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Bounded-liveness probe: from this state, runs the *maximally fair*
    /// deterministic schedule (every arrival lands, every credit returns,
    /// the receiver never stalls) and demands the system drain to the
    /// terminal state within `k` cycles. A state that cannot drain even
    /// under perfect fairness is livelocked.
    pub fn check_liveness(
        &self,
        sc: &Scenario,
        scripts: &[Vec<Flit>],
        k: u32,
        mutation: Option<Mutation>,
    ) -> Result<(), Violation> {
        let mut m = self.clone();
        for _ in 0..k {
            if m.is_terminal(scripts, sc.depth) {
                return Ok(());
            }
            let mut arrivals = PortSet::EMPTY;
            for (i, script) in scripts.iter().enumerate() {
                if (m.arrived[i] as usize) < script.len() {
                    arrivals.insert(PortId(i as u8));
                }
            }
            let choice = EnvChoice {
                arrivals,
                release: m.pending,
                rx_stall: false,
            };
            m.step(sc, scripts, choice, mutation)?;
        }
        if m.is_terminal(scripts, sc.depth) {
            return Ok(());
        }
        Err(m.violation(
            sc,
            ViolationKind::Livelock,
            format!("failed to drain within {k} fair cycles"),
        ))
    }
}
