//! Fuzz-style corpus for the handwritten JSON parser.
//!
//! The `noxsim serve` daemon parses client-supplied request lines with
//! [`nox_analysis::json::Json::parse`], so the parser's failure mode on
//! hostile input must be a clean `Err` — never a panic, unbounded
//! recursion, or an allocation explosion. Each test here feeds a family
//! of adversarial documents through the parser; the test harness itself
//! asserts "no panic" (a panic fails the test), and the assertions pin
//! the error-vs-ok split where it matters.

use nox_analysis::json::{Json, MAX_DEPTH};

/// splitmix64 — the workspace's standard deterministic test RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A representative valid document exercising every value kind.
const VALID: &str = r#"{"schema":"nox-serve/req/v1","req":"sweep","id":"a\n\"b","tier":"smoke","rates":[500,1000.5,-2e3],"len":1,"ok":true,"none":null,"nested":{"xs":[{"y":[]}]}}"#;

#[test]
fn every_truncation_of_a_valid_document_errors_cleanly() {
    // A torn write can cut a line anywhere; every prefix must parse to
    // a clean result (almost always Err), never panic.
    for end in 0..VALID.len() {
        if !VALID.is_char_boundary(end) {
            continue;
        }
        let _ = Json::parse(&VALID[..end]);
    }
    // The only prefix that parses is the full document.
    assert!(Json::parse(VALID).is_ok());
    for end in 1..VALID.len() {
        if VALID.is_char_boundary(end) {
            assert!(
                Json::parse(&VALID[..end]).is_err(),
                "proper prefix of length {end} should be malformed"
            );
        }
    }
}

#[test]
fn seeded_byte_mutations_never_panic() {
    // Flip, insert, and delete bytes at seeded positions. Mutations may
    // produce invalid UTF-8 (skipped: parse takes &str) or by luck a
    // valid document; the property under test is "no panic, bounded
    // work".
    let mut state = 0x5EED_CAFE_F00D_0001u64;
    for _ in 0..2_000 {
        let mut bytes = VALID.as_bytes().to_vec();
        let kind = splitmix64(&mut state) % 3;
        let at = (splitmix64(&mut state) as usize) % bytes.len();
        let b = (splitmix64(&mut state) & 0x7F) as u8;
        match kind {
            0 => bytes[at] = b,
            1 => bytes.insert(at, b),
            _ => {
                bytes.remove(at);
            }
        }
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = Json::parse(s);
        }
    }
}

#[test]
fn malformed_corpus_all_error() {
    let deep = "[".repeat(MAX_DEPTH + 10);
    let deep_obj = r#"{"a":"#.repeat(MAX_DEPTH + 10);
    let corpus: Vec<String> = vec![
        String::new(),
        " ".to_string(),
        "nul".to_string(),
        "truefalse".to_string(),
        "{]".to_string(),
        "[}".to_string(),
        "[1 2]".to_string(),
        "{\"a\":1,}".to_string(),
        "{\"a\":1 \"b\":2}".to_string(),
        "{1:2}".to_string(),
        "\"unterminated".to_string(),
        "\"bad escape \\x\"".to_string(),
        "\"\\u d800\"".to_string(),
        "\"\\udfff\"".to_string(),
        "01e".to_string(),
        "+1".to_string(),
        "1e".to_string(),
        "1e+".to_string(),
        "--1".to_string(),
        "1e9999999999".to_string(),
        "-1e9999999999".to_string(),
        format!("1{}", "0".repeat(400)), // u64 overflow -> f64 inf -> error
        deep.clone(),
        format!("{deep}1"),
        deep_obj,
        "[[[[\"a\"".to_string(),
        "{\"a\"".to_string(),
        "{\"a\":".to_string(),
        "[1,".to_string(),
        "1 1".to_string(),
        "null null".to_string(),
    ];
    for doc in &corpus {
        assert!(
            Json::parse(doc).is_err(),
            "{:?}... should be malformed",
            &doc[..doc.len().min(40)]
        );
    }
}

#[test]
fn huge_but_legal_documents_stay_bounded() {
    // Wide (not deep) structures are legal and must parse in linear
    // time/space: 50k-element array, 10k-key object, 100 KiB string.
    let wide = format!("[{}]", vec!["7"; 50_000].join(","));
    assert_eq!(
        Json::parse(&wide).unwrap().as_array().unwrap().len(),
        50_000
    );
    let obj = format!(
        "{{{}}}",
        (0..10_000)
            .map(|i| format!("\"k{i}\":{i}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    assert!(Json::parse(&obj).is_ok());
    let long = format!("\"{}\"", "x".repeat(100_000));
    assert_eq!(
        Json::parse(&long).unwrap().as_str().map(str::len),
        Some(100_000)
    );
}
