//! Integration tests binding the claims registry to EXPERIMENTS.md and
//! exercising golden round-trips of the cheap versioned JSON schemas.
//!
//! The expensive harnesses (fig8/fig9/fig10/... drive full simulations)
//! are exercised by `noxsim claims --smoke` in CI, not here; these tests
//! must stay fast enough for the default `cargo test` tier.

use std::collections::BTreeSet;

use nox_analysis::claims::REGISTRY;
use nox_analysis::harness::{fig13, figs237, table1, table2};
use nox_analysis::{Json, Tier};

fn experiments_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("could not read {path}: {e}"))
}

/// Every `claim:<id>` tag in a line, in order.
fn claim_tags(line: &str) -> Vec<&str> {
    let mut tags = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find("claim:") {
        let id = &rest[at + "claim:".len()..];
        let end = id
            .find(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'))
            .unwrap_or(id.len());
        tags.push(&id[..end]);
        rest = &id[end..];
    }
    tags
}

/// A markdown table separator (`|---|---|`) or alignment row.
fn is_separator(line: &str) -> bool {
    line.chars().all(|c| matches!(c, '|' | '-' | ':' | ' '))
}

#[test]
fn every_registry_claim_is_cited_in_experiments_md() {
    let text = experiments_md();
    for spec in &REGISTRY {
        assert!(
            text.contains(&format!("claim:{}", spec.id)),
            "claim {} is in the registry but never cited in EXPERIMENTS.md",
            spec.id
        );
    }
}

#[test]
fn every_numeric_experiments_table_row_carries_a_known_claim_id() {
    let known: BTreeSet<&str> = REGISTRY.iter().map(|s| s.id).collect();
    let text = experiments_md();
    let mut tagged_rows = 0;
    for line in text.lines() {
        let l = line.trim();
        // Only table rows; headers carry no digits, data rows all do.
        if !l.starts_with('|') || is_separator(l) || !l.chars().any(|c| c.is_ascii_digit()) {
            continue;
        }
        let tags = claim_tags(l);
        assert!(
            !tags.is_empty(),
            "EXPERIMENTS.md table row states a number but carries no claim tag:\n  {l}"
        );
        for tag in tags {
            assert!(
                known.contains(tag),
                "EXPERIMENTS.md row cites unknown claim {tag:?}:\n  {l}"
            );
        }
        tagged_rows += 1;
    }
    // Guards against the extractor silently matching nothing.
    assert!(
        tagged_rows >= 30,
        "only {tagged_rows} tagged numeric rows found; did the table format change?"
    );
}

/// Serialize -> parse -> serialize must be the identity for every schema
/// (the serializer is canonical, so string equality is the strongest
/// round-trip check available without structural Eq on floats).
fn assert_round_trips(doc: Json, want_schema: &str) {
    let s = doc.to_string();
    let parsed = Json::parse(&s).expect("emitted JSON must parse");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(want_schema)
    );
    assert_eq!(parsed.to_string(), s, "round-trip changed {want_schema}");
}

#[test]
fn cheap_harness_schemas_round_trip() {
    assert_round_trips(figs237::run(Tier::Quick).to_json(), "nox-bench/figs237/v1");
    assert_round_trips(table1::run(Tier::Quick).to_json(), "nox-bench/table1/v1");
    assert_round_trips(table2::run(Tier::Quick).to_json(), "nox-bench/table2/v1");
    assert_round_trips(fig13::run(Tier::Quick).to_json(), "nox-bench/fig13_area/v1");
}

#[test]
fn timing_and_area_claims_hold_at_every_tier() {
    // These two harnesses are tier-independent and anchor four
    // quantitative claims; pin them directly so a timing-model edit
    // fails here before the full claims run.
    for tier in [Tier::Full, Tier::Quick, Tier::Smoke] {
        assert!(figs237::run(tier).all_pass(), "golden traces diverged");
        assert!(table2::run(tier).all_match(), "Table 2 clocks diverged");
    }
    let area = fig13::run(Tier::Quick);
    assert!(area.matches_paper(), "area model diverged from the paper");
}
