//! The synthetic-traffic study shared by Figures 8 and 9.
//!
//! One study sweeps all four router architectures over an injection-rate
//! grid for the paper's four traffic scenarios (uniform, transpose,
//! bit-complement — Poisson — and self-similar Pareto ON/OFF uniform,
//! §5.1). Figure 8 renders the latency view and Figure 9 the ED² view of
//! the *same* study, and the claims registry evaluates both figures'
//! claims from a single study run.

use crate::harness::Tier;
use crate::json::Json;
use crate::sweep::{crossover_mbps, measure_point, ArchSeries, SweepConfig};
use nox_exec::Executor;
use nox_sim::config::Arch;
use nox_sim::sim::RunSpec;
use nox_traffic::synthetic::Process;
use nox_traffic::Pattern;

/// Latency blow-up factor over zero-load that marks saturation
/// (matches the historical fig8 harness).
pub const SATURATION_FACTOR: f64 = 15.0;

/// One traffic scenario of the study.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable key used in claim IDs and JSON (`uniform`, `transpose`,
    /// `bit_complement`, `self_similar`).
    pub key: &'static str,
    /// The figure's panel label, e.g. `a) uniform random`.
    pub label: &'static str,
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Arrival process.
    pub process: Process,
    /// One series per architecture, in `Arch::ALL` order.
    pub series: Vec<ArchSeries>,
}

/// The full four-scenario synthetic study.
#[derive(Clone, Debug)]
pub struct SyntheticStudy {
    /// Tier the study ran at.
    pub tier: Tier,
    /// The swept offered loads, MB/s per node.
    pub rates: Vec<f64>,
    /// The four scenarios, in the paper's panel order.
    pub scenarios: Vec<Scenario>,
}

/// The scenario definitions (panel order of Figures 8 and 9).
pub fn scenario_defs() -> [(&'static str, &'static str, Pattern, Process); 4] {
    [
        (
            "uniform",
            "a) uniform random",
            Pattern::UniformRandom,
            Process::Poisson,
        ),
        (
            "transpose",
            "b) transpose",
            Pattern::Transpose,
            Process::Poisson,
        ),
        (
            "bit_complement",
            "c) bit-complement",
            Pattern::BitComplement,
            Process::Poisson,
        ),
        (
            "self_similar",
            "d) self-similar (Pareto on/off)",
            Pattern::UniformRandom,
            Process::ParetoOnOff,
        ),
    ]
}

/// The injection-rate grid for a tier.
pub fn rates(tier: Tier) -> Vec<f64> {
    let step = match tier {
        Tier::Full => 250.0,
        Tier::Quick | Tier::Smoke => 500.0,
    };
    (1..)
        .map(|i| i as f64 * step)
        .take_while(|&r| r <= 3_500.0)
        .collect()
}

/// The sweep configuration (trace duration + measurement phases) for a
/// tier. Smoke shortens the windows so a full study stays CI-friendly;
/// the grid itself matches `Quick` so saturation estimates share the
/// same resolution.
pub fn sweep_config(tier: Tier, rates: Vec<f64>) -> SweepConfig {
    let base = SweepConfig::uniform(rates);
    match tier {
        Tier::Full | Tier::Quick => base,
        Tier::Smoke => SweepConfig {
            duration_ns: 12_000.0,
            run: RunSpec {
                warmup_ns: 1_000.0,
                measure_ns: 3_000.0,
                drain_ns: 12_000.0,
            },
            ..base
        },
    }
}

/// Runs the full four-scenario study at `tier`, serially.
pub fn study(tier: Tier) -> SyntheticStudy {
    study_with(tier, &Executor::sequential())
}

/// Runs the full four-scenario study at `tier`, fanning every
/// (scenario, architecture, rate) operating point out over `exec`.
///
/// Each point is measured by [`measure_point`] from nothing but its own
/// configuration, and the ordered reduction reassembles the panel /
/// series / point nesting in definition order — so the study is
/// bit-identical to the serial [`study`] at any thread count.
pub fn study_with(tier: Tier, exec: &Executor) -> SyntheticStudy {
    let rates = rates(tier);
    let defs = scenario_defs();
    let cfgs: Vec<SweepConfig> = defs
        .iter()
        .map(|&(_, _, pattern, process)| SweepConfig {
            pattern,
            process,
            ..sweep_config(tier, rates.clone())
        })
        .collect();
    let mut jobs: Vec<(usize, Arch, f64)> = Vec::new();
    for si in 0..defs.len() {
        for &arch in Arch::ALL.iter() {
            for &rate in &rates {
                jobs.push((si, arch, rate));
            }
        }
    }
    let points = exec.map_stage("synthetic.sweeps", jobs, |_, (si, arch, rate)| {
        measure_point(arch, &cfgs[si], rate)
    });

    let mut it = points.into_iter();
    let scenarios = defs
        .into_iter()
        .map(|(key, label, pattern, process)| Scenario {
            key,
            label,
            pattern,
            process,
            series: Arch::ALL
                .iter()
                .map(|&arch| ArchSeries {
                    arch,
                    pattern,
                    points: (0..rates.len())
                        .map(|_| it.next().expect("one result per submitted job"))
                        .collect(),
                })
                .collect(),
        })
        .collect();
    SyntheticStudy {
        tier,
        rates,
        scenarios,
    }
}

impl Scenario {
    /// The series of one architecture.
    pub fn series_of(&self, arch: Arch) -> &ArchSeries {
        &self.series[Arch::ALL
            .iter()
            .position(|&a| a == arch)
            .expect("known arch")]
    }

    /// Saturation throughput of one architecture (MB/s/node).
    pub fn saturation(&self, arch: Arch) -> f64 {
        self.series_of(arch).saturation_mbps(SATURATION_FACTOR)
    }

    /// NoX saturation gain over the best of the other three, as a
    /// fraction (+0.09 = NoX saturates 9% higher).
    pub fn nox_saturation_gain(&self) -> f64 {
        let best_other = [Arch::NonSpec, Arch::SpecFast, Arch::SpecAccurate]
            .into_iter()
            .map(|a| self.saturation(a))
            .fold(0.0, f64::max);
        self.saturation(Arch::Nox) / best_other - 1.0
    }

    /// The lowest rate from which `a`'s latency stays at or below `b`'s.
    pub fn crossover(&self, a: Arch, b: Arch) -> Option<f64> {
        crossover_mbps(self.series_of(a), self.series_of(b))
    }

    /// The architecture with the strictly lowest latency at the lowest
    /// swept rate, or `None` on a tie.
    pub fn best_at_lowest_rate(&self) -> Option<Arch> {
        let lats: Vec<f64> = self
            .series
            .iter()
            .map(|s| s.points.first().map(|p| p.latency_ns).unwrap_or(f64::MAX))
            .collect();
        let (i, &best) = lats.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))?;
        let unique = lats.iter().enumerate().all(|(j, &l)| j == i || l > best);
        unique.then(|| Arch::ALL[i])
    }

    /// The largest swept rate up to which `arch` has the strictly lowest
    /// latency at every drained point (the "best at low load up to X
    /// MB/s/node" prose of §5.1), or `None` if it never leads.
    pub fn best_region_edge(&self, arch: Arch) -> Option<f64> {
        let mut edge = None;
        for (i, p) in self.series_of(arch).points.iter().enumerate() {
            if !p.drained {
                break;
            }
            let leads = self.series.iter().zip(Arch::ALL).all(|(s, a)| {
                a == arch || s.points[i].latency_ns > p.latency_ns || !s.points[i].drained
            });
            if leads {
                edge = Some(p.rate_mbps);
            } else {
                break;
            }
        }
        edge
    }

    /// Index of the last rate at which *all* architectures still drained
    /// (the fair ED² comparison point of Figure 9).
    pub fn last_common_drained(&self) -> Option<usize> {
        (0..self.series[0].points.len())
            .rev()
            .find(|&i| self.series.iter().all(|s| s.points[i].drained))
    }

    /// ED² of `arch` relative to NoX at the last common drained rate, as
    /// a fraction (+2.69 = 269% worse than NoX).
    pub fn ed2_vs_nox(&self, arch: Arch) -> Option<f64> {
        let i = self.last_common_drained()?;
        let nox = self.series_of(Arch::Nox).points[i].ed2;
        Some(self.series_of(arch).points[i].ed2 / nox - 1.0)
    }

    /// Mean latency of `arch` relative to NoX at the last common drained
    /// rate, as a fraction.
    pub fn latency_vs_nox(&self, arch: Arch) -> Option<f64> {
        let i = self.last_common_drained()?;
        let nox = self.series_of(Arch::Nox).points[i].latency_ns;
        Some(self.series_of(arch).points[i].latency_ns / nox - 1.0)
    }
}

impl SyntheticStudy {
    /// The scenario with the given key.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown (the study always carries all four).
    pub fn scenario(&self, key: &str) -> &Scenario {
        self.scenarios
            .iter()
            .find(|s| s.key == key)
            .unwrap_or_else(|| panic!("unknown scenario {key:?}"))
    }

    /// Serializes the study itself (shared by the fig8/fig9 documents).
    pub fn scenarios_json(&self, metric: Metric) -> Json {
        Json::Arr(
            self.scenarios
                .iter()
                .map(|sc| {
                    let series = sc
                        .series
                        .iter()
                        .map(|s| {
                            let points = s
                                .points
                                .iter()
                                .map(|p| {
                                    let mut o = Json::obj()
                                        .field("rate_mbps", p.rate_mbps)
                                        .field("drained", p.drained);
                                    o = match metric {
                                        Metric::LatencyNs => o
                                            .field("latency_ns", p.latency_ns)
                                            .field("accepted_mbps", p.accepted_mbps),
                                        Metric::Ed2 => o.field("ed2_pj_ns2", p.ed2),
                                    };
                                    o
                                })
                                .collect::<Vec<_>>();
                            Json::obj()
                                .field("arch", s.arch.name())
                                .field("saturation_mbps", s.saturation_mbps(SATURATION_FACTOR))
                                .field("points", Json::Arr(points))
                        })
                        .collect::<Vec<_>>();
                    Json::obj()
                        .field("key", sc.key)
                        .field("label", sc.label)
                        .field("nox_saturation_gain", sc.nox_saturation_gain())
                        .field(
                            "nox_overtakes_spec_accurate_mbps",
                            sc.crossover(Arch::Nox, Arch::SpecAccurate),
                        )
                        .field("series", Json::Arr(series))
                })
                .collect(),
        )
    }
}

/// Which measured quantity a figure view serializes per point.
#[derive(Clone, Copy, Debug)]
pub enum Metric {
    /// Mean packet latency (Figure 8).
    LatencyNs,
    /// Energy-delay² (Figure 9).
    Ed2,
}
