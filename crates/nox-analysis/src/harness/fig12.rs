//! Figure 12 — total network dynamic power for 2 GB/s/node single-flit
//! uniform random traffic — split by component. Spec-Fast is omitted
//! exactly as in the paper ("not shown due to its low saturation
//! bandwidth": 2 GB/s/node is at/beyond its saturation point).

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_power::energy::EnergyModel;
use nox_power::EnergyBreakdown;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run as sim_run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig12/v1";

/// The offered load of the study, MB/s per node (2 GB/s/node).
pub const RATE_MBPS: f64 = 2_000.0;

/// One architecture's power breakdown at the study's operating point.
#[derive(Clone, Debug)]
pub struct PowerRow {
    /// Router architecture.
    pub arch: Arch,
    /// Event-energy breakdown over the measurement window.
    pub breakdown: EnergyBreakdown,
    /// Measurement window, nanoseconds.
    pub window_ns: f64,
}

/// The Figure 12 result.
#[derive(Clone, Debug)]
pub struct PowerResult {
    /// Tier the study ran at.
    pub tier: Tier,
    /// Non-Speculative, Spec-Accurate, and NoX rows (paper order).
    pub rows: Vec<PowerRow>,
}

/// Runs the power study at `tier`.
pub fn run(tier: Tier) -> PowerResult {
    let mesh = Mesh::new(8, 8);
    let (duration_ns, spec) = match tier {
        Tier::Full | Tier::Quick => (
            40_000.0,
            RunSpec {
                warmup_ns: 1_500.0,
                measure_ns: 8_000.0,
                drain_ns: 30_000.0,
            },
        ),
        Tier::Smoke => (
            15_000.0,
            RunSpec {
                warmup_ns: 1_000.0,
                measure_ns: 4_000.0,
                drain_ns: 15_000.0,
            },
        ),
    };
    let trace = generate(mesh, &SyntheticConfig::uniform(RATE_MBPS, duration_ns));
    let rows = [Arch::NonSpec, Arch::SpecAccurate, Arch::Nox]
        .into_iter()
        .map(|arch| {
            let r = sim_run(NetConfig::paper(arch), &trace, &spec);
            PowerRow {
                arch,
                breakdown: EnergyModel::for_arch(arch).breakdown(&r.window_counters),
                window_ns: r.window_ns,
            }
        })
        .collect();
    PowerResult { tier, rows }
}

impl PowerResult {
    /// The breakdown of one architecture.
    pub fn row(&self, arch: Arch) -> &PowerRow {
        self.rows
            .iter()
            .find(|r| r.arch == arch)
            .unwrap_or_else(|| panic!("{arch} not in the Figure 12 study"))
    }

    /// NoX's link share of total power (the paper's ~74%).
    pub fn nox_link_share(&self) -> f64 {
        self.row(Arch::Nox).breakdown.link_share()
    }

    /// Spec-Accurate versus NoX for one component, as a fraction.
    pub fn acc_vs_nox(&self, component: fn(&EnergyBreakdown) -> f64) -> f64 {
        component(&self.row(Arch::SpecAccurate).breakdown)
            / component(&self.row(Arch::Nox).breakdown)
            - 1.0
    }

    /// The human-readable table plus the §5.3 checks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = Table::new(
            format!(
                "Figure 12: network dynamic power (mW) @ {:.0} MB/s/node uniform random",
                RATE_MBPS
            ),
            &[
                "architecture",
                "link",
                "buffer",
                "switch",
                "arb",
                "decode",
                "total",
                "link %",
            ],
        );
        for r in &self.rows {
            let (b, w) = (&r.breakdown, r.window_ns);
            t.row([
                r.arch.name().to_string(),
                format!("{:.1}", b.link_pj / w),
                format!("{:.1}", b.buffer_pj / w),
                format!("{:.1}", b.xbar_pj / w),
                format!("{:.1}", b.arb_pj / w),
                format!("{:.1}", b.decode_pj / w),
                format!("{:.1}", b.power_mw(w)),
                format!("{:.1}", b.link_share() * 100.0),
            ]);
        }
        let _ = writeln!(out, "{t}");

        let nox = &self.row(Arch::Nox).breakdown;
        let nonspec = &self.row(Arch::NonSpec).breakdown;
        out.push_str("Checks against §5.3:\n");
        let _ = writeln!(
            out,
            "  link share of total power: {:.1}% (paper: ~74%)",
            self.nox_link_share() * 100.0
        );
        let _ = writeln!(
            out,
            "  Spec-Accurate vs NoX link energy:   {:+.1}%  (paper: +4.6%)",
            self.acc_vs_nox(|b| b.link_pj) * 100.0
        );
        let _ = writeln!(
            out,
            "  Spec-Accurate vs NoX switch energy: {:+.1}%  (paper: -2.4%)",
            self.acc_vs_nox(|b| b.xbar_pj) * 100.0
        );
        let _ = writeln!(
            out,
            "  Spec-Accurate vs NoX total power:   {:+.1}%  (paper: +2.5%)",
            self.acc_vs_nox(|b| b.total_pj()) * 100.0
        );
        let _ = writeln!(
            out,
            "  non-speculative vs NoX total power: {:+.1}%  (paper: lowest of all)",
            (nonspec.total_pj() / nox.total_pj() - 1.0) * 100.0
        );
        let _ = writeln!(
            out,
            "  NoX decode share of total:          {:.2}%  (paper: minimal)",
            nox.decode_pj / nox.total_pj() * 100.0
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let (b, w) = (&r.breakdown, r.window_ns);
                Json::obj()
                    .field("arch", r.arch.name())
                    .field("link_mw", b.link_pj / w)
                    .field("buffer_mw", b.buffer_pj / w)
                    .field("switch_mw", b.xbar_pj / w)
                    .field("arb_mw", b.arb_pj / w)
                    .field("decode_mw", b.decode_pj / w)
                    .field("total_mw", b.power_mw(w))
                    .field("link_share", b.link_share())
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.tier.name())
            .field("rate_mbps_per_node", RATE_MBPS)
            .field("architectures", Json::Arr(rows))
            .field("nox_link_share", self.nox_link_share())
            .field("acc_vs_nox_link", self.acc_vs_nox(|b| b.link_pj))
            .field("acc_vs_nox_switch", self.acc_vs_nox(|b| b.xbar_pj))
            .field("acc_vs_nox_total", self.acc_vs_nox(|b| b.total_pj()))
    }
}
