//! Figures 2, 3 and 7 — the paper's golden cycle-by-cycle timing
//! examples — replayed against the real control state machines. Each
//! trace records its expected and actual event sequences, so any
//! divergence shows up as a failed check instead of a panic; this is the
//! executable specification of §2.3 and §3.2.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use nox_core::{
    Coded, DecodeAction, DecodePlan, Decoder, NonSpecCtl, OutputCtl, PortId, PortSet, RequestSet,
    SpecCtl, SpecMode,
};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/figs237/v1";

/// One golden trace check: the figure it reproduces, its expected and
/// actual event strings, and whether they matched.
#[derive(Clone, Debug)]
pub struct TraceCheck {
    /// Stable key (`fig2`, `fig3`, `fig7a`, `fig7b`, `fig7c`).
    pub key: &'static str,
    /// The printed one-line description.
    pub label: &'static str,
    /// The expected event sequence, rendered canonically.
    pub expected: String,
    /// The measured event sequence, same rendering.
    pub actual: String,
}

impl TraceCheck {
    /// `true` when the measured trace matched the golden one.
    pub fn pass(&self) -> bool {
        self.expected == self.actual
    }
}

/// The Figures 2/3/7 result: all five golden trace checks.
#[derive(Clone, Debug)]
pub struct TimingResult {
    /// The five checks, in figure order.
    pub checks: Vec<TraceCheck>,
}

/// The shared stimulus: requests present per cycle (A=p0 @0; B=p1,C=p2
/// @2, persisting until serviced).
struct Stim {
    queues: [Vec<(u64, char)>; 3],
}

impl Stim {
    fn new() -> Self {
        Stim {
            queues: [vec![(0, 'A')], vec![(2, 'B')], vec![(2, 'C')]],
        }
    }
    fn req(&self, cycle: u64) -> RequestSet {
        let mut r = PortSet::EMPTY;
        for (i, q) in self.queues.iter().enumerate() {
            if q.first().is_some_and(|&(c, _)| c <= cycle) {
                r.insert(PortId(i as u8));
            }
        }
        RequestSet::single_flit(r)
    }
    fn pop(&mut self, p: PortId) -> char {
        self.queues[p.index()].remove(0).1
    }
}

fn events(seq: &[(u64, String)]) -> String {
    seq.iter()
        .map(|(c, l)| format!("{l}@{c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Replays all five golden traces. The tier is accepted for interface
/// uniformity; the traces are a few cycles long and always run in full.
pub fn run(_tier: Tier) -> TimingResult {
    let mut checks = Vec::new();

    // ------------------------------------------------ Figure 2 (NoX send)
    let mut out = OutputCtl::new(3);
    let mut stim = Stim::new();
    let mut sent: Vec<(u64, String)> = Vec::new();
    let mut link: Vec<Coded<u64>> = Vec::new();
    for cycle in 0..5 {
        let d = out.tick(stim.req(cycle));
        if !d.drive.is_empty() && !d.aborted {
            let word: Coded<u64> = d
                .drive
                .iter()
                .map(|i| {
                    let name = stim.queues[i.index()][0].1;
                    Coded::plain(name as u64, name as u64)
                })
                .collect();
            let label: String = word
                .keys()
                .iter()
                .map(|&k| char::from_u32(k as u32).expect("ascii key"))
                .collect();
            sent.push((cycle, label));
            link.push(word);
        }
        for i in d.serviced.iter() {
            stim.pop(i);
        }
    }
    checks.push(TraceCheck {
        key: "fig2",
        label: "Figure 2  (NoX transmit):  A@0, (B^C)@2 encoded, C@3",
        expected: events(&[(0, "A".into()), (2, "BC".into()), (3, "C".into())]),
        actual: events(&sent),
    });

    // --------------------------------------------- Figure 3 (NoX receive)
    let mut fifo: std::collections::VecDeque<Coded<u64>> = link.into();
    let mut dec = Decoder::new();
    let mut presented = Vec::new();
    for _ in 0..6 {
        match dec.plan(fifo.front()) {
            DecodePlan::Idle => break,
            DecodePlan::Latch => {
                let w = fifo.pop_front().expect("latch plans only on a word");
                dec.latch(w);
                presented.push("latch".to_string());
            }
            DecodePlan::Present { word, action } => {
                presented.push(
                    char::from_u32(word.sole_key().expect("decoded word has one key") as u32)
                        .expect("ascii key")
                        .to_string(),
                );
                let popped = match action {
                    DecodeAction::Pass => {
                        fifo.pop_front();
                        None
                    }
                    DecodeAction::DecodeKeep => None,
                    DecodeAction::DecodeShift => {
                        Some(fifo.pop_front().expect("shift consumes a word"))
                    }
                };
                dec.commit(action, popped);
            }
        }
    }
    checks.push(TraceCheck {
        key: "fig3",
        label: "Figure 3  (NoX receive):   A, latch(B^C), B, C",
        expected: "A latch B C".to_string(),
        actual: presented.join(" "),
    });

    // --------------------------------------------- Figure 7a (sequential)
    let mut out = NonSpecCtl::new(3);
    let mut stim = Stim::new();
    let mut sent: Vec<(u64, String)> = Vec::new();
    for cycle in 0..5 {
        let d = out.tick(stim.req(cycle));
        if let Some(i) = d.drive {
            sent.push((cycle, stim.pop(i).to_string()));
        }
    }
    checks.push(TraceCheck {
        key: "fig7a",
        label: "Figure 7a (sequential):    A@0, B@2, C@3",
        expected: events(&[(0, "A".into()), (2, "B".into()), (3, "C".into())]),
        actual: events(&sent),
    });

    // ------------------------------------------------------- Figure 7b/7c
    for (key, mode, expect, label) in [
        (
            "fig7b",
            SpecMode::Fast,
            vec![(0, 'A'), (3, 'B'), (5, 'C')],
            "Figure 7b (Spec-Fast):     A@0, XX@2, B@3, --@4, C@5",
        ),
        (
            "fig7c",
            SpecMode::Accurate,
            vec![(0, 'A'), (3, 'B'), (4, 'C')],
            "Figure 7c (Spec-Accurate): A@0, XX@2, B@3, C@4",
        ),
    ] {
        let mut out = SpecCtl::new(3, mode);
        let mut stim = Stim::new();
        let mut sent: Vec<(u64, String)> = Vec::new();
        let mut collided_cycles = Vec::new();
        for cycle in 0..7 {
            let d = out.tick(stim.req(cycle), PortSet::EMPTY);
            if !d.collided.is_empty() {
                collided_cycles.push(cycle);
            }
            if let Some(i) = d.drive {
                sent.push((cycle, stim.pop(i).to_string()));
            }
        }
        let expected: Vec<(u64, String)> = expect
            .into_iter()
            .map(|(c, l)| (c, l.to_string()))
            .collect();
        checks.push(TraceCheck {
            key,
            label,
            expected: format!("{} collide@{:?}", events(&expected), vec![2u64]),
            actual: format!("{} collide@{:?}", events(&sent), collided_cycles),
        });
    }

    TimingResult { checks }
}

impl TimingResult {
    /// `true` when every golden trace reproduced cycle for cycle.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(TraceCheck::pass)
    }

    /// The verified/diverged report the harness has always printed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            if c.pass() {
                let _ = writeln!(out, "{}  ... verified", c.label);
            } else {
                let _ = writeln!(
                    out,
                    "{}  ... DIVERGED\n    expected: {}\n    actual:   {}",
                    c.label, c.expected, c.actual
                );
            }
        }
        if self.all_pass() {
            out.push_str("\nAll golden timing traces of §2.3 and §3.2 reproduced exactly.\n");
        }
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let traces = self
            .checks
            .iter()
            .map(|c| {
                Json::obj()
                    .field("key", c.key)
                    .field("expected", c.expected.clone())
                    .field("actual", c.actual.clone())
                    .field("pass", c.pass())
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA)
            .field("all_pass", self.all_pass())
            .field("traces", Json::Arr(traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_traces_reproduce() {
        let r = run(Tier::Quick);
        assert_eq!(r.checks.len(), 5);
        for c in &r.checks {
            assert!(
                c.pass(),
                "{} diverged: {} != {}",
                c.key,
                c.actual,
                c.expected
            );
        }
    }
}
