//! The fault-injection campaign study: NoX's XOR-chain fragility and its
//! recovery under the CRC + retransmission protection stack.
//!
//! One study sweeps a bit-flip-rate grid twice over all four
//! architectures on the same deterministic traffic:
//!
//! * **unprotected** — no CRC, no retransmission. Every flipped payload
//!   that reaches a core is a *silent corruption*. The NoX chain re-drives
//!   each colliding flit across multiple link words (`A^B^C`, then `B^C`,
//!   then `C`), so the same per-word flip rate strikes NoX traffic more
//!   often than a plain wormhole router's — the fragility this repo's
//!   DESIGN.md §11 analyses.
//! * **protected** — CRC-8 sidebands checked at ejection plus end-to-end
//!   retransmission with exponential backoff. Every architecture must
//!   recover to 100% delivery with zero silent corruptions.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_exec::Executor;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::fault::{FaultConfig, FaultStats};
use nox_sim::network::Network;
use nox_sim::topology::NodeId;
use nox_sim::trace::{PacketEvent, Trace};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/faults/v1";

/// Packet length (flits) used by every campaign. Single-flit packets are
/// the ones that actually exercise the XOR chain: multiflit wormholes
/// reserve their output ports ahead of the body, so their heads never
/// meet in a collision the NoX output control would encode.
pub const PACKET_LEN: u16 = 1;

/// Settlement bound for a single campaign, cycles. Generous: a campaign
/// that fails to settle is reported (`settled: false`), not panicked on.
const MAX_CYCLES: u64 = 400_000;

/// One (architecture, flip-rate) campaign outcome.
#[derive(Clone, Debug)]
pub struct FaultPoint {
    /// Per-link-word bit-flip probability of this campaign.
    pub rate: f64,
    /// Whether the network drained and every logical packet resolved
    /// within the cycle bound.
    pub settled: bool,
    /// Cycles the campaign ran.
    pub cycles: u64,
    /// Logical packets offered.
    pub offered_packets: u64,
    /// Logical packets delivered intact at least once.
    pub delivered_packets: u64,
    /// The full fault-event counter block.
    pub stats: FaultStats,
}

impl FaultPoint {
    /// Delivered fraction of offered logical packets.
    pub fn delivered_frac(&self) -> f64 {
        if self.offered_packets == 0 {
            return 1.0;
        }
        self.delivered_packets as f64 / self.offered_packets as f64
    }

    /// Silent corruptions per thousand offered flits.
    pub fn silent_per_kflit(&self) -> f64 {
        let flits = self.offered_packets * u64::from(PACKET_LEN);
        if flits == 0 {
            return 0.0;
        }
        self.stats.silent_corruptions as f64 * 1000.0 / flits as f64
    }
}

/// One architecture's sweep over the flip-rate grid.
#[derive(Clone, Debug)]
pub struct ArchFaultSeries {
    /// Router architecture.
    pub arch: Arch,
    /// One point per swept rate, grid order.
    pub points: Vec<FaultPoint>,
}

/// The full two-mode fault study.
#[derive(Clone, Debug)]
pub struct FaultStudy {
    /// Tier the study ran at.
    pub tier: Tier,
    /// The swept per-link-word bit-flip rates.
    pub rates: Vec<f64>,
    /// Traffic rounds per campaign (16 packets per round).
    pub rounds: u32,
    /// Unprotected series (no CRC, no retransmission), `Arch::ALL` order.
    pub unprotected: Vec<ArchFaultSeries>,
    /// Protected series (CRC + retransmission), `Arch::ALL` order.
    pub protected: Vec<ArchFaultSeries>,
}

/// The flip-rate grid for a tier.
pub fn rates(tier: Tier) -> Vec<f64> {
    match tier {
        Tier::Full => vec![0.002, 0.005, 0.01, 0.02, 0.05],
        Tier::Quick => vec![0.005, 0.01, 0.02],
        Tier::Smoke => vec![0.01, 0.02],
    }
}

/// Traffic rounds for a tier (each round injects six collision waves).
pub fn rounds(tier: Tier) -> u32 {
    match tier {
        Tier::Full => 80,
        Tier::Quick => 40,
        Tier::Smoke => 20,
    }
}

/// Deterministic collision-rich traffic on the 4x4 mesh.
///
/// Each round fires six waves, 4 ns apart. The first four aim equidistant
/// one-hop sources at a shared destination in the same instant, so their
/// flits meet at the destination router in the same cycle and collide on
/// its ejection port — under NoX every such wave forms an XOR chain
/// (`A^B^C`, `B^C`, `C`) that the sink's decode register unwinds, while
/// the baselines serialize the same conflict through ordinary
/// arbitration. The last two waves cross two-hop paths so the collision
/// (and its encoded words) happens at an *intermediate* router and the
/// chain travels an inter-router link. Every source sends exactly one
/// packet per wave — simultaneity is what makes the chains form. The
/// same trace feeds every campaign, making corruption counts directly
/// comparable across architectures and protection modes.
pub fn campaign_trace(rounds: u32) -> Trace {
    // (destination, equidistant sources): three-way and two-way merges
    // at the destination's ejection port...
    const MERGES: [(u16, &[u16]); 4] = [
        (5, &[4, 1, 9]),
        (10, &[9, 6, 14]),
        (7, &[6, 3, 11]),
        (14, &[13, 10]),
    ];
    // ...and crossing pairs that collide at an intermediate router
    // (0 -> 5 and 2 -> 5 both turn south at router 1; 15 -> 10 and
    // 13 -> 10 both turn north at router 14).
    const CROSSINGS: [(u16, &[u16]); 2] = [(5, &[0, 2]), (10, &[15, 13])];
    let mut t = Trace::new();
    for i in 0..rounds {
        let round_at = f64::from(i) * 24.0;
        for (w, (d, srcs)) in MERGES.iter().chain(&CROSSINGS).enumerate() {
            for &s in *srcs {
                t.push(PacketEvent {
                    time_ns: round_at + w as f64 * 4.0,
                    src: NodeId(s),
                    dest: NodeId(*d),
                    len: PACKET_LEN,
                });
            }
        }
    }
    t
}

fn campaign(arch: Arch, trace: &Trace, cfg: FaultConfig) -> FaultPoint {
    let rate = cfg.bit_flip_rate;
    let mut net = Network::new(NetConfig::small(arch), trace, (0.0, f64::MAX));
    net.enable_faults(cfg);
    let settled = net.run_to_settlement(MAX_CYCLES);
    let cycles = net.cycle();
    let f = net.fault_state().expect("campaign was attached");
    FaultPoint {
        rate,
        settled,
        cycles,
        offered_packets: f.total_logicals(),
        delivered_packets: f.delivered_logicals(),
        stats: f.stats().clone(),
    }
}

/// Runs the full study at `tier`, serially. Seeds are fixed per grid
/// index and shared by every architecture at a given rate, so the
/// per-cycle fault draws are as comparable as the shared trace is.
pub fn run(tier: Tier) -> FaultStudy {
    run_with(tier, &Executor::sequential())
}

/// Runs the full study at `tier`, fanning every
/// (protection mode, architecture, rate) campaign out over `exec`.
///
/// Each campaign owns its fault RNG (seeded from the grid index) and
/// shares only the immutable trace, and the ordered reduction rebuilds
/// the two series sets in mode → `Arch::ALL` → grid order, so the study
/// is bit-identical to the serial [`run`] at any thread count.
pub fn run_with(tier: Tier, exec: &Executor) -> FaultStudy {
    let rates = rates(tier);
    let rounds = rounds(tier);
    let trace = campaign_trace(rounds);
    let mut jobs: Vec<(bool, Arch, usize, f64)> = Vec::new();
    for protected in [false, true] {
        for &arch in Arch::ALL.iter() {
            for (i, &r) in rates.iter().enumerate() {
                jobs.push((protected, arch, i, r));
            }
        }
    }
    let points = exec.map_stage("faults.campaigns", jobs, |_, (protected, arch, i, r)| {
        let seed = 0xFA01 + i as u64;
        let cfg = if protected {
            FaultConfig::protected_bit_flips(seed, r)
        } else {
            FaultConfig::bit_flips(seed, r)
        };
        campaign(arch, &trace, cfg)
    });
    let mut it = points.into_iter();
    let mut series = || -> Vec<ArchFaultSeries> {
        Arch::ALL
            .iter()
            .map(|&arch| ArchFaultSeries {
                arch,
                points: (0..rates.len())
                    .map(|_| it.next().expect("one result per submitted job"))
                    .collect(),
            })
            .collect()
    };
    let unprotected = series();
    let protected = series();
    FaultStudy {
        tier,
        rates,
        rounds,
        unprotected,
        protected,
    }
}

impl FaultStudy {
    /// The unprotected series of one architecture.
    pub fn unprotected_of(&self, arch: Arch) -> &ArchFaultSeries {
        series_of(&self.unprotected, arch)
    }

    /// The protected series of one architecture.
    pub fn protected_of(&self, arch: Arch) -> &ArchFaultSeries {
        series_of(&self.protected, arch)
    }

    /// Total silent corruptions of one unprotected architecture across
    /// the whole grid.
    pub fn silent_total(&self, arch: Arch) -> u64 {
        self.unprotected_of(arch)
            .points
            .iter()
            .map(|p| p.stats.silent_corruptions)
            .sum()
    }

    /// Total injected bit flips of one unprotected architecture across
    /// the whole grid.
    pub fn injected_total(&self, arch: Arch) -> u64 {
        self.unprotected_of(arch)
            .points
            .iter()
            .map(|p| p.stats.injected_bit_flips)
            .sum()
    }

    /// Silent corruptions *per injected flip* of one unprotected
    /// architecture — the normalization that makes architectures with
    /// different cycle counts (and hence different absolute flip draws on
    /// the same per-word rate) directly comparable.
    pub fn silent_per_flip(&self, arch: Arch) -> f64 {
        self.silent_total(arch) as f64 / self.injected_total(arch) as f64
    }

    /// NoX's silent-corruption amplification over the non-speculative
    /// router: corrupted deliveries per injected flip, NoX / non-spec.
    /// Above 1.0 = the XOR chain fans a single link-word flip out into
    /// multiple corrupted deliveries (the mask lands both on the flit
    /// recovered *from* the struck word and on every chain-mate decoded
    /// *against* it), which no non-coding router can do.
    pub fn nox_silent_amplification(&self) -> f64 {
        self.silent_per_flip(Arch::Nox) / self.silent_per_flip(Arch::NonSpec)
    }

    /// `true` when the fragility claim's qualitative trend holds: NoX
    /// delivers strictly more silently-corrupted flits than flips were
    /// injected (chain fan-out), while the non-speculative router stays
    /// at (at most) one corrupted delivery per flip.
    pub fn nox_fragility_holds(&self) -> bool {
        self.silent_total(Arch::Nox) > self.injected_total(Arch::Nox)
            && self.silent_total(Arch::NonSpec) <= self.injected_total(Arch::NonSpec)
            && self.silent_per_flip(Arch::Nox) > self.silent_per_flip(Arch::NonSpec)
    }

    /// `true` when every protected campaign of `arch` settled with every
    /// logical packet delivered, none written off, and zero silent
    /// corruptions.
    pub fn full_recovery(&self, arch: Arch) -> bool {
        self.protected_of(arch).points.iter().all(|p| {
            p.settled
                && p.delivered_packets == p.offered_packets
                && p.stats.packets_failed == 0
                && p.stats.silent_corruptions == 0
        })
    }

    /// Worst-case recovery latency (cycles from a recovered packet's
    /// original creation to its successful ejection) over NoX's protected
    /// campaigns.
    pub fn nox_max_recovery_latency(&self) -> u64 {
        self.protected_of(Arch::Nox)
            .points
            .iter()
            .map(|p| p.stats.recovery_latency.max)
            .max()
            .unwrap_or(0)
    }

    /// Mean detection latency (injection to CRC/desync detection) over
    /// NoX's protected campaigns, cycles.
    pub fn nox_mean_detection_latency(&self) -> f64 {
        let (sum, count) =
            self.protected_of(Arch::Nox)
                .points
                .iter()
                .fold((0u64, 0u64), |(s, c), p| {
                    (
                        s + p.stats.detection_latency.sum,
                        c + p.stats.detection_latency.count,
                    )
                });
        if count == 0 {
            return 0.0;
        }
        sum as f64 / count as f64
    }

    /// The human-readable study tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let offered = self.unprotected[0].points[0].offered_packets;
        let _ = writeln!(
            out,
            "Fault campaigns on the 4x4 mesh: {} logical packets x {} flits, \
             per-link-word bit-flip rates {:?} ({} tier)\n",
            offered,
            PACKET_LEN,
            self.rates,
            self.tier.name()
        );

        let mut t = Table::new(
            "unprotected (no CRC, no retransmission): silent corruption",
            &[
                "arch",
                "flip rate",
                "injected",
                "silent",
                "per kflit",
                "delivered %",
            ],
        );
        for s in &self.unprotected {
            for p in &s.points {
                t.row([
                    s.arch.name().to_string(),
                    format!("{}", p.rate),
                    p.stats.injected_bit_flips.to_string(),
                    p.stats.silent_corruptions.to_string(),
                    format!("{:.2}", p.silent_per_kflit()),
                    format!("{:.1}", p.delivered_frac() * 100.0),
                ]);
            }
        }
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "corrupted deliveries per injected flip: NoX {:.3}, non-spec {:.3} \
             ({:.2}x amplification; chain fan-out holds: {})\n",
            self.silent_per_flip(Arch::Nox),
            self.silent_per_flip(Arch::NonSpec),
            self.nox_silent_amplification(),
            self.nox_fragility_holds()
        );

        let mut t = Table::new(
            "protected (CRC-8 sideband + end-to-end retransmission)",
            &[
                "arch",
                "flip rate",
                "detected",
                "silent",
                "retx",
                "recovered",
                "failed",
                "delivered %",
                "rec. lat (mean/max)",
            ],
        );
        for s in &self.protected {
            for p in &s.points {
                t.row([
                    s.arch.name().to_string(),
                    format!("{}", p.rate),
                    p.stats.detected_total().to_string(),
                    p.stats.silent_corruptions.to_string(),
                    p.stats.retransmissions.to_string(),
                    p.stats.packets_recovered.to_string(),
                    p.stats.packets_failed.to_string(),
                    format!("{:.1}", p.delivered_frac() * 100.0),
                    format!(
                        "{:.0}/{}",
                        p.stats.recovery_latency.mean(),
                        p.stats.recovery_latency.max
                    ),
                ]);
            }
        }
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "full recovery (100% delivery, zero silent, zero write-offs): {}",
            Arch::ALL
                .iter()
                .map(|&a| format!("{} {}", a.name(), self.full_recovery(a)))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "NoX detection latency {:.0} cycles mean; recovery latency max {} cycles",
            self.nox_mean_detection_latency(),
            self.nox_max_recovery_latency()
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let series = |set: &[ArchFaultSeries]| {
            Json::Arr(
                set.iter()
                    .map(|s| {
                        let points = s
                            .points
                            .iter()
                            .map(|p| {
                                Json::obj()
                                    .field("rate", p.rate)
                                    .field("settled", p.settled)
                                    .field("cycles", p.cycles)
                                    .field("offered_packets", p.offered_packets)
                                    .field("delivered_packets", p.delivered_packets)
                                    .field("delivered_frac", p.delivered_frac())
                                    .field("injected", p.stats.injected_total())
                                    .field("detected", p.stats.detected_total())
                                    .field("silent_corruptions", p.stats.silent_corruptions)
                                    .field("silent_per_kflit", p.silent_per_kflit())
                                    .field("chain_kills", p.stats.chain_kills)
                                    .field("retransmissions", p.stats.retransmissions)
                                    .field("packets_recovered", p.stats.packets_recovered)
                                    .field("packets_failed", p.stats.packets_failed)
                                    .field("watchdog_resets", p.stats.watchdog_resets)
                                    .field(
                                        "detection_latency_mean",
                                        p.stats.detection_latency.mean(),
                                    )
                                    .field("recovery_latency_mean", p.stats.recovery_latency.mean())
                                    .field("recovery_latency_max", p.stats.recovery_latency.max)
                            })
                            .collect::<Vec<_>>();
                        Json::obj()
                            .field("arch", s.arch.name())
                            .field("points", Json::Arr(points))
                    })
                    .collect(),
            )
        };
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.tier.name())
            .field(
                "rates",
                Json::Arr(self.rates.iter().map(|&r| r.into()).collect()),
            )
            .field("packet_len", u64::from(PACKET_LEN))
            .field(
                "offered_packets",
                self.unprotected[0].points[0].offered_packets,
            )
            .field("unprotected", series(&self.unprotected))
            .field("protected", series(&self.protected))
            .field(
                "summary",
                Json::obj()
                    .field("nox_silent_per_flip", self.silent_per_flip(Arch::Nox))
                    .field(
                        "nonspec_silent_per_flip",
                        self.silent_per_flip(Arch::NonSpec),
                    )
                    .field("nox_silent_amplification", self.nox_silent_amplification())
                    .field("nox_fragility_holds", self.nox_fragility_holds())
                    .field(
                        "full_recovery_all_archs",
                        Arch::ALL.iter().all(|&a| self.full_recovery(a)),
                    )
                    .field(
                        "nox_mean_detection_latency",
                        self.nox_mean_detection_latency(),
                    )
                    .field(
                        "nox_max_recovery_latency_cycles",
                        self.nox_max_recovery_latency(),
                    ),
            )
    }
}

fn series_of(set: &[ArchFaultSeries], arch: Arch) -> &ArchFaultSeries {
    set.iter().find(|s| s.arch == arch).expect("known arch")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_demonstrates_fragility_and_recovery() {
        let s = run(Tier::Smoke);
        assert!(
            s.nox_fragility_holds(),
            "fragility claim lost:\n{}",
            s.render()
        );
        for &arch in &Arch::ALL {
            assert!(
                s.full_recovery(arch),
                "{arch}: no full recovery:\n{}",
                s.render()
            );
        }
        assert!(s.nox_max_recovery_latency() > 0);
    }

    #[test]
    fn json_document_is_well_formed() {
        let s = run(Tier::Smoke);
        let doc = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let summary = doc.get("summary").unwrap();
        assert_eq!(
            summary
                .get("full_recovery_all_archs")
                .and_then(Json::as_bool),
            Some(true)
        );
    }
}
