//! Figure 11 — application energy-delay² — over the nine synthesized
//! CMP workloads, and the paper's headline summary: "On average the NoX
//! architecture outperforms the non-speculative, Spec-Fast, and
//! Spec-Accurate by 29.5%, 34.4%, and 2.7% respectively on an
//! energy-delay^2 basis."

use std::fmt::Write as _;

use crate::harness::appstudy::{self, AppStudy};
use crate::harness::{Tier, ARCH_COLUMNS};
use crate::json::Json;
use crate::Table;
use nox_sim::config::Arch;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig11/v1";

/// The paper's mean ED² improvements, paired with the competitor.
pub const PAPER_IMPROVEMENTS_PCT: [(Arch, f64); 3] = [
    (Arch::NonSpec, 29.5),
    (Arch::SpecFast, 34.4),
    (Arch::SpecAccurate, 2.7),
];

/// The Figure 11 result: the ED² view of the application study.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// The underlying workloads-by-architectures study.
    pub study: AppStudy,
}

/// Runs the study at `tier` and wraps it in the Figure 11 view.
pub fn run(tier: Tier) -> Fig11Result {
    Fig11Result {
        study: appstudy::study(tier),
    }
}

impl Fig11Result {
    /// Builds the view over an existing study (shared with Figure 10 and
    /// the claims registry).
    pub fn from_study(study: AppStudy) -> Fig11Result {
        Fig11Result { study }
    }

    /// The human-readable table plus the geometric-mean summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = Table::new(
            "Figure 11: application energy-delay^2 (pJ*ns^2)",
            &[
                "workload",
                ARCH_COLUMNS[0],
                ARCH_COLUMNS[1],
                ARCH_COLUMNS[2],
                ARCH_COLUMNS[3],
            ],
        );
        for row in &self.study.rows {
            t.row([
                row[0].workload.to_string(),
                format!("{:.3e}", row[0].ed2),
                format!("{:.3e}", row[1].ed2),
                format!("{:.3e}", row[2].ed2),
                format!("{:.3e}", row[3].ed2),
            ]);
        }
        let _ = writeln!(out, "{t}");
        out.push_str("Mean ED^2 improvement of NoX (geometric mean across workloads):\n");
        for (other, paper) in PAPER_IMPROVEMENTS_PCT {
            let _ = writeln!(
                out,
                "  vs {:<16} {:+.1}%   (paper: +{:.1}%)",
                other.name(),
                self.study.nox_ed2_improvement_pct(other),
                paper
            );
        }
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let workloads = self
            .study
            .rows
            .iter()
            .map(|row| {
                let per_arch = row
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("arch", r.arch.name())
                            .field("ed2_pj_ns2", r.ed2)
                            .field("energy_per_packet_pj", r.energy_per_packet_pj)
                            .field("drained", r.drained)
                    })
                    .collect::<Vec<_>>();
                Json::obj()
                    .field("workload", row[0].workload)
                    .field("results", Json::Arr(per_arch))
            })
            .collect::<Vec<_>>();
        let summary = Json::Arr(
            PAPER_IMPROVEMENTS_PCT
                .iter()
                .map(|&(other, paper)| {
                    Json::obj()
                        .field("vs", other.name())
                        .field(
                            "nox_improvement_pct",
                            self.study.nox_ed2_improvement_pct(other),
                        )
                        .field("paper_pct", paper)
                })
                .collect(),
        );
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.study.tier.name())
            .field("workloads", Json::Arr(workloads))
            .field("mean_improvement", summary)
    }
}
