//! Figure 9 — synthetic traffic energy-delay² versus injection
//! bandwidth — rendered from the same [`SyntheticStudy`] as Figure 8.
//! ED² is mean packet energy (pJ) times mean packet latency squared
//! (ns²); the paper notes the Figure 8 trends are amplified here because
//! the speculative routers also waste link energy on misspeculation.

use std::fmt::Write as _;

use crate::harness::synthetic::{self, Metric, SyntheticStudy};
use crate::harness::{Tier, ARCH_COLUMNS};
use crate::json::Json;
use crate::sweep::ArchSeries;
use crate::Table;
use nox_sim::config::Arch;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig9/v1";

/// The Figure 9 result: the ED² view of the synthetic study.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// The underlying four-scenario study.
    pub study: SyntheticStudy,
}

/// Runs the study at `tier` and wraps it in the Figure 9 view.
pub fn run(tier: Tier) -> Fig9Result {
    Fig9Result {
        study: synthetic::study(tier),
    }
}

impl Fig9Result {
    /// Builds the view over an existing study (shared with Figure 8 and
    /// the claims registry).
    pub fn from_study(study: SyntheticStudy) -> Fig9Result {
        Fig9Result { study }
    }

    /// The human-readable tables plus the fair-comparison-point summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for sc in &self.study.scenarios {
            let mut t = Table::new(
                format!(
                    "Figure 9{}: energy-delay^2 (pJ*ns^2) vs offered load (MB/s/node)",
                    sc.label
                ),
                &[
                    "MB/s/node",
                    ARCH_COLUMNS[0],
                    ARCH_COLUMNS[1],
                    ARCH_COLUMNS[2],
                    ARCH_COLUMNS[3],
                ],
            );
            for (i, &rate) in self.study.rates.iter().enumerate() {
                let cell = |s: &ArchSeries| {
                    let p = &s.points[i];
                    if p.drained {
                        format!("{:.3e}", p.ed2)
                    } else {
                        "sat".to_string()
                    }
                };
                t.row([
                    format!("{rate:.0}"),
                    cell(&sc.series[0]),
                    cell(&sc.series[1]),
                    cell(&sc.series[2]),
                    cell(&sc.series[3]),
                ]);
            }
            let _ = writeln!(out, "{t}");

            // The last rate at which everyone is still below saturation
            // gives a fair ED^2 comparison point.
            if let Some(i) = sc.last_common_drained() {
                let nox = sc.series_of(Arch::Nox).points[i].ed2;
                let _ = write!(
                    out,
                    "  at {:.0} MB/s/node, ED^2 vs NoX:",
                    self.study.rates[i]
                );
                for s in &sc.series[..3] {
                    let _ = write!(
                        out,
                        "  {} {:+.1}%",
                        s.arch.name(),
                        (s.points[i].ed2 / nox - 1.0) * 100.0
                    );
                }
                out.push_str("\n\n");
            }
        }
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.study.tier.name())
            .field("rates_mbps", self.study.rates.clone())
            .field("scenarios", self.study.scenarios_json(Metric::Ed2))
    }
}
