//! Tests the paper's §5.2 conjecture: "these latency results are
//! conservative due to our trace-based methodology and the self-throttling
//! nature of interconnection networks ... allowing network feedback would
//! result in higher contention favoring the NoX router."
//!
//! Runs the closed-loop CMP driver (bounded MSHRs, think times) on every
//! router architecture: each core can only issue a new miss after earlier
//! replies return, so a lower-latency network completes more misses per
//! nanosecond. Miss throughput becomes the end-to-end performance metric
//! the trace methodology cannot measure.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_traffic::closed_loop::{run_closed_loop, ClosedLoopConfig};
use nox_traffic::cmp::workload;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/feedback/v1";

/// One architecture's closed-loop measurement on one workload.
#[derive(Clone, Debug)]
pub struct FeedbackRow {
    /// Router architecture.
    pub arch: Arch,
    /// Mean miss latency, nanoseconds.
    pub miss_latency_ns: f64,
    /// Completed misses per nanosecond, all cores.
    pub miss_throughput_per_ns: f64,
}

/// One workload's closed-loop table.
#[derive(Clone, Debug)]
pub struct FeedbackWorkload {
    /// Workload name (`ocean`, `tpcc`).
    pub name: &'static str,
    /// One row per architecture, `Arch::ALL` order.
    pub rows: Vec<FeedbackRow>,
}

impl FeedbackWorkload {
    /// NoX's miss throughput.
    pub fn nox_throughput(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| r.arch == Arch::Nox)
            .expect("all archs present")
            .miss_throughput_per_ns
    }
}

/// The §5.2 feedback result.
#[derive(Clone, Debug)]
pub struct FeedbackResult {
    /// Tier the study ran at.
    pub tier: Tier,
    /// Driver configuration used.
    pub config: ClosedLoopConfig,
    /// The per-workload tables.
    pub workloads: Vec<FeedbackWorkload>,
}

/// Runs the closed-loop study at `tier`.
pub fn run(tier: Tier) -> FeedbackResult {
    let config = ClosedLoopConfig {
        mshrs: 8,
        think_ns: 4.0,
        warmup_cycles: 3_000,
        measure_cycles: match tier {
            Tier::Full | Tier::Quick => 20_000,
            Tier::Smoke => 6_000,
        },
        seed: 0xC10,
    };
    let workloads = ["ocean", "tpcc"]
        .into_iter()
        .map(|name| {
            let w = workload(name).expect("known workload");
            let rows = Arch::ALL
                .iter()
                .map(|&arch| {
                    let r = run_closed_loop(NetConfig::paper(arch), w, &config);
                    FeedbackRow {
                        arch,
                        miss_latency_ns: r.miss_latency_ns.mean(),
                        miss_throughput_per_ns: r.miss_throughput_per_ns,
                    }
                })
                .collect();
            FeedbackWorkload { name, rows }
        })
        .collect();
    FeedbackResult {
        tier,
        config,
        workloads,
    }
}

impl FeedbackResult {
    /// The per-workload tables and the §5.2 takeaway.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.workloads {
            let mut t = Table::new(
                format!(
                    "closed-loop {}: {} MSHRs/core, {} ns think time",
                    w.name, self.config.mshrs, self.config.think_ns
                ),
                &[
                    "architecture",
                    "miss latency (ns)",
                    "misses/us (all cores)",
                    "vs NoX",
                ],
            );
            let nox_tp = w.nox_throughput();
            for r in &w.rows {
                t.row([
                    r.arch.name().to_string(),
                    format!("{:.2}", r.miss_latency_ns),
                    format!("{:.1}", r.miss_throughput_per_ns * 1_000.0),
                    format!("{:+.1}%", (r.miss_throughput_per_ns / nox_tp - 1.0) * 100.0),
                ]);
            }
            let _ = writeln!(out, "{t}");
        }
        out.push_str(
            "With feedback, network latency feeds straight back into issue rate.\n\
             On the control-heavy commercial workload (tpcc) NoX leads everyone,\n\
             with the gaps wider than the open-loop Figure 10 — §5.2's prediction.\n\
             On the data-fill-heavy scientific workload (ocean) the 9-flit reply\n\
             network dominates and Spec-Accurate's shorter clock keeps it level.\n",
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                let nox_tp = w.nox_throughput();
                let rows = w
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("arch", r.arch.name())
                            .field("miss_latency_ns", r.miss_latency_ns)
                            .field("misses_per_us", r.miss_throughput_per_ns * 1_000.0)
                            .field("vs_nox", r.miss_throughput_per_ns / nox_tp - 1.0)
                    })
                    .collect::<Vec<_>>();
                Json::obj()
                    .field("workload", w.name)
                    .field("results", Json::Arr(rows))
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.tier.name())
            .field("mshrs", self.config.mshrs as u64)
            .field("think_ns", self.config.think_ns)
            .field("measure_cycles", self.config.measure_cycles)
            .field("workloads", Json::Arr(workloads))
    }
}
