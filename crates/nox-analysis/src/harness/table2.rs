//! Table 2 — router clock periods — from the logical-effort timing
//! model, with the per-block critical-path breakdown and the comparison
//! against the published numbers.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_power::timing::CriticalPath;
use nox_sim::config::Arch;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/table2/v1";

/// One architecture's clock-period row.
#[derive(Clone, Debug)]
pub struct ClockRow {
    /// Router architecture.
    pub arch: Arch,
    /// Modeled Table 2 period, picoseconds.
    pub modeled_ps: f64,
    /// The paper's published period, picoseconds.
    pub paper_ps: f64,
    /// Critical-path breakdown report (per block).
    pub breakdown: String,
}

/// The Table 2 result.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// One row per architecture, `Arch::ALL` order.
    pub rows: Vec<ClockRow>,
    /// NoX decode overhead over Spec-Accurate, picoseconds.
    pub decode_overhead_ps: f64,
}

/// Derives the clock periods from the logical-effort model.
pub fn run(_tier: Tier) -> Table2Result {
    let rows = Arch::ALL
        .iter()
        .map(|&arch| {
            let path = CriticalPath::new(arch);
            ClockRow {
                arch,
                modeled_ps: path.period_table2_ps() as f64,
                paper_ps: arch.clock_ps() as f64,
                breakdown: path.report(),
            }
        })
        .collect();
    let decode_overhead_ps = CriticalPath::new(Arch::Nox).period_ps()
        - CriticalPath::new(Arch::SpecAccurate).period_ps();
    Table2Result {
        rows,
        decode_overhead_ps,
    }
}

impl Table2Result {
    /// `true` when every modeled period equals the published one.
    pub fn all_match(&self) -> bool {
        self.rows.iter().all(|r| r.modeled_ps == r.paper_ps)
    }

    /// Clock speedup of `arch` versus the non-speculative router, as a
    /// fraction (+0.21 = 21% faster clock).
    pub fn speedup_vs_nonspec(&self, arch: Arch) -> f64 {
        let period = |a: Arch| {
            self.rows
                .iter()
                .find(|r| r.arch == a)
                .expect("all archs present")
                .modeled_ps
        };
        period(Arch::NonSpec) / period(arch) - 1.0
    }

    /// The critical paths, comparison table, and prose checks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Critical paths (logical-effort model, 65 nm-class process):\n\n");
        for r in &self.rows {
            let _ = writeln!(out, "{}:", r.arch.name());
            out.push_str(&r.breakdown);
            out.push('\n');
        }

        let mut t = Table::new(
            "Table 2: Router Clock Periods",
            &["Architecture", "modeled (ns)", "paper (ns)", "match"],
        );
        for r in &self.rows {
            t.row([
                r.arch.name().to_string(),
                format!("{:.2}", r.modeled_ps / 1000.0),
                format!("{:.2}", r.paper_ps / 1000.0),
                if r.modeled_ps == r.paper_ps {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
        let _ = writeln!(out, "{t}");

        let _ = writeln!(
            out,
            "NoX decode overhead over Spec-Accurate: {:.0} ps (paper: ~40 ps)",
            self.decode_overhead_ps
        );
        let _ = writeln!(
            out,
            "Clock speedups vs non-speculative: Spec-Fast {:.1}%, Spec-Accurate {:.1}%, NoX {:.1}% \
             (paper: 33.3%, 27.8%, 21.1%)",
            self.speedup_vs_nonspec(Arch::SpecFast) * 100.0,
            self.speedup_vs_nonspec(Arch::SpecAccurate) * 100.0,
            self.speedup_vs_nonspec(Arch::Nox) * 100.0,
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("arch", r.arch.name())
                    .field("modeled_ps", r.modeled_ps)
                    .field("paper_ps", r.paper_ps)
                    .field("match", r.modeled_ps == r.paper_ps)
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA)
            .field("all_match", self.all_match())
            .field("decode_overhead_ps", self.decode_overhead_ps)
            .field("clocks", Json::Arr(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_model_matches_table2() {
        let r = run(Tier::Quick);
        assert!(r.all_match(), "timing model diverged from Table 2");
        assert!((r.decode_overhead_ps - 40.0).abs() < 10.0);
    }
}
