//! The application-workload study shared by Figures 10 and 11.
//!
//! Runs all nine synthesized CMP workloads on every architecture's dual
//! physical networks once; Figure 10 renders the latency view and
//! Figure 11 the ED² view, and the claims registry evaluates both
//! figures' claims from the same study.

use crate::apps::{
    app_run_spec, mean_ed2_improvement_pct, run_workload_sized, AppResult, APP_TRACE_NS,
};
use crate::harness::Tier;
use nox_exec::Executor;
use nox_sim::config::Arch;
use nox_sim::sim::RunSpec;
use nox_traffic::WORKLOADS;

/// The trace seed every figure-10/11 run has always used.
pub const APP_SEED: u64 = 13;

/// The full workloads-by-architectures study.
#[derive(Clone, Debug)]
pub struct AppStudy {
    /// Tier the study ran at.
    pub tier: Tier,
    /// One row per workload: the four architectures' results in
    /// `Arch::ALL` order.
    pub rows: Vec<Vec<AppResult>>,
}

/// Measurement phases and trace length for a tier. Full and quick use
/// the historical figure-10/11 windows; smoke halves the measurement and
/// trace so the claims registry stays CI-fast.
pub fn app_tier_spec(tier: Tier) -> (RunSpec, f64) {
    match tier {
        Tier::Full | Tier::Quick => (app_run_spec(), APP_TRACE_NS),
        Tier::Smoke => (
            RunSpec {
                warmup_ns: 1_000.0,
                measure_ns: 3_000.0,
                drain_ns: 30_000.0,
            },
            20_000.0,
        ),
    }
}

/// Runs the study at `tier`, serially.
pub fn study(tier: Tier) -> AppStudy {
    study_with(tier, &Executor::sequential())
}

/// Runs the study at `tier`, fanning every (workload, architecture) run
/// out over `exec`. Each run is independent (same seed, same spec), and
/// the ordered reduction rebuilds the rows in `WORKLOADS` × `Arch::ALL`
/// order, so the study is bit-identical to the serial [`study`] at any
/// thread count.
pub fn study_with(tier: Tier, exec: &Executor) -> AppStudy {
    let (spec, trace_ns) = app_tier_spec(tier);
    let jobs: Vec<_> = WORKLOADS
        .iter()
        .flat_map(|w| Arch::ALL.iter().map(move |&a| (w, a)))
        .collect();
    let results = exec.map_stage("apps.workloads", jobs, |_, (w, a)| {
        run_workload_sized(a, w, APP_SEED, &spec, trace_ns)
    });
    let mut it = results.into_iter();
    let rows = WORKLOADS
        .iter()
        .map(|_| {
            Arch::ALL
                .iter()
                .map(|_| it.next().expect("one result per submitted job"))
                .collect()
        })
        .collect();
    AppStudy { tier, rows }
}

impl AppStudy {
    /// The results of one architecture across all workloads, paired in
    /// workload order.
    pub fn arch_results(&self, arch: Arch) -> Vec<AppResult> {
        let i = Arch::ALL
            .iter()
            .position(|&a| a == arch)
            .expect("known arch");
        self.rows.iter().map(|r| r[i].clone()).collect()
    }

    /// Mean latency of one architecture across all workloads.
    pub fn mean_latency_ns(&self, arch: Arch) -> f64 {
        let rs = self.arch_results(arch);
        rs.iter().map(|r| r.latency_ns).sum::<f64>() / rs.len() as f64
    }

    /// The architecture with the lowest latency on each workload.
    pub fn winners(&self) -> Vec<Arch> {
        self.rows
            .iter()
            .map(|r| {
                r.iter()
                    .min_by(|a, b| a.latency_ns.total_cmp(&b.latency_ns))
                    .expect("non-empty row")
                    .arch
            })
            .collect()
    }

    /// How many workloads `arch` wins on latency.
    pub fn wins(&self, arch: Arch) -> usize {
        self.winners().into_iter().filter(|&w| w == arch).count()
    }

    /// Workloads where `a` has lower latency than `b`.
    pub fn beats_on(&self, a: Arch, b: Arch) -> Vec<&'static str> {
        let (ra, rb) = (self.arch_results(a), self.arch_results(b));
        ra.iter()
            .zip(&rb)
            .filter(|(x, y)| x.latency_ns < y.latency_ns)
            .map(|(x, _)| x.workload)
            .collect()
    }

    /// Geometric-mean ED² improvement of NoX over `other`, in percent.
    pub fn nox_ed2_improvement_pct(&self, other: Arch) -> f64 {
        mean_ed2_improvement_pct(&self.arch_results(Arch::Nox), &self.arch_results(other))
    }
}
