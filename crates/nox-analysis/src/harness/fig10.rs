//! Figure 10 — application average packet latency — over the nine
//! synthesized CMP workloads (the substitution for the paper's SPLASH-2
//! / SPEC / TPC traces; see DESIGN.md), each replayed on two 64-bit
//! physical wormhole networks per Table 1.

use std::fmt::Write as _;

use crate::harness::appstudy::{self, AppStudy};
use crate::harness::{Tier, ARCH_COLUMNS};
use crate::json::Json;
use crate::Table;
use nox_sim::config::Arch;
use nox_traffic::WORKLOADS;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig10/v1";

/// The Figure 10 result: the latency view of the application study.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// The underlying workloads-by-architectures study.
    pub study: AppStudy,
}

/// Runs the study at `tier` and wraps it in the Figure 10 view.
pub fn run(tier: Tier) -> Fig10Result {
    Fig10Result {
        study: appstudy::study(tier),
    }
}

impl Fig10Result {
    /// Builds the view over an existing study (shared with Figure 11 and
    /// the claims registry).
    pub fn from_study(study: AppStudy) -> Fig10Result {
        Fig10Result { study }
    }

    /// The human-readable table plus the paper-prose summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut t = Table::new(
            "Figure 10: application average packet latency (ns)",
            &[
                "workload",
                ARCH_COLUMNS[0],
                ARCH_COLUMNS[1],
                ARCH_COLUMNS[2],
                ARCH_COLUMNS[3],
                "best",
            ],
        );
        let winners = self.study.winners();
        for (row, &best) in self.study.rows.iter().zip(&winners) {
            t.row([
                row[0].workload.to_string(),
                format!("{:.2}", row[0].latency_ns),
                format!("{:.2}", row[1].latency_ns),
                format!("{:.2}", row[2].latency_ns),
                format!("{:.2}", row[3].latency_ns),
                best.name().to_string(),
            ]);
        }
        let means: Vec<f64> = Arch::ALL
            .iter()
            .map(|&a| self.study.mean_latency_ns(a))
            .collect();
        let nox_best_mean = means[3] <= means[0].min(means[1]).min(means[2]);
        t.row([
            "MEAN".to_string(),
            format!("{:.2}", means[0]),
            format!("{:.2}", means[1]),
            format!("{:.2}", means[2]),
            format!("{:.2}", means[3]),
            if nox_best_mean { "NoX" } else { "-" }.to_string(),
        ]);
        let _ = writeln!(out, "{t}");
        let _ = writeln!(
            out,
            "NoX is the lowest-latency network on {} of {} workloads.\n\
             Paper prose: \"the NoX architecture [is] the optimal network given our\n\
             application workloads\"; Spec-Fast is overly aggressive and even the\n\
             non-speculative router can outperform it on contended workloads (tpcc).",
            self.study.wins(Arch::Nox),
            WORKLOADS.len()
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let workloads = self
            .study
            .rows
            .iter()
            .map(|row| {
                let per_arch = row
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("arch", r.arch.name())
                            .field("latency_ns", r.latency_ns)
                            .field("request_latency_ns", r.request_latency_ns)
                            .field("reply_latency_ns", r.reply_latency_ns)
                            .field("drained", r.drained)
                    })
                    .collect::<Vec<_>>();
                Json::obj()
                    .field("workload", row[0].workload)
                    .field("results", Json::Arr(per_arch))
            })
            .collect::<Vec<_>>();
        let means = Json::Arr(
            Arch::ALL
                .iter()
                .map(|&a| {
                    Json::obj()
                        .field("arch", a.name())
                        .field("mean_latency_ns", self.study.mean_latency_ns(a))
                        .field("wins", self.study.wins(a))
                })
                .collect(),
        );
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.study.tier.name())
            .field("workloads", Json::Arr(workloads))
            .field("summary", means)
    }
}
