//! Figure 8 — synthetic traffic latency versus injection bandwidth —
//! rendered from a [`SyntheticStudy`].

use std::fmt::Write as _;

use crate::harness::synthetic::{self, Metric, SyntheticStudy, SATURATION_FACTOR};
use crate::harness::{Tier, ARCH_COLUMNS};
use crate::json::Json;
use crate::sweep::ArchSeries;
use crate::Table;
use nox_sim::config::Arch;

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig8/v1";

/// The Figure 8 result: the latency view of the synthetic study.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// The underlying four-scenario study.
    pub study: SyntheticStudy,
}

/// Runs the study at `tier` and wraps it in the Figure 8 view.
pub fn run(tier: Tier) -> Fig8Result {
    Fig8Result {
        study: synthetic::study(tier),
    }
}

impl Fig8Result {
    /// Builds the view over an existing study (shared with Figure 9 and
    /// the claims registry).
    pub fn from_study(study: SyntheticStudy) -> Fig8Result {
        Fig8Result { study }
    }

    /// The human-readable tables plus the saturation / crossover
    /// summary the paper reports in prose.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for sc in &self.study.scenarios {
            let mut t = Table::new(
                format!(
                    "Figure 8{}: mean latency (ns) vs offered load (MB/s/node)",
                    sc.label
                ),
                &[
                    "MB/s/node",
                    ARCH_COLUMNS[0],
                    ARCH_COLUMNS[1],
                    ARCH_COLUMNS[2],
                    ARCH_COLUMNS[3],
                ],
            );
            for (i, &rate) in self.study.rates.iter().enumerate() {
                let cell = |s: &ArchSeries| {
                    let p = &s.points[i];
                    if p.drained {
                        format!("{:.2}", p.latency_ns)
                    } else {
                        "sat".to_string()
                    }
                };
                t.row([
                    format!("{rate:.0}"),
                    cell(&sc.series[0]),
                    cell(&sc.series[1]),
                    cell(&sc.series[2]),
                    cell(&sc.series[3]),
                ]);
            }
            let _ = writeln!(out, "{t}");

            out.push_str("  saturation throughput (MB/s/node):");
            for s in &sc.series {
                let _ = write!(
                    out,
                    "  {} {:.0}",
                    s.arch.name(),
                    s.saturation_mbps(SATURATION_FACTOR)
                );
            }
            out.push('\n');
            let _ = writeln!(
                out,
                "  NoX throughput vs best other: {:+.1}%  (paper: up to +9.9% across patterns)",
                sc.nox_saturation_gain() * 100.0
            );
            if let Some(x) = sc.crossover(Arch::Nox, Arch::SpecAccurate) {
                let _ = writeln!(out, "  NoX overtakes Spec-Accurate from {x:.0} MB/s/node");
            }
            if let Some(x) = sc.crossover(Arch::SpecAccurate, Arch::SpecFast) {
                let _ = writeln!(
                    out,
                    "  Spec-Accurate overtakes Spec-Fast from {x:.0} MB/s/node"
                );
            }
            out.push('\n');
        }
        out.push_str(
            "Paper prose for Fig 8a: Spec-Fast best to 575 MB/s/node, Spec-Accurate to\n\
             750 MB/s/node, NoX best above that until saturation at 2775 MB/s/node;\n\
             Spec-Fast frequently saturates at less than half the others' bandwidth.\n",
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.study.tier.name())
            .field("rates_mbps", self.study.rates.clone())
            .field("scenarios", self.study.scenarios_json(Metric::LatencyNs))
    }
}
