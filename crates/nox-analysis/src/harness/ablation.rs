//! Ablation study of the NoX design choices called out in DESIGN.md:
//! how much of the router's performance comes from the *Scheduled* mode
//! (the pre-scheduling half of §2.6) versus pure XOR-coded Recovery-mode
//! arbitration?
//!
//! With Scheduled mode disabled, collision losers still drain through
//! the chain correctly (the coding invariant is preserved), but nothing
//! is ever pre-scheduled: sustained contention keeps resolving through
//! fresh encoded collisions, and multi-flit streams hand off by
//! re-colliding.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run as sim_run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::cmp::{synthesize, workload};
use nox_traffic::synthetic::{generate, SyntheticConfig};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/ablation/v1";

/// One paired measurement: full NoX versus NoX without Scheduled mode.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Operating point: MB/s/node for synthetic rows, workload name for
    /// application rows.
    pub label: String,
    /// Mean latency of the full NoX router, nanoseconds.
    pub full_ns: f64,
    /// Mean latency with Scheduled mode disabled, nanoseconds.
    pub ablated_ns: f64,
}

impl AblationRow {
    /// Latency penalty of the ablation as a fraction.
    pub fn penalty(&self) -> f64 {
        self.ablated_ns / self.full_ns - 1.0
    }
}

/// The ablation result.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Tier the study ran at.
    pub tier: Tier,
    /// Uniform-random synthetic rows.
    pub synthetic: Vec<AblationRow>,
    /// Application reply-network rows.
    pub apps: Vec<AblationRow>,
}

/// Runs the ablation at `tier`.
pub fn run(tier: Tier) -> AblationResult {
    let mesh = Mesh::new(8, 8);
    let (duration_ns, spec) = match tier {
        Tier::Full | Tier::Quick => (
            40_000.0,
            RunSpec {
                warmup_ns: 1_500.0,
                measure_ns: 6_000.0,
                drain_ns: 30_000.0,
            },
        ),
        Tier::Smoke => (
            15_000.0,
            RunSpec {
                warmup_ns: 1_000.0,
                measure_ns: 3_000.0,
                drain_ns: 15_000.0,
            },
        ),
    };

    let full = NetConfig::paper(Arch::Nox);
    let ablated = NetConfig {
        nox_scheduled_mode: false,
        ..full
    };

    let rates: &[f64] = match tier {
        Tier::Smoke => &[500.0, 2_500.0, 3_000.0],
        _ => &[500.0, 1_500.0, 2_500.0, 3_000.0],
    };
    let synthetic = rates
        .iter()
        .map(|&rate| {
            let trace = generate(mesh, &SyntheticConfig::uniform(rate, duration_ns));
            let a = sim_run(full, &trace, &spec);
            let b = sim_run(ablated, &trace, &spec);
            AblationRow {
                label: format!("{rate:.0}"),
                full_ns: a.avg_latency_ns(),
                ablated_ns: b.avg_latency_ns(),
            }
        })
        .collect();

    let apps = ["ocean", "tpcc"]
        .into_iter()
        .map(|name| {
            let w = workload(name).expect("known workload");
            let traces = synthesize(mesh, w, duration_ns, 13);
            let a = sim_run(full, &traces.reply, &spec);
            let b = sim_run(ablated, &traces.reply, &spec);
            AblationRow {
                label: name.to_string(),
                full_ns: a.avg_latency_ns(),
                ablated_ns: b.avg_latency_ns(),
            }
        })
        .collect();

    AblationResult {
        tier,
        synthetic,
        apps,
    }
}

fn rows_table(title: &str, first_col: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &[first_col, "full NoX (ns)", "no Scheduled (ns)", "penalty"],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{:.2}", r.full_ns),
            format!("{:.2}", r.ablated_ns),
            format!("{:+.1}%", r.penalty() * 100.0),
        ]);
    }
    t
}

impl AblationResult {
    /// The two tables plus the takeaway.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            rows_table(
                "Ablation: NoX with and without Scheduled mode (uniform random)",
                "MB/s/node",
                &self.synthetic,
            )
        );
        let _ = writeln!(
            out,
            "{}",
            rows_table(
                "Ablation on application reply networks (9-flit data packets)",
                "workload",
                &self.apps,
            )
        );
        out.push_str(
            "Takeaway: Recovery-mode coding alone keeps NoX correct and productive,\n\
             but Scheduled mode is what sustains full-rate output under continuous\n\
             contention and hands multi-flit streams off without re-colliding.\n",
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let rows = |v: &[AblationRow]| {
            Json::Arr(
                v.iter()
                    .map(|r| {
                        Json::obj()
                            .field("label", r.label.clone())
                            .field("full_ns", r.full_ns)
                            .field("ablated_ns", r.ablated_ns)
                            .field("penalty", r.penalty())
                    })
                    .collect(),
            )
        };
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.tier.name())
            .field("synthetic_uniform", rows(&self.synthetic))
            .field("app_reply_networks", rows(&self.apps))
    }
}
