//! Table 1 — common system parameters — regenerated from the live
//! configuration types, so any drift between code and paper shows up
//! here.

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_sim::config::{Arch, NetConfig};
use nox_traffic::cmp::{CTRL_FLITS, DATA_FLITS};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/table1/v1";

/// The Table 1 result: parameter/value pairs.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// `(parameter, value)` rows in the paper's order.
    pub rows: Vec<(&'static str, String)>,
}

/// Builds the parameter table from the live configuration.
pub fn run(_tier: Tier) -> Table1Result {
    let cfg = NetConfig::paper(Arch::Nox);
    let rows = vec![
        ("Cores", cfg.nodes().to_string()),
        ("Topology", format!("{}x{} mesh", cfg.width, cfg.height)),
        (
            "Processor",
            "3GHz in-order PowerPC (trace synthesizer model)".to_string(),
        ),
        (
            "L1 I/D Caches",
            "32KB, 2-way set associative (modeled via miss rates)".to_string(),
        ),
        (
            "L2 Cache",
            "256KB, 8-way set associative (modeled via home nodes)".to_string(),
        ),
        ("Cache Line Size", "64-bytes".to_string()),
        (
            "Memory Latency",
            "100 cycles (folded into workload service_ns)".to_string(),
        ),
        (
            "Interconnect",
            format!(
                "{}-bit request, {}-bit reply network",
                cfg.flit_bytes * 8,
                cfg.flit_bytes * 8
            ),
        ),
        (
            "Packet Sizes",
            format!(
                "{} byte control ({} flit), {} byte data ({} flits)",
                CTRL_FLITS as u32 * cfg.flit_bytes,
                CTRL_FLITS,
                DATA_FLITS as u32 * cfg.flit_bytes,
                DATA_FLITS
            ),
        ),
        (
            "Buffer Depth",
            format!("{} 64-bit entries/port", cfg.buffer_depth),
        ),
        ("Channel Length", "2mm".to_string()),
        ("Routing Algorithm", "Dimension Ordered Routing".to_string()),
    ];
    Table1Result { rows }
}

impl Table1Result {
    /// The human-readable table.
    pub fn render(&self) -> String {
        let mut t = Table::new("Table 1: Common System Parameters", &["Parameter", "Value"]);
        for (k, v) in &self.rows {
            t.row([k.to_string(), v.clone()]);
        }
        format!("{t}")
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|(k, v)| Json::obj().field("parameter", *k).field("value", v.clone()))
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA)
            .field("parameters", Json::Arr(rows))
    }
}
