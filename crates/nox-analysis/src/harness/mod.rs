//! Library implementations of every figure/table harness.
//!
//! Each submodule owns the *computation* behind one `nox-bench` binary
//! and returns a structured result type with three views:
//!
//! * `run(tier)` — execute the study at a [`Tier`] and return the typed
//!   result;
//! * `render()` — the human-readable tables the binary has always
//!   printed;
//! * `to_json()` — the same numbers on a versioned machine-readable
//!   schema (`nox-bench/<harness>/v1`).
//!
//! The binaries in `crates/bench/src/bin` are thin renderers over these
//! functions, and the claims registry ([`crate::claims`]) evaluates the
//! paper's headline claims against the same typed results — so the
//! table a human reads, the `--json` a tool consumes, and the
//! conformance verdict CI gates on can never drift apart.
//!
//! Figures that share their underlying runs share a study type:
//! [`synthetic::SyntheticStudy`] feeds both Figure 8 (latency) and
//! Figure 9 (ED²), and [`appstudy::AppStudy`] feeds both Figure 10
//! (latency) and Figure 11 (ED²), so a claims evaluation pays for the
//! expensive sweeps exactly once.

pub mod ablation;
pub mod appstudy;
pub mod cmesh;
pub mod faults;
pub mod feedback;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod figs237;
pub mod synthetic;
pub mod table1;
pub mod table2;

/// How much simulation to spend on a harness run.
///
/// `Full` regenerates the EXPERIMENTS.md numbers, `Quick` coarsens the
/// sweeps (the historical `--quick` flag), and `Smoke` additionally
/// shortens warmup/measurement windows so the whole claims registry
/// finishes in well under a minute for CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Paper-resolution sweeps (EXPERIMENTS.md numbers).
    Full,
    /// Coarser rate grid, full measurement windows (`--quick`).
    Quick,
    /// Coarse grid *and* short windows (`--smoke`), for CI gating.
    Smoke,
}

impl Tier {
    /// The tier's canonical name (`full` / `quick` / `smoke`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Quick => "quick",
            Tier::Smoke => "smoke",
        }
    }

    /// Parses a tier name.
    pub fn parse(name: &str) -> Option<Tier> {
        match name {
            "full" => Some(Tier::Full),
            "quick" => Some(Tier::Quick),
            "smoke" => Some(Tier::Smoke),
            _ => None,
        }
    }
}

/// Command-line contract shared by every harness binary: `--quick` and
/// `--smoke` select the tier (smoke wins if both appear; default full)
/// and `--json` selects machine-readable output.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Selected tier.
    pub tier: Tier,
    /// Emit the versioned JSON document instead of tables.
    pub json: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> HarnessArgs {
        let mut tier = Tier::Full;
        let mut json = false;
        for a in args {
            match a.as_str() {
                "--quick" if tier == Tier::Full => tier = Tier::Quick,
                "--smoke" => tier = Tier::Smoke,
                "--json" => json = true,
                _ => {}
            }
        }
        HarnessArgs { tier, json }
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> HarnessArgs {
        HarnessArgs::parse(std::env::args().skip(1))
    }
}

/// The display names of the four architectures, in `Arch::ALL` order —
/// the column order every table in the paper uses.
pub const ARCH_COLUMNS: [&str; 4] = ["Non-Spec", "Spec-Fast", "Spec-Acc", "NoX"];

/// Every harness name [`run_by_name`] dispatches, in menu order.
pub const HARNESS_NAMES: &[&str] = &[
    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "figs237", "table1", "table2", "ablation",
    "cmesh", "feedback", "faults", "claims",
];

/// Runs the named harness at `tier` and returns its rendered report, or
/// `None` for an unknown name. Harnesses with a parallel implementation
/// (the synthetic and application studies, the fault campaigns, the
/// claims registry) fan out over `exec`; the rest run serially — either
/// way the output is bit-identical at any executor width.
///
/// The run is wrapped in one `harness.stage` span, so a profile always
/// attributes the harness's own (non-simulator) time.
pub fn run_by_name(name: &str, tier: Tier, exec: &nox_exec::Executor) -> Option<String> {
    let _span = nox_telemetry::SpanGuard::begin(nox_telemetry::phase::HARNESS_STAGE);
    Some(match name {
        "fig8" => fig8::Fig8Result::from_study(synthetic::study_with(tier, exec)).render(),
        "fig9" => fig9::Fig9Result::from_study(synthetic::study_with(tier, exec)).render(),
        "fig10" => fig10::Fig10Result::from_study(appstudy::study_with(tier, exec)).render(),
        "fig11" => fig11::Fig11Result::from_study(appstudy::study_with(tier, exec)).render(),
        "fig12" => fig12::run(tier).render(),
        "fig13" => fig13::run(tier).render(),
        "figs237" => figs237::run(tier).render(),
        "table1" => table1::run(tier).render(),
        "table2" => table2::run(tier).render(),
        "ablation" => ablation::run(tier).render(),
        "cmesh" => cmesh::run(tier).render(),
        "feedback" => feedback::run(tier).render(),
        "faults" => faults::run_with(tier, exec).render(),
        "claims" => {
            crate::claims::evaluate(&crate::claims::ClaimInputs::gather_with(tier, exec)).render()
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        for t in [Tier::Full, Tier::Quick, Tier::Smoke] {
            assert_eq!(Tier::parse(t.name()), Some(t));
        }
        assert_eq!(Tier::parse("bogus"), None);
    }

    #[test]
    fn smoke_outranks_quick() {
        let args = |v: &[&str]| HarnessArgs::parse(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&["--quick", "--smoke"]).tier, Tier::Smoke);
        assert_eq!(args(&["--smoke", "--quick"]).tier, Tier::Smoke);
        assert_eq!(args(&["--quick"]).tier, Tier::Quick);
        assert_eq!(args(&[]).tier, Tier::Full);
        assert!(args(&["--json"]).json);
    }
}
