//! Figure 13 / §6.2 — router floorplans and the NoX area penalty — from
//! the parametric floorplan model.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use nox_power::area::{Floorplan, CELL_HEIGHT_UM, NOX_EXTRA_WIDTH_UM};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/fig13_area/v1";

/// The Figure 13 result.
#[derive(Clone, Debug)]
pub struct AreaResult {
    /// Standard cell height, micrometres (paper: 2.52 um).
    pub cell_height_um: f64,
    /// NoX's extra horizontal length, micrometres (paper: 28.2 um).
    pub extra_width_um: f64,
    /// NoX router tile area penalty as a fraction (paper: 0.172).
    pub area_penalty: f64,
    /// Baseline floorplan report.
    pub baseline_report: String,
    /// NoX floorplan report.
    pub nox_report: String,
}

/// Derives the floorplans and penalty from the area model.
pub fn run(_tier: Tier) -> AreaResult {
    let base = Floorplan::baseline();
    let nox = Floorplan::nox();
    AreaResult {
        cell_height_um: CELL_HEIGHT_UM,
        extra_width_um: nox.width_um() - base.width_um(),
        area_penalty: nox.overhead_vs_baseline(),
        baseline_report: base.report(),
        nox_report: nox.report(),
    }
}

impl AreaResult {
    /// `true` when the model sits on the paper's anchors (extra width
    /// exactly [`NOX_EXTRA_WIDTH_UM`], penalty within 0.5pp of 17.2%).
    pub fn matches_paper(&self) -> bool {
        (self.extra_width_um - NOX_EXTRA_WIDTH_UM).abs() < 1e-9
            && (self.area_penalty - 0.172).abs() < 0.005
    }

    /// The floorplan reports and paper comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Baseline router floorplan (non-speculative / Spec-Fast / Spec-Accurate):\n");
        out.push_str(&self.baseline_report);
        out.push('\n');
        out.push_str("NoX router floorplan:\n");
        out.push_str(&self.nox_report);
        out.push('\n');
        let _ = writeln!(
            out,
            "Standard cell height: {} um (paper: 2.52 um)",
            self.cell_height_um
        );
        let _ = writeln!(
            out,
            "NoX extra horizontal length: {:.1} um (paper: 28.2 um)",
            self.extra_width_um
        );
        let _ = writeln!(
            out,
            "NoX router tile area penalty: {:.1}% (paper: 17.2%)",
            self.area_penalty * 100.0
        );
        out.push_str("\nAllocation, abort, and route-computation logic fits in the spare\n");
        out.push_str("corner and does not change either envelope (§6.2).\n");
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("cell_height_um", self.cell_height_um)
            .field("extra_width_um", self.extra_width_um)
            .field("area_penalty", self.area_penalty)
            .field("matches_paper", self.matches_paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_model_matches_paper_anchors() {
        assert!(run(Tier::Quick).matches_paper());
    }
}
