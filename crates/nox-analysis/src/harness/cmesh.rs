//! The paper's future-work study (§8): "evaluate the NoX architecture on
//! alternative, higher radix, topologies ... which may derive more
//! benefit given their higher arbitration latencies, their longer
//! channels, and the fixed cost of the NoX decoding hardware."
//!
//! Compares the 64-core 8x8 mesh of five-port routers against a 64-core
//! 4x4 *concentrated* mesh of radix-8 routers (4 cores per router, 4 mm
//! channels, clocks re-derived by the logical-effort model), sweeping
//! uniform random traffic on both.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_power::timing::CriticalPath;
use nox_sim::config::{cmesh_clock_ps, Arch, NetConfig};
use nox_sim::sim::{run as sim_run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, SyntheticConfig};

/// Versioned schema of the `--json` document.
pub const SCHEMA: &str = "nox-bench/cmesh/v1";

/// One architecture's latency at one rate on one topology.
#[derive(Clone, Debug)]
pub struct TopoPoint {
    /// Offered load, MB/s per node.
    pub rate_mbps: f64,
    /// Mean latency per architecture (`Arch::ALL` order), ns.
    pub latency_ns: [f64; 4],
    /// Drained flags per architecture.
    pub drained: [bool; 4],
}

/// One topology's sweep.
#[derive(Clone, Debug)]
pub struct TopoSweep {
    /// Display label, e.g. `8x8 mesh (radix 5)`.
    pub label: &'static str,
    /// The swept points.
    pub points: Vec<TopoPoint>,
}

/// The §8 result.
#[derive(Clone, Debug)]
pub struct CmeshResult {
    /// Tier the study ran at.
    pub tier: Tier,
    /// Per-architecture mesh and cmesh clock periods, picoseconds.
    pub clocks_ps: Vec<(Arch, f64, f64)>,
    /// The mesh sweep followed by the cmesh sweep.
    pub sweeps: Vec<TopoSweep>,
    /// `true` when the cmesh clock model agrees with [`CriticalPath::cmesh`].
    pub clocks_consistent: bool,
}

/// Runs the topology comparison at `tier`.
pub fn run(tier: Tier) -> CmeshResult {
    let mut clocks_consistent = true;
    let clocks_ps = Arch::ALL
        .iter()
        .map(|&arch| {
            clocks_consistent &=
                CriticalPath::cmesh(arch).period_table2_ps() == cmesh_clock_ps(arch);
            (arch, arch.clock_ps() as f64, cmesh_clock_ps(arch) as f64)
        })
        .collect();

    let (duration_ns, spec) = match tier {
        Tier::Full | Tier::Quick => (
            40_000.0,
            RunSpec {
                warmup_ns: 1_500.0,
                measure_ns: 6_000.0,
                drain_ns: 30_000.0,
            },
        ),
        Tier::Smoke => (
            15_000.0,
            RunSpec {
                warmup_ns: 1_000.0,
                measure_ns: 3_000.0,
                drain_ns: 15_000.0,
            },
        ),
    };
    let rates: &[f64] = match tier {
        Tier::Smoke => &[500.0, 1_000.0, 2_000.0],
        _ => &[500.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0],
    };
    // Same 64-core uniform traffic drives both topologies.
    let cores = Mesh::new(8, 8);

    type ConfigFn = fn(Arch) -> NetConfig;
    let variants: [(&str, ConfigFn); 2] = [
        ("8x8 mesh (radix 5)", NetConfig::paper),
        ("4x4 cmesh (radix 8)", NetConfig::cmesh_paper),
    ];
    let sweeps = variants
        .into_iter()
        .map(|(label, cfg_of)| {
            let points = rates
                .iter()
                .map(|&rate| {
                    let trace = generate(cores, &SyntheticConfig::uniform(rate, duration_ns));
                    let mut latency_ns = [0.0; 4];
                    let mut drained = [false; 4];
                    for (i, &a) in Arch::ALL.iter().enumerate() {
                        let r = sim_run(cfg_of(a), &trace, &spec);
                        latency_ns[i] = r.avg_latency_ns();
                        drained[i] = r.drained;
                    }
                    TopoPoint {
                        rate_mbps: rate,
                        latency_ns,
                        drained,
                    }
                })
                .collect();
            TopoSweep { label, points }
        })
        .collect();

    CmeshResult {
        tier,
        clocks_ps,
        sweeps,
        clocks_consistent,
    }
}

impl CmeshResult {
    /// NoX's clock penalty versus Spec-Accurate on the mesh and cmesh,
    /// as fractions.
    pub fn nox_clock_penalties(&self) -> (f64, f64) {
        let of = |arch: Arch| {
            self.clocks_ps
                .iter()
                .find(|(a, _, _)| *a == arch)
                .expect("all archs present")
        };
        let (_, nox_mesh, nox_cmesh) = of(Arch::Nox);
        let (_, acc_mesh, acc_cmesh) = of(Arch::SpecAccurate);
        (nox_mesh / acc_mesh - 1.0, nox_cmesh / acc_cmesh - 1.0)
    }

    /// The clock table, both sweeps, and the hypothesis check.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Radix-8 concentrated-mesh clock periods (logical-effort model):\n\n");
        let mut t = Table::new(
            "",
            &[
                "architecture",
                "mesh clock (ns)",
                "cmesh clock (ns)",
                "NoX-relative penalty",
            ],
        );
        for &(arch, mesh_ps, cmesh_ps) in &self.clocks_ps {
            let pen_mesh = Arch::Nox.clock_ps() as f64 / mesh_ps;
            let pen_cmesh = cmesh_clock_ps(Arch::Nox) as f64 / cmesh_ps;
            t.row([
                arch.name().to_string(),
                format!("{:.2}", mesh_ps / 1000.0),
                format!("{:.2}", cmesh_ps / 1000.0),
                format!("{pen_mesh:.3} -> {pen_cmesh:.3}"),
            ]);
        }
        let _ = writeln!(out, "{t}");

        for sweep in &self.sweeps {
            let mut t = Table::new(
                format!(
                    "{}: mean latency (ns) vs offered load, uniform random",
                    sweep.label
                ),
                &[
                    "MB/s/node",
                    "Non-Spec",
                    "Spec-Fast",
                    "Spec-Acc",
                    "NoX",
                    "NoX vs Spec-Acc",
                ],
            );
            for p in &sweep.points {
                let cell = |i: usize| {
                    if p.drained[i] {
                        format!("{:.2}", p.latency_ns[i])
                    } else {
                        "sat".into()
                    }
                };
                t.row([
                    format!("{:.0}", p.rate_mbps),
                    cell(0),
                    cell(1),
                    cell(2),
                    cell(3),
                    if p.drained[2] && p.drained[3] {
                        format!("{:+.1}%", (p.latency_ns[3] / p.latency_ns[2] - 1.0) * 100.0)
                    } else {
                        "-".into()
                    },
                ]);
            }
            let _ = writeln!(out, "{t}");
        }
        let (pen_mesh, pen_cmesh) = self.nox_clock_penalties();
        let _ = writeln!(
            out,
            "Hypothesis check (§8): NoX's clock penalty vs Spec-Accurate shrinks from\n\
             {:.1}% on the mesh to {:.1}% on the cmesh, while per-hop contention rises\n\
             (fewer, wider routers) — both effects work in NoX's favour at higher radix.",
            pen_mesh * 100.0,
            pen_cmesh * 100.0,
        );
        out
    }

    /// The versioned machine-readable document.
    pub fn to_json(&self) -> Json {
        let clocks = self
            .clocks_ps
            .iter()
            .map(|&(arch, mesh_ps, cmesh_ps)| {
                Json::obj()
                    .field("arch", arch.name())
                    .field("mesh_clock_ps", mesh_ps)
                    .field("cmesh_clock_ps", cmesh_ps)
            })
            .collect::<Vec<_>>();
        let sweeps = self
            .sweeps
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        let lat = p
                            .latency_ns
                            .iter()
                            .zip(p.drained)
                            .zip(Arch::ALL)
                            .map(|((&l, d), a)| {
                                Json::obj()
                                    .field("arch", a.name())
                                    .field("latency_ns", l)
                                    .field("drained", d)
                            })
                            .collect::<Vec<_>>();
                        Json::obj()
                            .field("rate_mbps", p.rate_mbps)
                            .field("results", Json::Arr(lat))
                    })
                    .collect::<Vec<_>>();
                Json::obj()
                    .field("label", s.label)
                    .field("points", Json::Arr(points))
            })
            .collect::<Vec<_>>();
        let (pen_mesh, pen_cmesh) = self.nox_clock_penalties();
        Json::obj()
            .field("schema", SCHEMA)
            .field("tier", self.tier.name())
            .field("clocks", Json::Arr(clocks))
            .field("clocks_consistent", self.clocks_consistent)
            .field("sweeps", Json::Arr(sweeps))
            .field("nox_clock_penalty_mesh", pen_mesh)
            .field("nox_clock_penalty_cmesh", pen_cmesh)
    }
}
