//! The `BENCH_sim_throughput.json` performance artifact — the
//! simulator's own speed, tracked across commits — and the regression
//! comparison behind `noxsim bench-compare`.
//!
//! v2 of the schema records N trials per architecture and reports the
//! median/min/max cycles-per-second, because single-shot wall-clock
//! numbers on shared CI runners are too noisy to diff. The parser also
//! accepts the original v1 documents (one measurement, treated as a
//! single-trial median) so old committed artifacts stay comparable.

use std::fmt::Write as _;

use crate::json::Json;

/// Versioned schema of the v2 document this module emits.
pub const SCHEMA_V2: &str = "nox-bench/sim-throughput/v2";

/// The v1 schema the parser still accepts.
pub const SCHEMA_V1: &str = "nox-bench/sim-throughput/v1";

/// Relative slowdown tolerated before `compare` flags a regression
/// (median-to-median), as a fraction.
pub const DEFAULT_NOISE_THRESHOLD: f64 = 0.10;

/// Multi-trial simulator throughput of one architecture.
#[derive(Clone, Debug)]
pub struct ArchThroughput {
    /// Architecture display name.
    pub arch: String,
    /// Simulated cycles per run (identical across trials).
    pub cycles: u64,
    /// Cycles per wall-clock second, one entry per trial, as measured.
    pub trials_cps: Vec<f64>,
}

impl ArchThroughput {
    /// Median cycles/second across trials.
    pub fn median_cps(&self) -> f64 {
        percentile_sorted(&self.sorted(), 0.5)
    }

    /// Slowest trial.
    pub fn min_cps(&self) -> f64 {
        self.sorted().first().copied().unwrap_or(f64::NAN)
    }

    /// Fastest trial.
    pub fn max_cps(&self) -> f64 {
        self.sorted().last().copied().unwrap_or(f64::NAN)
    }

    /// Relative spread: (max - min) / median.
    pub fn spread(&self) -> f64 {
        (self.max_cps() - self.min_cps()) / self.median_cps()
    }

    /// Median after dropping the fastest and slowest trial (with fewer
    /// than three trials there is nothing to trim, so this equals
    /// [`median_cps`](Self::median_cps)). Shared CI runners produce
    /// occasional outlier trials in both directions; the trimmed median
    /// is the number worth diffing across commits.
    pub fn trimmed_median_cps(&self) -> f64 {
        percentile_sorted(&self.trimmed(), 0.5)
    }

    /// Relative spread of the trimmed trial set.
    pub fn trimmed_spread(&self) -> f64 {
        let t = self.trimmed();
        match (t.first(), t.last()) {
            (Some(min), Some(max)) => (max - min) / self.trimmed_median_cps(),
            _ => f64::NAN,
        }
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v = self.trials_cps.clone();
        v.sort_by(f64::total_cmp);
        v
    }

    fn trimmed(&self) -> Vec<f64> {
        let v = self.sorted();
        if v.len() >= 3 {
            v[1..v.len() - 1].to_vec()
        } else {
            v
        }
    }
}

/// One figure harness's wall time (single run; these are coarse).
#[derive(Clone, Debug)]
pub struct HarnessTiming {
    /// Binary name.
    pub harness: String,
    /// Arguments it ran with.
    pub args: Vec<String>,
    /// Wall seconds, or `None` if the binary was skipped.
    pub wall_s: Option<f64>,
}

/// A parsed `BENCH_sim_throughput.json` document (either version).
#[derive(Clone, Debug)]
pub struct BenchArtifact {
    /// The document's schema string.
    pub schema: String,
    /// Offered load of the throughput runs, MB/s per node.
    pub rate_mbps_per_node: f64,
    /// Per-architecture throughput.
    pub architectures: Vec<ArchThroughput>,
    /// Per-harness wall times.
    pub harnesses: Vec<HarnessTiming>,
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

impl BenchArtifact {
    /// Builds the v2 JSON document.
    pub fn to_json(&self) -> Json {
        let archs = self
            .architectures
            .iter()
            .map(|a| {
                Json::obj()
                    .field("arch", a.arch.clone())
                    .field("cycles", a.cycles)
                    .field("trials_cps", a.trials_cps.clone())
                    .field("median_cps", a.median_cps())
                    .field("trimmed_median_cps", a.trimmed_median_cps())
                    .field("min_cps", a.min_cps())
                    .field("max_cps", a.max_cps())
                    .field("spread", a.spread())
                    .field("trimmed_spread", a.trimmed_spread())
            })
            .collect::<Vec<_>>();
        let harnesses = self
            .harnesses
            .iter()
            .map(|h| {
                Json::obj()
                    .field("harness", h.harness.clone())
                    .field("args", h.args.clone())
                    .field("wall_s", h.wall_s)
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA_V2)
            .field("rate_mbps_per_node", self.rate_mbps_per_node)
            .field("architectures", Json::Arr(archs))
            .field("figure_harnesses", Json::Arr(harnesses))
    }

    /// Parses a v2 or v1 document.
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("artifact has no schema")?
            .to_string();
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 {
            return Err(format!("unknown artifact schema {schema:?}"));
        }
        let rate = doc
            .get("rate_mbps_per_node")
            .and_then(Json::as_f64)
            .ok_or("artifact has no rate_mbps_per_node")?;
        let architectures = doc
            .get("architectures")
            .and_then(Json::as_array)
            .ok_or("artifact has no architectures")?
            .iter()
            .map(|a| {
                let arch = a
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("architecture without name")?
                    .to_string();
                let cycles = a
                    .get("cycles")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{arch}: no cycles"))?;
                // v2 carries the trial list; v1 carried one measurement.
                let trials_cps = match a.get("trials_cps").and_then(Json::as_array) {
                    Some(ts) => ts
                        .iter()
                        .map(|t| t.as_f64().ok_or_else(|| format!("{arch}: bad trial")))
                        .collect::<Result<Vec<_>, _>>()?,
                    None => vec![a
                        .get("cycles_per_sec")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("{arch}: no cycles_per_sec"))?],
                };
                if trials_cps.is_empty() {
                    return Err(format!("{arch}: empty trial list"));
                }
                Ok(ArchThroughput {
                    arch,
                    cycles,
                    trials_cps,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let harnesses = doc
            .get("figure_harnesses")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|h| {
                let harness = h
                    .get("harness")
                    .and_then(Json::as_str)
                    .ok_or("harness without name")?
                    .to_string();
                let args = h
                    .get("args")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|a| a.as_str().map(str::to_string))
                    .collect();
                Ok(HarnessTiming {
                    harness,
                    args,
                    wall_s: h.get("wall_s").and_then(Json::as_f64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchArtifact {
            schema,
            rate_mbps_per_node: rate,
            architectures,
            harnesses,
        })
    }
}

/// One line of a `bench-compare` verdict. Either side may be missing —
/// a harness newly timed, dropped, or skipped in one run — in which case
/// the row is informational (`delta` is `None`, never a regression).
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// What is being compared (arch or harness name).
    pub name: String,
    /// Old value (median cycles/sec, or harness wall seconds), if the
    /// old artifact has one.
    pub old: Option<f64>,
    /// New value, same unit, if the new artifact has one.
    pub new: Option<f64>,
    /// Relative change, sign-adjusted so positive = better; `None` when
    /// either side is missing.
    pub delta: Option<f64>,
    /// `true` when the change exceeds the noise threshold in the bad
    /// direction.
    pub regressed: bool,
}

/// The result of comparing two artifacts.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Noise threshold used, as a fraction.
    pub threshold: f64,
    /// Simulator-throughput rows (higher cycles/sec = better).
    pub throughput: Vec<CompareRow>,
    /// Harness wall-time rows (lower seconds = better), one row per
    /// harness timed in *either* artifact so appearing/disappearing
    /// harnesses are visible instead of silently dropped.
    pub harness_wall: Vec<CompareRow>,
}

/// Compares two artifacts with a relative `threshold` (e.g. 0.10).
pub fn compare(old: &BenchArtifact, new: &BenchArtifact, threshold: f64) -> Comparison {
    let throughput = new
        .architectures
        .iter()
        .map(|n| {
            let o = old.architectures.iter().find(|o| o.arch == n.arch);
            let (ov, nv) = (o.map(ArchThroughput::median_cps), n.median_cps());
            CompareRow {
                name: n.arch.clone(),
                old: ov,
                new: Some(nv),
                delta: ov.map(|ov| nv / ov - 1.0),
                regressed: ov.is_some_and(|ov| nv < ov * (1.0 - threshold)),
            }
        })
        .collect();
    // One row per harness in either artifact, new-artifact order first
    // so additions land next to the harnesses they ride with.
    let mut names: Vec<&HarnessTiming> = new.harnesses.iter().collect();
    for o in &old.harnesses {
        if !names.iter().any(|h| h.harness == o.harness) {
            names.push(o);
        }
    }
    let harness_wall = names
        .iter()
        .map(|h| {
            let wall = |art: &BenchArtifact| {
                art.harnesses
                    .iter()
                    .find(|o| o.harness == h.harness && o.args == h.args)
                    .and_then(|o| o.wall_s)
            };
            let (ov, nv) = (wall(old), wall(new));
            CompareRow {
                name: h.harness.clone(),
                old: ov,
                new: nv,
                delta: ov.zip(nv).map(|(ov, nv)| ov / nv - 1.0),
                regressed: ov
                    .zip(nv)
                    .is_some_and(|(ov, nv)| nv > ov * (1.0 + threshold)),
            }
        })
        .collect();
    Comparison {
        threshold,
        throughput,
        harness_wall,
    }
}

impl Comparison {
    /// `true` when any row regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        self.throughput
            .iter()
            .chain(&self.harness_wall)
            .any(|r| r.regressed)
    }

    /// The human-readable comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let section = |title: &str, unit: &str, rows: &[CompareRow], out: &mut String| {
            if rows.is_empty() {
                return;
            }
            let mut t = crate::Table::new(title, &["name", "old", "new", "change", "verdict"]);
            let cell = |v: Option<f64>| match v {
                Some(v) => format!("{v:.1}{unit}"),
                None => "n/a".to_string(),
            };
            for r in rows {
                let verdict = match (r.old, r.new) {
                    _ if r.regressed => "REGRESSED",
                    (Some(_), Some(_)) => "ok",
                    (None, Some(_)) => "new",
                    (Some(_), None) => "gone",
                    (None, None) => "skipped",
                };
                t.row([
                    r.name.clone(),
                    cell(r.old),
                    cell(r.new),
                    match r.delta {
                        Some(d) => format!("{:+.1}%", d * 100.0),
                        None => "n/a".to_string(),
                    },
                    verdict.to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
        };
        section(
            "Simulator throughput (median cycles/sec; positive = faster)",
            "",
            &self.throughput,
            &mut out,
        );
        section(
            "Harness wall time (seconds; positive = faster)",
            "s",
            &self.harness_wall,
            &mut out,
        );
        let _ = writeln!(
            out,
            "noise threshold: {:.0}%  ->  {}",
            self.threshold * 100.0,
            if self.regressed() {
                "PERFORMANCE REGRESSION"
            } else {
                "no regression"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(cps: &[(&str, &[f64])], walls: &[(&str, Option<f64>)]) -> BenchArtifact {
        BenchArtifact {
            schema: SCHEMA_V2.to_string(),
            rate_mbps_per_node: 2_000.0,
            architectures: cps
                .iter()
                .map(|(a, ts)| ArchThroughput {
                    arch: a.to_string(),
                    cycles: 9_000,
                    trials_cps: ts.to_vec(),
                })
                .collect(),
            harnesses: walls
                .iter()
                .map(|(h, w)| HarnessTiming {
                    harness: h.to_string(),
                    args: vec!["--quick".to_string()],
                    wall_s: *w,
                })
                .collect(),
        }
    }

    #[test]
    fn v2_round_trips() {
        let a = artifact(
            &[("NoX", &[40_000.0, 44_000.0, 42_000.0])],
            &[("fig8", Some(61.0)), ("cmesh", None)],
        );
        let b = BenchArtifact::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(b.schema, SCHEMA_V2);
        assert_eq!(b.architectures[0].trials_cps.len(), 3);
        assert_eq!(b.architectures[0].median_cps(), 42_000.0);
        assert_eq!(b.harnesses[1].wall_s, None);
    }

    #[test]
    fn median_min_spread() {
        let a = ArchThroughput {
            arch: "NoX".into(),
            cycles: 1,
            trials_cps: vec![50.0, 40.0, 44.0, 46.0, 42.0],
        };
        assert_eq!(a.median_cps(), 44.0);
        assert_eq!(a.min_cps(), 40.0);
        assert_eq!(a.max_cps(), 50.0);
        assert!((a.spread() - 10.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn parses_v1_documents() {
        let v1 = r#"{
          "schema": "nox-bench/sim-throughput/v1",
          "rate_mbps_per_node": 2000,
          "architectures": [
            {"arch": "NoX", "cycles": 9887, "wall_s": 0.22, "cycles_per_sec": 43456.6}
          ],
          "figure_harnesses": [
            {"harness": "fig8", "args": ["--quick"], "wall_s": 60.9}
          ]
        }"#;
        let a = BenchArtifact::parse(v1).unwrap();
        assert_eq!(a.architectures[0].trials_cps, vec![43456.6]);
        assert_eq!(a.architectures[0].median_cps(), 43456.6);
        assert_eq!(a.harnesses[0].wall_s, Some(60.9));
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let old = artifact(
            &[("NoX", &[40_000.0]), ("Spec-Fast", &[30_000.0])],
            &[("fig8", Some(60.0))],
        );
        // NoX 5% slower (noise), Spec-Fast 50% slower (regression),
        // fig8 30% slower wall (regression).
        let new = artifact(
            &[("NoX", &[38_000.0]), ("Spec-Fast", &[15_000.0])],
            &[("fig8", Some(78.0))],
        );
        let c = compare(&old, &new, DEFAULT_NOISE_THRESHOLD);
        assert!(!c.throughput[0].regressed);
        assert!(c.throughput[1].regressed);
        assert!(c.harness_wall[0].regressed);
        assert!(c.regressed());

        let same = compare(&old, &old, DEFAULT_NOISE_THRESHOLD);
        assert!(!same.regressed());
    }

    #[test]
    fn trimmed_median_drops_one_outlier_each_side() {
        let a = ArchThroughput {
            arch: "NoX".into(),
            cycles: 1,
            trials_cps: vec![100_000.0, 40.0, 44.0, 46.0, 42.0],
        };
        // The 100k outlier is trimmed away with the slowest trial.
        assert_eq!(a.trimmed_median_cps(), 44.0);
        assert!((a.trimmed_spread() - 4.0 / 44.0).abs() < 1e-12);
        // Too few trials to trim: falls back to the plain stats.
        let b = ArchThroughput {
            arch: "NoX".into(),
            cycles: 1,
            trials_cps: vec![40.0, 44.0],
        };
        assert_eq!(b.trimmed_median_cps(), b.median_cps());
    }

    #[test]
    fn harness_rows_cover_both_artifacts() {
        let old = artifact(
            &[("NoX", &[40_000.0])],
            &[("fig8", Some(60.0)), ("old_only", Some(5.0))],
        );
        let new = artifact(
            &[("NoX", &[41_000.0])],
            &[
                ("fig8", Some(61.0)),
                ("new_only", Some(7.0)),
                ("skipped", None),
            ],
        );
        let c = compare(&old, &new, DEFAULT_NOISE_THRESHOLD);
        let row = |name: &str| c.harness_wall.iter().find(|r| r.name == name).unwrap();
        assert_eq!(c.harness_wall.len(), 4);
        assert!(row("fig8").delta.is_some() && !row("fig8").regressed);
        assert_eq!(row("new_only").old, None);
        assert_eq!(row("old_only").new, None);
        assert!(!row("new_only").regressed && !row("old_only").regressed);
        let s = c.render();
        assert!(s.contains("new"), "missing 'new' verdict: {s}");
        assert!(s.contains("gone"), "missing 'gone' verdict: {s}");
        assert!(s.contains("n/a"));
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(BenchArtifact::parse("{}").is_err());
        assert!(BenchArtifact::parse(r#"{"schema": "bogus/v9"}"#).is_err());
    }
}
