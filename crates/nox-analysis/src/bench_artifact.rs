//! The `BENCH_sim_throughput.json` performance artifact — the
//! simulator's own speed, tracked across commits — and the regression
//! comparison behind `noxsim bench-compare`.
//!
//! v2 of the schema records N trials per architecture and reports the
//! median/min/max cycles-per-second, because single-shot wall-clock
//! numbers on shared CI runners are too noisy to diff. The parser also
//! accepts the original v1 documents (one measurement, treated as a
//! single-trial median) so old committed artifacts stay comparable.

use std::fmt::Write as _;

use crate::json::Json;

/// Versioned schema of the v2 document this module emits.
pub const SCHEMA_V2: &str = "nox-bench/sim-throughput/v2";

/// The v1 schema the parser still accepts.
pub const SCHEMA_V1: &str = "nox-bench/sim-throughput/v1";

/// Relative slowdown tolerated before `compare` flags a regression
/// (median-to-median), as a fraction.
pub const DEFAULT_NOISE_THRESHOLD: f64 = 0.10;

/// Multi-trial simulator throughput of one architecture.
#[derive(Clone, Debug)]
pub struct ArchThroughput {
    /// Architecture display name.
    pub arch: String,
    /// Simulated cycles per run (identical across trials).
    pub cycles: u64,
    /// Cycles per wall-clock second, one entry per trial, as measured.
    pub trials_cps: Vec<f64>,
}

impl ArchThroughput {
    /// Median cycles/second across trials.
    pub fn median_cps(&self) -> f64 {
        percentile_sorted(&self.sorted(), 0.5)
    }

    /// Slowest trial.
    pub fn min_cps(&self) -> f64 {
        self.sorted().first().copied().unwrap_or(f64::NAN)
    }

    /// Fastest trial.
    pub fn max_cps(&self) -> f64 {
        self.sorted().last().copied().unwrap_or(f64::NAN)
    }

    /// Relative spread: (max - min) / median.
    pub fn spread(&self) -> f64 {
        (self.max_cps() - self.min_cps()) / self.median_cps()
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v = self.trials_cps.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// One figure harness's wall time (single run; these are coarse).
#[derive(Clone, Debug)]
pub struct HarnessTiming {
    /// Binary name.
    pub harness: String,
    /// Arguments it ran with.
    pub args: Vec<String>,
    /// Wall seconds, or `None` if the binary was skipped.
    pub wall_s: Option<f64>,
}

/// A parsed `BENCH_sim_throughput.json` document (either version).
#[derive(Clone, Debug)]
pub struct BenchArtifact {
    /// The document's schema string.
    pub schema: String,
    /// Offered load of the throughput runs, MB/s per node.
    pub rate_mbps_per_node: f64,
    /// Per-architecture throughput.
    pub architectures: Vec<ArchThroughput>,
    /// Per-harness wall times.
    pub harnesses: Vec<HarnessTiming>,
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

impl BenchArtifact {
    /// Builds the v2 JSON document.
    pub fn to_json(&self) -> Json {
        let archs = self
            .architectures
            .iter()
            .map(|a| {
                Json::obj()
                    .field("arch", a.arch.clone())
                    .field("cycles", a.cycles)
                    .field("trials_cps", a.trials_cps.clone())
                    .field("median_cps", a.median_cps())
                    .field("min_cps", a.min_cps())
                    .field("max_cps", a.max_cps())
                    .field("spread", a.spread())
            })
            .collect::<Vec<_>>();
        let harnesses = self
            .harnesses
            .iter()
            .map(|h| {
                Json::obj()
                    .field("harness", h.harness.clone())
                    .field("args", h.args.clone())
                    .field("wall_s", h.wall_s)
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", SCHEMA_V2)
            .field("rate_mbps_per_node", self.rate_mbps_per_node)
            .field("architectures", Json::Arr(archs))
            .field("figure_harnesses", Json::Arr(harnesses))
    }

    /// Parses a v2 or v1 document.
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("artifact has no schema")?
            .to_string();
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 {
            return Err(format!("unknown artifact schema {schema:?}"));
        }
        let rate = doc
            .get("rate_mbps_per_node")
            .and_then(Json::as_f64)
            .ok_or("artifact has no rate_mbps_per_node")?;
        let architectures = doc
            .get("architectures")
            .and_then(Json::as_array)
            .ok_or("artifact has no architectures")?
            .iter()
            .map(|a| {
                let arch = a
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("architecture without name")?
                    .to_string();
                let cycles = a
                    .get("cycles")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{arch}: no cycles"))?;
                // v2 carries the trial list; v1 carried one measurement.
                let trials_cps = match a.get("trials_cps").and_then(Json::as_array) {
                    Some(ts) => ts
                        .iter()
                        .map(|t| t.as_f64().ok_or_else(|| format!("{arch}: bad trial")))
                        .collect::<Result<Vec<_>, _>>()?,
                    None => vec![a
                        .get("cycles_per_sec")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("{arch}: no cycles_per_sec"))?],
                };
                if trials_cps.is_empty() {
                    return Err(format!("{arch}: empty trial list"));
                }
                Ok(ArchThroughput {
                    arch,
                    cycles,
                    trials_cps,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let harnesses = doc
            .get("figure_harnesses")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|h| {
                let harness = h
                    .get("harness")
                    .and_then(Json::as_str)
                    .ok_or("harness without name")?
                    .to_string();
                let args = h
                    .get("args")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|a| a.as_str().map(str::to_string))
                    .collect();
                Ok(HarnessTiming {
                    harness,
                    args,
                    wall_s: h.get("wall_s").and_then(Json::as_f64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchArtifact {
            schema,
            rate_mbps_per_node: rate,
            architectures,
            harnesses,
        })
    }
}

/// One line of a `bench-compare` verdict.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// What is being compared (arch or harness name).
    pub name: String,
    /// Old value (median cycles/sec, or harness wall seconds).
    pub old: f64,
    /// New value, same unit.
    pub new: f64,
    /// Relative change, sign-adjusted so positive = better.
    pub delta: f64,
    /// `true` when the change exceeds the noise threshold in the bad
    /// direction.
    pub regressed: bool,
}

/// The result of comparing two artifacts.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Noise threshold used, as a fraction.
    pub threshold: f64,
    /// Simulator-throughput rows (higher cycles/sec = better).
    pub throughput: Vec<CompareRow>,
    /// Harness wall-time rows (lower seconds = better). Only harnesses
    /// timed in both artifacts with identical args are compared.
    pub harness_wall: Vec<CompareRow>,
}

/// Compares two artifacts with a relative `threshold` (e.g. 0.10).
pub fn compare(old: &BenchArtifact, new: &BenchArtifact, threshold: f64) -> Comparison {
    let throughput = new
        .architectures
        .iter()
        .filter_map(|n| {
            let o = old.architectures.iter().find(|o| o.arch == n.arch)?;
            let (ov, nv) = (o.median_cps(), n.median_cps());
            Some(CompareRow {
                name: n.arch.clone(),
                old: ov,
                new: nv,
                delta: nv / ov - 1.0,
                regressed: nv < ov * (1.0 - threshold),
            })
        })
        .collect();
    let harness_wall = new
        .harnesses
        .iter()
        .filter_map(|n| {
            let o = old
                .harnesses
                .iter()
                .find(|o| o.harness == n.harness && o.args == n.args)?;
            let (ov, nv) = (o.wall_s?, n.wall_s?);
            Some(CompareRow {
                name: n.harness.clone(),
                old: ov,
                new: nv,
                delta: ov / nv - 1.0,
                regressed: nv > ov * (1.0 + threshold),
            })
        })
        .collect();
    Comparison {
        threshold,
        throughput,
        harness_wall,
    }
}

impl Comparison {
    /// `true` when any row regressed beyond the threshold.
    pub fn regressed(&self) -> bool {
        self.throughput
            .iter()
            .chain(&self.harness_wall)
            .any(|r| r.regressed)
    }

    /// The human-readable comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let section = |title: &str, unit: &str, rows: &[CompareRow], out: &mut String| {
            if rows.is_empty() {
                return;
            }
            let mut t = crate::Table::new(title, &["name", "old", "new", "change", "verdict"]);
            for r in rows {
                t.row([
                    r.name.clone(),
                    format!("{:.1}{unit}", r.old),
                    format!("{:.1}{unit}", r.new),
                    format!("{:+.1}%", r.delta * 100.0),
                    if r.regressed { "REGRESSED" } else { "ok" }.to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
        };
        section(
            "Simulator throughput (median cycles/sec; positive = faster)",
            "",
            &self.throughput,
            &mut out,
        );
        section(
            "Harness wall time (seconds; positive = faster)",
            "s",
            &self.harness_wall,
            &mut out,
        );
        let _ = writeln!(
            out,
            "noise threshold: {:.0}%  ->  {}",
            self.threshold * 100.0,
            if self.regressed() {
                "PERFORMANCE REGRESSION"
            } else {
                "no regression"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(cps: &[(&str, &[f64])], walls: &[(&str, Option<f64>)]) -> BenchArtifact {
        BenchArtifact {
            schema: SCHEMA_V2.to_string(),
            rate_mbps_per_node: 2_000.0,
            architectures: cps
                .iter()
                .map(|(a, ts)| ArchThroughput {
                    arch: a.to_string(),
                    cycles: 9_000,
                    trials_cps: ts.to_vec(),
                })
                .collect(),
            harnesses: walls
                .iter()
                .map(|(h, w)| HarnessTiming {
                    harness: h.to_string(),
                    args: vec!["--quick".to_string()],
                    wall_s: *w,
                })
                .collect(),
        }
    }

    #[test]
    fn v2_round_trips() {
        let a = artifact(
            &[("NoX", &[40_000.0, 44_000.0, 42_000.0])],
            &[("fig8", Some(61.0)), ("cmesh", None)],
        );
        let b = BenchArtifact::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(b.schema, SCHEMA_V2);
        assert_eq!(b.architectures[0].trials_cps.len(), 3);
        assert_eq!(b.architectures[0].median_cps(), 42_000.0);
        assert_eq!(b.harnesses[1].wall_s, None);
    }

    #[test]
    fn median_min_spread() {
        let a = ArchThroughput {
            arch: "NoX".into(),
            cycles: 1,
            trials_cps: vec![50.0, 40.0, 44.0, 46.0, 42.0],
        };
        assert_eq!(a.median_cps(), 44.0);
        assert_eq!(a.min_cps(), 40.0);
        assert_eq!(a.max_cps(), 50.0);
        assert!((a.spread() - 10.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn parses_v1_documents() {
        let v1 = r#"{
          "schema": "nox-bench/sim-throughput/v1",
          "rate_mbps_per_node": 2000,
          "architectures": [
            {"arch": "NoX", "cycles": 9887, "wall_s": 0.22, "cycles_per_sec": 43456.6}
          ],
          "figure_harnesses": [
            {"harness": "fig8", "args": ["--quick"], "wall_s": 60.9}
          ]
        }"#;
        let a = BenchArtifact::parse(v1).unwrap();
        assert_eq!(a.architectures[0].trials_cps, vec![43456.6]);
        assert_eq!(a.architectures[0].median_cps(), 43456.6);
        assert_eq!(a.harnesses[0].wall_s, Some(60.9));
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let old = artifact(
            &[("NoX", &[40_000.0]), ("Spec-Fast", &[30_000.0])],
            &[("fig8", Some(60.0))],
        );
        // NoX 5% slower (noise), Spec-Fast 50% slower (regression),
        // fig8 30% slower wall (regression).
        let new = artifact(
            &[("NoX", &[38_000.0]), ("Spec-Fast", &[15_000.0])],
            &[("fig8", Some(78.0))],
        );
        let c = compare(&old, &new, DEFAULT_NOISE_THRESHOLD);
        assert!(!c.throughput[0].regressed);
        assert!(c.throughput[1].regressed);
        assert!(c.harness_wall[0].regressed);
        assert!(c.regressed());

        let same = compare(&old, &old, DEFAULT_NOISE_THRESHOLD);
        assert!(!same.regressed());
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(BenchArtifact::parse("{}").is_err());
        assert!(BenchArtifact::parse(r#"{"schema": "bogus/v9"}"#).is_err());
    }
}
