//! Application-workload runs (Figures 10, 11).
//!
//! Each workload produces two traces — request and reply network — that
//! run through two independent physical networks of the same router
//! architecture (§5.2's dual-network CMP). Latency is averaged over
//! packets of both networks; energy is summed.

use nox_power::energy::EnergyModel;
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec};
use nox_sim::topology::Mesh;
use nox_traffic::cmp::{synthesize, Workload};

/// The outcome of one workload on one architecture.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// Router architecture.
    pub arch: Arch,
    /// Workload name.
    pub workload: &'static str,
    /// Mean packet latency across both networks, nanoseconds.
    pub latency_ns: f64,
    /// Mean packet latency on the request network alone.
    pub request_latency_ns: f64,
    /// Mean packet latency on the reply network alone.
    pub reply_latency_ns: f64,
    /// Mean dynamic energy per packet across both networks, picojoules.
    pub energy_per_packet_pj: f64,
    /// Energy-delay^2 figure of merit (pJ * ns^2).
    pub ed2: f64,
    /// `true` when all measured packets of both networks drained.
    pub drained: bool,
}

/// Default measurement phases for application runs.
pub fn app_run_spec() -> RunSpec {
    RunSpec {
        warmup_ns: 1_500.0,
        measure_ns: 6_000.0,
        drain_ns: 60_000.0,
    }
}

/// Trace duration that comfortably covers [`app_run_spec`].
pub const APP_TRACE_NS: f64 = 40_000.0;

/// Runs `workload` on both physical networks of `arch` with the default
/// trace length ([`APP_TRACE_NS`]).
pub fn run_workload(arch: Arch, w: &Workload, seed: u64, spec: &RunSpec) -> AppResult {
    run_workload_sized(arch, w, seed, spec, APP_TRACE_NS)
}

/// Runs `workload` on both physical networks of `arch`, synthesizing
/// `trace_ns` of traffic (shortened by the smoke tier; `spec` must fit
/// inside it).
pub fn run_workload_sized(
    arch: Arch,
    w: &Workload,
    seed: u64,
    spec: &RunSpec,
    trace_ns: f64,
) -> AppResult {
    let net = NetConfig::paper(arch);
    let mesh = Mesh::new(net.width, net.height);
    let traces = synthesize(mesh, w, trace_ns, seed);
    let model = EnergyModel::for_arch(arch);

    let rq = run(net, &traces.request, spec);
    let rp = run(net, &traces.reply, spec);

    let packets = (rq.latency_ns.count() + rp.latency_ns.count()).max(1) as f64;
    let latency_ns = (rq.latency_ns.sum() + rp.latency_ns.sum()) / packets;
    let energy_pj = model.total_pj(&rq.window_counters) + model.total_pj(&rp.window_counters);
    let ejected =
        (rq.window_counters.packets_ejected + rp.window_counters.packets_ejected).max(1) as f64;
    let energy_per_packet_pj = energy_pj / ejected;

    AppResult {
        arch,
        workload: w.name,
        latency_ns,
        request_latency_ns: rq.avg_latency_ns(),
        reply_latency_ns: rp.avg_latency_ns(),
        energy_per_packet_pj,
        ed2: energy_per_packet_pj * latency_ns * latency_ns,
        drained: rq.drained && rp.drained,
    }
}

/// Geometric-mean improvement of `a` over `b` in ED^2 across paired
/// results, in percent (positive = `a` better). This is how the paper
/// summarizes Figure 11 ("on average the NoX architecture outperforms
/// ... by 29.5%, 34.4%, and 2.7%").
pub fn mean_ed2_improvement_pct(a: &[AppResult], b: &[AppResult]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired result sets required");
    assert!(!a.is_empty(), "need at least one workload");
    let log_sum: f64 = a
        .iter()
        .zip(b)
        .map(|(ra, rb)| {
            assert_eq!(ra.workload, rb.workload, "mismatched workload pairing");
            (rb.ed2 / ra.ed2).ln()
        })
        .sum();
    ((log_sum / a.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nox_traffic::cmp::workload;

    fn quick_spec() -> RunSpec {
        RunSpec {
            warmup_ns: 500.0,
            measure_ns: 1_500.0,
            drain_ns: 40_000.0,
        }
    }

    #[test]
    fn light_workload_runs_on_all_architectures() {
        let w = workload("water").unwrap();
        for arch in Arch::ALL {
            let r = run_workload(arch, w, 3, &quick_spec());
            assert!(r.drained, "{arch} failed to drain water");
            assert!(r.latency_ns > 0.0);
            assert!(r.energy_per_packet_pj > 0.0);
            assert!(r.ed2 > 0.0);
        }
    }

    #[test]
    fn reply_network_is_slower_than_request_network() {
        // Data packets (9 flits) dominate the reply network.
        let r = run_workload(Arch::Nox, workload("lu").unwrap(), 3, &quick_spec());
        assert!(r.reply_latency_ns > r.request_latency_ns);
    }

    #[test]
    fn ed2_improvement_is_signed_correctly() {
        let mk = |ed2: f64| AppResult {
            arch: Arch::Nox,
            workload: "x",
            latency_ns: 1.0,
            request_latency_ns: 1.0,
            reply_latency_ns: 1.0,
            energy_per_packet_pj: 1.0,
            ed2,
            drained: true,
        };
        let a = vec![mk(1.0)];
        let b = vec![mk(1.3)];
        let pct = mean_ed2_improvement_pct(&a, &b);
        assert!((pct - 30.0).abs() < 1e-9);
        assert!(mean_ed2_improvement_pct(&b, &a) < 0.0);
    }
}
