//! Claims-as-code: the machine-checkable conformance registry.
//!
//! Every headline claim EXPERIMENTS.md makes about this reproduction is
//! encoded here as a typed record — a stable ID (`fig8.uniform.nox_throughput`,
//! `table2.nox_clock`, ...), the paper's statement, a *shape* predicate
//! (the qualitative trend that must reproduce) and, where the paper
//! commits to a number, a *quantitative* tolerance band. `noxsim claims`
//! evaluates the whole registry against live harness runs, emits a
//! versioned `claims_report.json`, and diffs the statuses against the
//! committed `CLAIMS_BASELINE.json`, failing on any claim whose status
//! got worse — so "13 of 15 claims reproduce in shape, 8 quantitatively"
//! is a CI-enforced invariant instead of prose.
//!
//! Tolerance bands are calibrated for the `quick`/`smoke` tiers (500
//! MB/s-grid sweeps), wide enough to absorb grid coarseness but tight
//! enough that a behavioural regression in the simulator flips the
//! status. The two claims that genuinely do not reproduce (the Fig 8a
//! crossover rate and the Fig 11 ED² magnitudes — see EXPERIMENTS.md's
//! delta analyses) are encoded with their honest `fail` status, and the
//! baseline pins them there: silently *fixing* them would also show up
//! in the diff, as an improvement.

use std::fmt::Write as _;

use crate::harness::appstudy::AppStudy;
use crate::harness::faults::FaultStudy;
use crate::harness::fig11::PAPER_IMPROVEMENTS_PCT;
use crate::harness::synthetic::SyntheticStudy;
use crate::harness::{appstudy, faults, fig12, fig13, figs237, synthetic, table2, Tier};
use crate::json::Json;
use nox_sim::config::Arch;

/// Versioned schema of `claims_report.json`.
pub const REPORT_SCHEMA: &str = "nox-claims/report/v1";

/// Versioned schema of `CLAIMS_BASELINE.json`.
pub const BASELINE_SCHEMA: &str = "nox-claims/baseline/v1";

/// Conformance status of one claim, ordered worst to best.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// The qualitative trend did not reproduce.
    Fail,
    /// The trend reproduces; the number (if any) does not.
    Shape,
    /// The trend reproduces and the number sits inside the band.
    Quantitative,
}

impl Status {
    /// The status's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Status::Fail => "fail",
            Status::Shape => "shape",
            Status::Quantitative => "quantitative",
        }
    }

    /// Parses a status name.
    pub fn parse(name: &str) -> Option<Status> {
        match name {
            "fail" => Some(Status::Fail),
            "shape" => Some(Status::Shape),
            "quantitative" => Some(Status::Quantitative),
            _ => None,
        }
    }
}

/// The static description of one claim.
#[derive(Debug)]
pub struct ClaimSpec {
    /// Stable ID: `<figure>.<scenario>.<aspect>` (also the tag carried
    /// by the corresponding EXPERIMENTS.md row).
    pub id: &'static str,
    /// Where the paper states it.
    pub source: &'static str,
    /// The paper's claim, verbatim enough to recognise.
    pub paper: &'static str,
    /// The quantitative band, human-readable, or `None` for claims that
    /// only commit to a trend (their best status is [`Status::Shape`]).
    pub quant: Option<&'static str>,
}

/// The full registry, in EXPERIMENTS.md order.
pub static REGISTRY: [ClaimSpec; 19] = [
    ClaimSpec {
        id: "figs237.golden_traces",
        source: "Figures 2, 3, 7",
        paper: "the cycle-by-cycle transmit/receive/speculation examples",
        quant: Some("all five golden traces identical, cycle for cycle"),
    },
    ClaimSpec {
        id: "table2.nox_clock",
        source: "Table 2",
        paper: "clock periods 0.92 / 0.69 / 0.72 / 0.76 ns",
        quant: Some("modeled periods equal the published ones exactly"),
    },
    ClaimSpec {
        id: "table2.decode_overhead",
        source: "Table 2 / §4.3",
        paper: "NoX decode adds ~40 ps over Spec-Accurate",
        quant: Some("decode overhead within 40 +/- 10 ps"),
    },
    ClaimSpec {
        id: "fig8.uniform.spec_fast_low_load",
        source: "Figure 8a",
        paper: "Spec-Fast is the best network at low load, up to 575 MB/s/node",
        quant: Some("Spec-Fast's lead ends between 525 and 700 MB/s/node (575 +/- ~20%)"),
    },
    ClaimSpec {
        id: "fig8.uniform.crossover",
        source: "Figure 8a",
        paper: "NoX overtakes Spec-Accurate from 750 MB/s/node (~27% of NoX saturation)",
        quant: Some("crossover between 20% and 34% of NoX saturation"),
    },
    ClaimSpec {
        id: "fig8.uniform.nox_throughput",
        source: "Figure 8a / §5.1",
        paper: "NoX's saturation throughput is the highest, up to +9.9% over all others",
        quant: Some("NoX gain over best other within +2% .. +25%"),
    },
    ClaimSpec {
        id: "fig8.low_path_variation",
        source: "Figure 8b,c / §5.1",
        paper: "on low-path-variation patterns NoX's gain is normally sufficient to compensate for its slower clock",
        quant: Some("transpose and bit-complement saturations within +/-2.5% of best other"),
    },
    ClaimSpec {
        id: "fig8.self_similar",
        source: "Figure 8d / §5.1",
        paper: "bursty self-similar traffic amplifies NoX's advantage; Spec-Fast collapses",
        quant: None,
    },
    ClaimSpec {
        id: "fig9.ed2_amplified",
        source: "Figure 9",
        paper: "the latency trends are amplified on an energy-delay^2 basis",
        quant: Some("ED^2 gaps at the comparison point within ~2x of the paper's Fig 11 averages"),
    },
    ClaimSpec {
        id: "fig10.nox_optimal",
        source: "Figure 10 / §5.2",
        paper: "NoX is the optimal network given the application workloads",
        quant: Some("lowest mean latency and best on at least 5 of 9 workloads"),
    },
    ClaimSpec {
        id: "fig10.spec_fast_overaggressive",
        source: "Figure 10 / §5.2",
        paper: "Spec-Fast is overly aggressive; even the non-speculative router can beat it",
        quant: None,
    },
    ClaimSpec {
        id: "fig11.ed2_ordering",
        source: "Figure 11 / §5.2",
        paper: "NoX beats all three on mean ED^2, with Spec-Accurate the closest competitor",
        quant: Some("each improvement within +/-10pp of the paper's +29.5/+34.4/+2.7%"),
    },
    ClaimSpec {
        id: "fig11.ed2_magnitude",
        source: "Figure 11 / §5.2",
        paper: "mean ED^2 improvements of +29.5% / +34.4% / +2.7%",
        quant: Some("each improvement within 3x of the paper's magnitude"),
    },
    ClaimSpec {
        id: "fig12.power_breakdown",
        source: "Figure 12 / §5.3",
        paper: "links ~74% of network power; Spec-Accurate +link/-switch/+total vs NoX; non-speculative lowest",
        quant: Some("link share 74 +/- 4pp; switch delta -2.4 +/- 2pp"),
    },
    ClaimSpec {
        id: "fig13.area_penalty",
        source: "Figure 13 / §6.2",
        paper: "NoX adds 28.2 um of horizontal length, a 17.2% router tile area penalty",
        quant: Some("penalty within 17.2 +/- 0.5pp, extra width exactly 28.2 um"),
    },
    // The two fault-study claims are about this reproduction's robustness
    // analysis (DESIGN.md §11), not numbers published in the paper: the
    // XOR chain's re-driven words make NoX measurably more exposed to
    // link faults, and the CRC + retransmission stack recovers it.
    ClaimSpec {
        id: "fault.nox_fragility",
        source: "Fault study / DESIGN.md §11",
        paper: "unprotected NoX suffers a strictly higher silent-corruption rate per injected bit flip than the non-speculative router — the XOR chain fans one flip into multiple corrupted deliveries",
        quant: Some("NoX delivers > 1 corrupted flit per flip, non-spec <= 1, amplification >= 1.05x"),
    },
    ClaimSpec {
        id: "fault.crc_retx_delivery",
        source: "Fault study / DESIGN.md §11",
        paper: "with CRC-8 sidebands and end-to-end retransmission every architecture recovers to 100% delivery with zero silent corruptions",
        quant: Some("all four architectures at 100% delivery; NoX worst-case recovery latency <= 20000 cycles"),
    },
    // The two statics claims are design-soundness properties the paper
    // relies on implicitly (DESIGN.md §13): XY dimension-order routing on
    // the 8x8 mesh is deadlock-free, and the paper's buffer depths cover
    // the credit round trip. Both are proved statically by `nox-statics`
    // rather than observed from simulation.
    ClaimSpec {
        id: "statics.mesh_xy_deadlock_free",
        source: "Static analysis / DESIGN.md §13",
        paper: "XY dimension-order routing on the paper's mesh admits no cyclic channel dependency, so the network cannot deadlock",
        quant: Some("every mesh/cmesh instance has an acyclic CDG (0 cyclic SCCs); the unrestricted ring counterexample is flagged with a concrete witness cycle"),
    },
    ClaimSpec {
        id: "statics.credit_sizing_sound",
        source: "Static analysis / DESIGN.md §13",
        paper: "the paper's 4-flit buffers cover the credit round trip, so flow control never throttles a link below full duty",
        quant: Some("round trip exactly 4 cycles vs depth 4 (duty 1.0) on every architecture; the undersized demo configuration is flagged"),
    },
];

/// Everything the registry needs, gathered once per evaluation so the
/// expensive sweeps are paid for exactly once (Figures 8 and 9 share the
/// synthetic study; Figures 10 and 11 share the application study).
pub struct ClaimInputs {
    /// Tier the inputs were gathered at.
    pub tier: Tier,
    /// Figures 2/3/7 golden traces.
    pub timing: figs237::TimingResult,
    /// Table 2 clock periods.
    pub table2: table2::Table2Result,
    /// The four-scenario synthetic study (Figures 8 and 9).
    pub synthetic: SyntheticStudy,
    /// The nine-workload application study (Figures 10 and 11).
    pub apps: AppStudy,
    /// Figure 12 power breakdown.
    pub power: fig12::PowerResult,
    /// Figure 13 area model.
    pub area: fig13::AreaResult,
    /// The fault-injection campaign study.
    pub faults: FaultStudy,
    /// The static design-analysis suite (deadlock CDGs, credit sizing).
    pub statics: nox_statics::StaticsReport,
}

impl ClaimInputs {
    /// Runs every harness the registry draws on, at `tier`, serially.
    pub fn gather(tier: Tier) -> ClaimInputs {
        Self::gather_with(tier, &nox_exec::Executor::sequential())
    }

    /// Runs every harness the registry draws on, at `tier`, fanning the
    /// three heavy studies (synthetic, apps, faults) out over `exec`.
    /// The timing/clock/power/area harnesses are single closed-form or
    /// golden-trace evaluations and stay serial. Every study reduces in
    /// submission order, so the inputs — and every claim evaluated from
    /// them — are bit-identical to the serial [`gather`](Self::gather)
    /// at any thread count.
    pub fn gather_with(tier: Tier, exec: &nox_exec::Executor) -> ClaimInputs {
        ClaimInputs {
            tier,
            timing: figs237::run(tier),
            table2: table2::run(tier),
            synthetic: synthetic::study_with(tier, exec),
            apps: appstudy::study_with(tier, exec),
            power: fig12::run(tier),
            area: fig13::run(tier),
            faults: faults::run_with(tier, exec),
            statics: nox_statics::standard_report(exec),
        }
    }
}

/// One evaluated claim.
#[derive(Clone, Debug)]
pub struct ClaimOutcome {
    /// The claim's registry entry.
    pub spec: &'static ClaimSpec,
    /// Evaluated status.
    pub status: Status,
    /// Human-readable measured summary.
    pub measured: String,
    /// The measured numbers behind the verdict, for the JSON document
    /// and band calibration.
    pub values: Vec<(&'static str, f64)>,
}

/// The evaluated registry.
#[derive(Clone, Debug)]
pub struct ClaimsReport {
    /// Tier the evaluation ran at.
    pub tier: Tier,
    /// One outcome per registry entry, registry order.
    pub outcomes: Vec<ClaimOutcome>,
}

/// Folds the two predicate results into a status.
fn status_of(shape: bool, quant: Option<bool>) -> Status {
    match (shape, quant) {
        (false, _) => Status::Fail,
        (true, Some(true)) => Status::Quantitative,
        (true, Some(false)) | (true, None) => Status::Shape,
    }
}

/// Evaluates the full registry against gathered inputs.
pub fn evaluate(x: &ClaimInputs) -> ClaimsReport {
    let outcomes = REGISTRY.iter().map(|spec| eval_one(spec, x)).collect();
    ClaimsReport {
        tier: x.tier,
        outcomes,
    }
}

fn eval_one(spec: &'static ClaimSpec, x: &ClaimInputs) -> ClaimOutcome {
    let (status, measured, values) = match spec.id {
        "figs237.golden_traces" => {
            let passed = x.timing.checks.iter().filter(|c| c.pass()).count();
            let total = x.timing.checks.len();
            (
                status_of(x.timing.all_pass(), Some(x.timing.all_pass())),
                format!("{passed}/{total} traces identical"),
                vec![("traces_passed", passed as f64)],
            )
        }
        "table2.nox_clock" => {
            let period = |a: Arch| {
                x.table2
                    .rows
                    .iter()
                    .find(|r| r.arch == a)
                    .expect("all archs present")
                    .modeled_ps
            };
            let ordered = period(Arch::SpecFast) < period(Arch::SpecAccurate)
                && period(Arch::SpecAccurate) < period(Arch::Nox)
                && period(Arch::Nox) < period(Arch::NonSpec);
            (
                status_of(ordered, Some(x.table2.all_match())),
                format!(
                    "NoX {:.0} ps, all rows match: {}",
                    period(Arch::Nox),
                    x.table2.all_match()
                ),
                vec![("nox_period_ps", period(Arch::Nox))],
            )
        }
        "table2.decode_overhead" => {
            let ov = x.table2.decode_overhead_ps;
            (
                status_of(ov > 0.0, Some((ov - 40.0).abs() <= 10.0)),
                format!("{ov:.0} ps"),
                vec![("decode_overhead_ps", ov)],
            )
        }
        "fig8.uniform.spec_fast_low_load" => {
            let sc = x.synthetic.scenario("uniform");
            let edge = sc.best_region_edge(Arch::SpecFast);
            let shape = sc.best_at_lowest_rate() == Some(Arch::SpecFast) && edge.is_some();
            // The lead's true end sits near 1250 MB/s/node on the full
            // grid (EXPERIMENTS.md: roughly 2x the paper's 575), so the
            // quantitative band stays unmet by design until the model
            // moves; the coarse 500-step tiers land at a neighbouring
            // grid point and must not pass it by accident either.
            let quant = edge.is_some_and(|e| (525.0..=700.0).contains(&e));
            (
                status_of(shape, Some(quant)),
                match edge {
                    Some(e) => format!("best up to {e:.0} MB/s/node (paper: 575)"),
                    None => "Spec-Fast never leads".to_string(),
                },
                edge.map(|e| ("spec_fast_edge_mbps", e))
                    .into_iter()
                    .collect(),
            )
        }
        "fig8.uniform.crossover" => {
            let sc = x.synthetic.scenario("uniform");
            let frac = sc
                .crossover(Arch::Nox, Arch::SpecAccurate)
                .map(|c| c / sc.saturation(Arch::Nox));
            let shape = frac.is_some_and(|f| (0.10..=0.40).contains(&f));
            let quant = frac.is_some_and(|f| (0.20..=0.34).contains(&f));
            (
                status_of(shape, Some(quant)),
                match frac {
                    Some(f) => format!(
                        "crossover at {:.0}% of NoX saturation (paper: ~27%)",
                        f * 100.0
                    ),
                    None => "NoX never overtakes Spec-Accurate".to_string(),
                },
                frac.map(|f| ("crossover_frac_of_saturation", f))
                    .into_iter()
                    .collect(),
            )
        }
        "fig8.uniform.nox_throughput" => {
            let sc = x.synthetic.scenario("uniform");
            let gain = sc.nox_saturation_gain();
            let highest = [Arch::NonSpec, Arch::SpecFast, Arch::SpecAccurate]
                .into_iter()
                .all(|a| sc.saturation(Arch::Nox) > sc.saturation(a));
            (
                status_of(highest, Some((0.02..=0.25).contains(&gain))),
                format!(
                    "NoX saturates {:+.1}% above best other (paper: up to +9.9%)",
                    gain * 100.0
                ),
                vec![("nox_gain", gain)],
            )
        }
        "fig8.low_path_variation" => {
            let gains: Vec<f64> = ["transpose", "bit_complement"]
                .iter()
                .map(|k| x.synthetic.scenario(k).nox_saturation_gain())
                .collect();
            let shape = gains.iter().all(|g| g.abs() <= 0.10);
            let quant = gains.iter().all(|g| g.abs() <= 0.025);
            (
                status_of(shape, Some(quant)),
                format!(
                    "transpose {:+.1}%, bit-complement {:+.1}% vs best other (paper: ties)",
                    gains[0] * 100.0,
                    gains[1] * 100.0
                ),
                vec![
                    ("transpose_gain", gains[0]),
                    ("bit_complement_gain", gains[1]),
                ],
            )
        }
        "fig8.self_similar" => {
            let ss = x.synthetic.scenario("self_similar");
            let uni = x.synthetic.scenario("uniform");
            let gain_ss = ss.nox_saturation_gain();
            let gain_uni = uni.nox_saturation_gain();
            // "Collapse" = Spec-Fast saturates well short of the best
            // non-bursty-fragile router. The full grid measures the gap
            // at 0.63x; 0.80 leaves room for the coarse 500-step tiers,
            // whose saturation estimates snap to grid points (0.77x at
            // quick), without letting a genuine recovery sneak past.
            let sf_collapse = ss.saturation(Arch::SpecFast)
                <= 0.80
                    * [Arch::NonSpec, Arch::SpecAccurate]
                        .into_iter()
                        .map(|a| ss.saturation(a))
                        .fold(0.0, f64::max);
            let shape = gain_ss >= gain_uni - 0.01 && sf_collapse;
            (
                status_of(shape, None),
                format!(
                    "NoX gain {:+.1}% self-similar vs {:+.1}% uniform; Spec-Fast collapse: {sf_collapse}",
                    gain_ss * 100.0,
                    gain_uni * 100.0
                ),
                vec![("self_similar_gain", gain_ss), ("uniform_gain", gain_uni)],
            )
        }
        "fig9.ed2_amplified" => {
            let sc = x.synthetic.scenario("uniform");
            let others = [Arch::NonSpec, Arch::SpecFast, Arch::SpecAccurate];
            let pairs: Vec<(Option<f64>, Option<f64>)> = others
                .iter()
                .map(|&a| (sc.ed2_vs_nox(a), sc.latency_vs_nox(a)))
                .collect();
            let shape = pairs
                .iter()
                .all(|(e, l)| matches!((e, l), (Some(e), Some(l)) if *e > 0.0 && e >= l));
            // The paper's only ED^2 numbers are the Fig 11 averages; the
            // synthetic comparison point sits far past them (EXPERIMENTS.md
            // delta: +269% .. +4597% at the last common drained rate).
            let quant = pairs
                .iter()
                .zip(PAPER_IMPROVEMENTS_PCT)
                .all(|((e, _), (_, paper))| e.is_some_and(|e| e * 100.0 <= 2.0 * paper));
            let ed2 = |i: usize| pairs[i].0.unwrap_or(f64::NAN);
            (
                status_of(shape, Some(quant)),
                format!(
                    "ED^2 vs NoX at comparison point: Non-Spec {:+.0}%, Spec-Fast {:+.0}%, Spec-Acc {:+.0}%",
                    ed2(0) * 100.0,
                    ed2(1) * 100.0,
                    ed2(2) * 100.0
                ),
                vec![
                    ("nonspec_ed2_vs_nox", ed2(0)),
                    ("spec_fast_ed2_vs_nox", ed2(1)),
                    ("spec_accurate_ed2_vs_nox", ed2(2)),
                ],
            )
        }
        "fig10.nox_optimal" => {
            let mean_nox = x.apps.mean_latency_ns(Arch::Nox);
            let lowest_mean = [Arch::NonSpec, Arch::SpecFast, Arch::SpecAccurate]
                .into_iter()
                .all(|a| mean_nox <= x.apps.mean_latency_ns(a));
            let wins = x.apps.wins(Arch::Nox);
            (
                status_of(lowest_mean, Some(lowest_mean && wins >= 5)),
                format!("best mean ({mean_nox:.1} ns), best on {wins}/9 workloads"),
                vec![("nox_mean_latency_ns", mean_nox), ("nox_wins", wins as f64)],
            )
        }
        "fig10.spec_fast_overaggressive" => {
            let nonspec_beats = x.apps.beats_on(Arch::NonSpec, Arch::SpecFast);
            let acc_beats_tpcc = x
                .apps
                .beats_on(Arch::SpecAccurate, Arch::SpecFast)
                .contains(&"tpcc");
            // Either signal demonstrates the overaggression: a slower-
            // clocked router winning the contended workload. The short
            // smoke windows keep the Spec-Acc signal but can lose the
            // narrower non-spec one.
            (
                status_of(!nonspec_beats.is_empty() || acc_beats_tpcc, None),
                format!(
                    "non-spec beats Spec-Fast on {nonspec_beats:?}; Spec-Acc beats it on tpcc: {acc_beats_tpcc}"
                ),
                vec![("nonspec_beats_spec_fast", nonspec_beats.len() as f64)],
            )
        }
        "fig11.ed2_ordering" => {
            let imp: Vec<f64> = PAPER_IMPROVEMENTS_PCT
                .iter()
                .map(|&(a, _)| x.apps.nox_ed2_improvement_pct(a))
                .collect();
            let shape = imp.iter().all(|&i| i > 0.0) && imp[2] < imp[0] && imp[2] < imp[1];
            let quant = imp
                .iter()
                .zip(PAPER_IMPROVEMENTS_PCT)
                .all(|(&i, (_, paper))| (i - paper).abs() <= 10.0);
            (
                status_of(shape, Some(quant)),
                format!(
                    "+{:.1}% / +{:.1}% / +{:.1}% (paper: +29.5/+34.4/+2.7%)",
                    imp[0], imp[1], imp[2]
                ),
                vec![
                    ("vs_nonspec_pct", imp[0]),
                    ("vs_spec_fast_pct", imp[1]),
                    ("vs_spec_accurate_pct", imp[2]),
                ],
            )
        }
        "fig11.ed2_magnitude" => {
            let ratios: Vec<f64> = PAPER_IMPROVEMENTS_PCT
                .iter()
                .map(|&(a, paper)| x.apps.nox_ed2_improvement_pct(a) / paper)
                .collect();
            let shape = ratios.iter().all(|&r| (1.0 / 3.0..=3.0).contains(&r));
            let quant = PAPER_IMPROVEMENTS_PCT
                .iter()
                .all(|&(a, paper)| (x.apps.nox_ed2_improvement_pct(a) - paper).abs() <= 5.0);
            (
                status_of(shape, Some(quant)),
                format!(
                    "magnitudes at {:.1}x / {:.1}x / {:.1}x of the paper's",
                    ratios[0], ratios[1], ratios[2]
                ),
                vec![
                    ("vs_nonspec_ratio", ratios[0]),
                    ("vs_spec_fast_ratio", ratios[1]),
                    ("vs_spec_accurate_ratio", ratios[2]),
                ],
            )
        }
        "fig12.power_breakdown" => {
            let link_share = x.power.nox_link_share();
            let d_link = x.power.acc_vs_nox(|b| b.link_pj);
            let d_switch = x.power.acc_vs_nox(|b| b.xbar_pj);
            let d_total = x.power.acc_vs_nox(|b| b.total_pj());
            let nox_total = x.power.row(Arch::Nox).breakdown.total_pj();
            let nonspec_lowest =
                x.power.rows.iter().all(|r| {
                    x.power.row(Arch::NonSpec).breakdown.total_pj() <= r.breakdown.total_pj()
                });
            let nonspec_vs_nox = x.power.row(Arch::NonSpec).breakdown.total_pj() / nox_total - 1.0;
            let shape = link_share > 0.5
                && d_link > 0.0
                && d_switch < 0.0
                && d_total > 0.0
                && nonspec_lowest;
            let quant = (link_share - 0.74).abs() <= 0.04 && (d_switch + 0.024).abs() <= 0.02;
            (
                status_of(shape, Some(quant)),
                format!(
                    "link share {:.1}%; Spec-Acc vs NoX: link {:+.1}%, switch {:+.1}%, total {:+.1}%; non-spec {:+.1}%",
                    link_share * 100.0,
                    d_link * 100.0,
                    d_switch * 100.0,
                    d_total * 100.0,
                    nonspec_vs_nox * 100.0
                ),
                vec![
                    ("nox_link_share", link_share),
                    ("acc_vs_nox_link", d_link),
                    ("acc_vs_nox_switch", d_switch),
                    ("acc_vs_nox_total", d_total),
                ],
            )
        }
        "fig13.area_penalty" => {
            let pen = x.area.area_penalty;
            (
                status_of((0.10..=0.25).contains(&pen), Some(x.area.matches_paper())),
                format!(
                    "{:.1}% penalty, +{:.1} um width (paper: 17.2%, 28.2 um)",
                    pen * 100.0,
                    x.area.extra_width_um
                ),
                vec![
                    ("area_penalty", pen),
                    ("extra_width_um", x.area.extra_width_um),
                ],
            )
        }
        "fault.nox_fragility" => {
            let amp = x.faults.nox_silent_amplification();
            let nox = x.faults.silent_per_flip(Arch::Nox);
            let nonspec = x.faults.silent_per_flip(Arch::NonSpec);
            let shape = x.faults.nox_fragility_holds();
            let quant = shape && amp >= 1.05;
            (
                status_of(shape, Some(quant)),
                format!(
                    "corrupted deliveries per flip: NoX {nox:.3} vs non-spec {nonspec:.3} ({amp:.2}x)"
                ),
                vec![
                    ("nox_silent_per_flip", nox),
                    ("nonspec_silent_per_flip", nonspec),
                    ("amplification", amp),
                ],
            )
        }
        "fault.crc_retx_delivery" => {
            let recovered: Vec<bool> = Arch::ALL
                .iter()
                .map(|&a| x.faults.full_recovery(a))
                .collect();
            let nox_ok = x.faults.full_recovery(Arch::Nox);
            let all_ok = recovered.iter().all(|&r| r);
            let max_lat = x.faults.nox_max_recovery_latency();
            (
                status_of(nox_ok, Some(all_ok && max_lat <= 20_000)),
                format!(
                    "full recovery on {}/4 architectures; NoX recovery latency <= {max_lat} cycles",
                    recovered.iter().filter(|&&r| r).count()
                ),
                vec![
                    (
                        "archs_fully_recovered",
                        recovered.iter().filter(|&&r| r).count() as f64,
                    ),
                    ("nox_max_recovery_latency_cycles", max_lat as f64),
                ],
            )
        }
        "statics.mesh_xy_deadlock_free" => {
            let safe: Vec<_> = x
                .statics
                .analyses
                .iter()
                .filter(|a| a.expect_safe)
                .collect();
            let unsafe_: Vec<_> = x
                .statics
                .analyses
                .iter()
                .filter(|a| !a.expect_safe)
                .collect();
            let meshes_acyclic =
                !safe.is_empty() && safe.iter().all(|a| a.deadlock_free && a.cyclic_sccs == 0);
            let ring_witnessed = !unsafe_.is_empty()
                && unsafe_
                    .iter()
                    .all(|a| !a.deadlock_free && !a.witnesses.is_empty());
            let channels: usize = safe.iter().map(|a| a.channels).sum();
            let routes: usize = x.statics.analyses.iter().map(|a| a.routes_walked).sum();
            (
                status_of(meshes_acyclic, Some(meshes_acyclic && ring_witnessed)),
                format!(
                    "{} XY instances acyclic over {} channels; ring counterexample witnessed: {} ({} routes walked)",
                    safe.len(),
                    channels,
                    ring_witnessed,
                    routes
                ),
                vec![
                    ("safe_instances_acyclic", meshes_acyclic as u8 as f64),
                    ("xy_channels_proved", channels as f64),
                    ("routes_walked", routes as f64),
                ],
            )
        }
        "statics.credit_sizing_sound" => {
            let paper: Vec<_> = x
                .statics
                .credits
                .iter()
                .filter(|c| c.expect_sound)
                .collect();
            let demos: Vec<_> = x
                .statics
                .credits
                .iter()
                .filter(|c| !c.expect_sound)
                .collect();
            let all_sound = !paper.is_empty() && paper.iter().all(|c| c.sound);
            let full_duty = paper.iter().all(|c| c.max_link_duty >= 1.0);
            let exactly_four = paper
                .iter()
                .all(|c| c.round_trip == 4 && c.buffer_depth as u64 == c.round_trip);
            let demo_flagged = !demos.is_empty() && demos.iter().all(|c| !c.sound);
            let worst_duty = paper.iter().map(|c| c.max_link_duty).fold(1.0, f64::min);
            (
                status_of(
                    all_sound && full_duty,
                    Some(exactly_four && demo_flagged),
                ),
                format!(
                    "{} paper configurations sound at full duty (exactly depth == round trip: {}); undersized demo flagged: {}",
                    paper.len(),
                    exactly_four,
                    demo_flagged
                ),
                vec![
                    ("paper_configs_sound", paper.iter().filter(|c| c.sound).count() as f64),
                    ("worst_paper_duty", worst_duty),
                ],
            )
        }
        other => unreachable!("claim {other:?} has no evaluator"),
    };
    ClaimOutcome {
        spec,
        status,
        measured,
        values,
    }
}

impl ClaimsReport {
    /// Claims whose shape (at least) reproduces.
    pub fn shape_or_better(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status >= Status::Shape)
            .count()
    }

    /// Claims inside their quantitative band.
    pub fn quantitative(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == Status::Quantitative)
            .count()
    }

    /// The outcome of one claim.
    pub fn outcome(&self, id: &str) -> Option<&ClaimOutcome> {
        self.outcomes.iter().find(|o| o.spec.id == id)
    }

    /// The human-readable conformance table.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(
            format!("Conformance claims ({} tier)", self.tier.name()),
            &["claim", "source", "status", "measured"],
        );
        for o in &self.outcomes {
            t.row([
                o.spec.id.to_string(),
                o.spec.source.to_string(),
                o.status.name().to_string(),
                o.measured.clone(),
            ]);
        }
        let mut out = format!("{t}");
        let _ = writeln!(
            out,
            "\n{} of {} claims reproduce in shape; {} quantitatively.",
            self.shape_or_better(),
            self.outcomes.len(),
            self.quantitative()
        );
        out
    }

    /// The versioned `claims_report.json` document.
    pub fn to_json(&self) -> Json {
        let claims = self
            .outcomes
            .iter()
            .map(|o| {
                let mut values = Json::obj();
                for &(k, v) in &o.values {
                    values = values.field(k, v);
                }
                Json::obj()
                    .field("id", o.spec.id)
                    .field("source", o.spec.source)
                    .field("paper", o.spec.paper)
                    .field(
                        "quant_band",
                        o.spec.quant.map(Json::from).unwrap_or(Json::Null),
                    )
                    .field("status", o.status.name())
                    .field("measured", o.measured.clone())
                    .field("values", values)
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", REPORT_SCHEMA)
            .field("tier", self.tier.name())
            .field("claims", Json::Arr(claims))
            .field(
                "summary",
                Json::obj()
                    .field("total", self.outcomes.len())
                    .field("shape_or_better", self.shape_or_better())
                    .field("quantitative", self.quantitative()),
            )
    }

    /// The baseline document pinning the current statuses.
    pub fn baseline_json(&self) -> Json {
        let claims = self
            .outcomes
            .iter()
            .map(|o| {
                Json::obj()
                    .field("id", o.spec.id)
                    .field("status", o.status.name())
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("schema", BASELINE_SCHEMA)
            .field("claims", Json::Arr(claims))
    }
}

/// The committed per-claim statuses (`CLAIMS_BASELINE.json`). Statuses
/// are tier-independent: the bands are calibrated so `quick` and `smoke`
/// agree (that agreement is itself exercised by the CI smoke leg).
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// `(claim id, pinned status)` in document order.
    pub entries: Vec<(String, Status)>,
}

/// One claim whose status moved below the baseline.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The claim ID.
    pub id: String,
    /// Status the baseline pins.
    pub baseline: Status,
    /// Status measured now (`None` if the claim vanished from the
    /// registry).
    pub current: Option<Status>,
}

impl Baseline {
    /// Parses a `CLAIMS_BASELINE.json` document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(BASELINE_SCHEMA) {
            return Err(format!(
                "unexpected baseline schema {schema:?} (want {BASELINE_SCHEMA:?})"
            ));
        }
        let claims = doc
            .get("claims")
            .and_then(Json::as_array)
            .ok_or("baseline has no claims array")?;
        let entries = claims
            .iter()
            .map(|c| {
                let id = c
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("claim without id")?;
                let status = c
                    .get("status")
                    .and_then(Json::as_str)
                    .and_then(Status::parse)
                    .ok_or_else(|| format!("claim {id} has no valid status"))?;
                Ok((id.to_string(), status))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Baseline { entries })
    }

    /// The pinned status of one claim.
    pub fn status(&self, id: &str) -> Option<Status> {
        self.entries.iter().find(|(i, _)| i == id).map(|&(_, s)| s)
    }

    /// Claims in `report` whose status fell below this baseline, plus
    /// pinned claims the report no longer evaluates.
    pub fn regressions(&self, report: &ClaimsReport) -> Vec<Regression> {
        self.entries
            .iter()
            .filter_map(|(id, pinned)| {
                let current = report.outcome(id).map(|o| o.status);
                match current {
                    Some(c) if c >= *pinned => None,
                    _ => Some(Regression {
                        id: id.clone(),
                        baseline: *pinned,
                        current,
                    }),
                }
            })
            .collect()
    }

    /// Claims in `report` whose status now exceeds the baseline
    /// (improvements worth re-pinning).
    pub fn improvements(&self, report: &ClaimsReport) -> Vec<(String, Status, Status)> {
        self.entries
            .iter()
            .filter_map(|(id, pinned)| {
                let current = report.outcome(id)?.status;
                (current > *pinned).then(|| (id.clone(), *pinned, current))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for spec in &REGISTRY {
            assert!(seen.insert(spec.id), "duplicate claim id {}", spec.id);
            assert!(
                spec.id
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "claim id {} has invalid characters",
                spec.id
            );
        }
        assert_eq!(REGISTRY.len(), 19);
    }

    #[test]
    fn status_order_and_names() {
        assert!(Status::Fail < Status::Shape);
        assert!(Status::Shape < Status::Quantitative);
        for s in [Status::Fail, Status::Shape, Status::Quantitative] {
            assert_eq!(Status::parse(s.name()), Some(s));
        }
        assert_eq!(Status::parse("ok"), None);
    }

    #[test]
    fn baseline_round_trips_and_diffs() {
        let report = ClaimsReport {
            tier: Tier::Smoke,
            outcomes: vec![
                ClaimOutcome {
                    spec: &REGISTRY[0],
                    status: Status::Quantitative,
                    measured: "5/5".into(),
                    values: vec![("traces_passed", 5.0)],
                },
                ClaimOutcome {
                    spec: &REGISTRY[1],
                    status: Status::Shape,
                    measured: "drifted".into(),
                    values: vec![],
                },
            ],
        };
        let baseline = Baseline::parse(&report.baseline_json().to_string()).unwrap();
        assert_eq!(baseline.status(REGISTRY[0].id), Some(Status::Quantitative));
        assert!(baseline.regressions(&report).is_empty());

        // A claim dropping below its pin is a regression; one missing
        // from the report entirely is too.
        let mut worse = report.clone();
        worse.outcomes[0].status = Status::Shape;
        worse.outcomes.remove(1);
        let regs = baseline.regressions(&worse);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].id, REGISTRY[0].id);
        assert_eq!(regs[0].current, Some(Status::Shape));
        assert_eq!(regs[1].current, None);

        // And a claim rising above its pin is an improvement, not a
        // regression.
        let mut better = report.clone();
        better.outcomes[1].status = Status::Quantitative;
        assert!(baseline.regressions(&better).is_empty());
        assert_eq!(baseline.improvements(&better).len(), 1);
    }

    #[test]
    fn newly_added_claims_never_regress_an_older_baseline() {
        // Growing the registry must not fail `noxsim claims` against a
        // baseline written before the new claims existed: the diff walks
        // the baseline's entries, so report-only claims are invisible to
        // it (whatever their status) until the baseline is re-pinned.
        let report = ClaimsReport {
            tier: Tier::Smoke,
            outcomes: vec![
                ClaimOutcome {
                    spec: &REGISTRY[0],
                    status: Status::Quantitative,
                    measured: "5/5".into(),
                    values: vec![],
                },
                ClaimOutcome {
                    spec: &REGISTRY[1],
                    status: Status::Fail,
                    measured: "brand new, still failing".into(),
                    values: vec![],
                },
            ],
        };
        let old = Baseline {
            entries: vec![(REGISTRY[0].id.to_string(), Status::Quantitative)],
        };
        assert!(old.regressions(&report).is_empty());
        assert!(old.improvements(&report).is_empty());
    }

    #[test]
    fn report_json_round_trips() {
        let report = ClaimsReport {
            tier: Tier::Quick,
            outcomes: vec![ClaimOutcome {
                spec: &REGISTRY[5],
                status: Status::Quantitative,
                measured: "+9.0%".into(),
                values: vec![("nox_gain", 0.09)],
            }],
        };
        let doc = Json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        let claims = doc.get("claims").and_then(Json::as_array).unwrap();
        assert_eq!(
            claims[0].get("id").and_then(Json::as_str),
            Some(REGISTRY[5].id)
        );
        assert_eq!(
            claims[0]
                .get("values")
                .and_then(|v| v.get("nox_gain"))
                .and_then(Json::as_f64),
            Some(0.09)
        );
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("quantitative").and_then(Json::as_u64), Some(1));
    }
}
