//! Phase-attribution profiles: the `nox-bench/profile/v1` artifact.
//!
//! [`collect`] runs a harness under the global profiling switch and
//! gathers everything the workspace's instrumentation recorded — the
//! simulator's mark-based phase totals, the executor's job/queue
//! histograms and worker gauges, and harness span counts — into one
//! [`ProfileReport`] with the usual three views: a human-readable
//! breakdown ([`render`](ProfileReport::render)), the versioned JSON
//! artifact ([`to_json`](ProfileReport::to_json)), and a
//! [`deterministic_view`](ProfileReport::deterministic_view) containing
//! only the scheduling-independent structure (phase set and counts,
//! named counters) that the telemetry tests compare byte-for-byte
//! across thread counts.
//!
//! Durations in a profile are wall-clock and therefore vary run to run;
//! they never feed a claims artifact. The *structure* is deterministic
//! because phases are a closed registry, counters are sums folded in
//! submission order, and everything scheduling-dependent (gauges,
//! histograms, span events) is excluded from the deterministic view.

use std::fmt::Write as _;

use crate::harness::Tier;
use crate::json::Json;
use crate::Table;
use nox_telemetry::phase::{self, SIM_ATTRIBUTED};
use nox_telemetry::{LogHist, ProfileAcc, Stopwatch};

/// Versioned schema of the profile artifact.
pub const SCHEMA: &str = "nox-bench/profile/v1";

/// One collected profile: a harness run's accumulated telemetry plus the
/// run parameters that contextualize it.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Harness name the profile attributes (e.g. `fig12`).
    pub harness: String,
    /// Tier the harness ran at.
    pub tier: Tier,
    /// Executor width the harness ran with.
    pub threads: usize,
    /// Everything the instrumentation recorded.
    pub acc: ProfileAcc,
}

/// Runs `f` with profiling enabled on a clean accumulator and collects
/// the result into a [`ProfileReport`]. The whole run is recorded as one
/// `profile.total` span, so phase shares have a denominator even when
/// the harness spends time outside the simulator.
pub fn collect<R>(
    harness: &str,
    tier: Tier,
    threads: usize,
    f: impl FnOnce() -> R,
) -> (R, ProfileReport) {
    nox_telemetry::set_profiling(true);
    let _ = nox_telemetry::take_acc();
    let sw = Stopwatch::start();
    let result = f();
    let total_ns = sw.elapsed_ns();
    let mut acc = nox_telemetry::take_acc().map(|b| *b).unwrap_or_default();
    nox_telemetry::set_profiling(false);
    acc.add_span(phase::PROFILE_TOTAL, total_ns);
    (
        result,
        ProfileReport {
            harness: harness.to_string(),
            tier,
            threads,
            acc,
        },
    )
}

impl ProfileReport {
    /// Total profiled wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.acc.phase(phase::PROFILE_TOTAL).nanos
    }

    /// The fraction of measured simulator step time attributed to a
    /// named phase (everything but the residual `sim.other`), or `None`
    /// when the harness ran no simulation. The marks partition each step
    /// exactly, so this is 1.0 minus the `sim.other` residual.
    pub fn sim_coverage(&self) -> Option<f64> {
        let step = self.acc.phase(phase::SIM_STEP).nanos;
        if step == 0 {
            return None;
        }
        let attributed: u64 = SIM_ATTRIBUTED
            .iter()
            .map(|&p| self.acc.phase(p).nanos)
            .sum();
        Some(attributed as f64 / step as f64)
    }

    /// Per-worker `(jobs, busy_ns, wait_ns)` rows recovered from the
    /// executor's gauges, in worker order.
    pub fn workers(&self) -> Vec<(usize, u64, u64, u64)> {
        let mut rows = Vec::new();
        for w in 0.. {
            let get = |k: &str| {
                self.acc
                    .gauges()
                    .get(&format!("exec.worker.{w}.{k}"))
                    .copied()
            };
            let Some(jobs) = get("jobs") else { break };
            rows.push((
                w,
                jobs,
                get("busy_ns").unwrap_or(0),
                get("wait_ns").unwrap_or(0),
            ));
        }
        rows
    }

    /// The human-readable breakdown: phase attribution, executor load
    /// balance, and latency histogram summaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total_ns().max(1);
        let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
        let pct = |ns: u64| format!("{:.1}", ns as f64 / total as f64 * 100.0);

        let mut t = Table::new(
            format!(
                "Profile: {} ({}, {} thread{})",
                self.harness,
                self.tier.name(),
                self.threads,
                if self.threads == 1 { "" } else { "s" }
            ),
            &["phase", "count", "total ms", "% of run"],
        );
        for (id, slot) in self.acc.phases() {
            if slot.count == 0 {
                continue;
            }
            t.row([
                id.name().to_string(),
                slot.count.to_string(),
                ms(slot.nanos),
                pct(slot.nanos),
            ]);
        }
        let _ = writeln!(out, "{t}");

        if let Some(cov) = self.sim_coverage() {
            let _ = writeln!(
                out,
                "  sim phase coverage: {:.1}% of {} ms stepped is attributed to named phases",
                cov * 100.0,
                ms(self.acc.phase(phase::SIM_STEP).nanos),
            );
        }
        let _ = writeln!(
            out,
            "  wall time: {} ms{}",
            ms(self.total_ns()),
            if self.acc.events_dropped() > 0 {
                format!("  ({} span events dropped)", self.acc.events_dropped())
            } else {
                String::new()
            }
        );
        out.push('\n');

        let workers = self.workers();
        if !workers.is_empty() {
            let mut t = Table::new(
                "Executor workers",
                &["worker", "jobs", "busy ms", "wait ms", "util %"],
            );
            for (w, jobs, busy, wait) in &workers {
                let util = *busy as f64 / (*busy + *wait).max(1) as f64 * 100.0;
                t.row([
                    w.to_string(),
                    jobs.to_string(),
                    ms(*busy),
                    ms(*wait),
                    format!("{util:.1}"),
                ]);
            }
            let _ = writeln!(out, "{t}");
        }

        if !self.acc.samples().is_empty() {
            let mut t = Table::new(
                "Latency histograms",
                &[
                    "sample", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms",
                ],
            );
            for (key, h) in self.acc.samples() {
                t.row([
                    key.clone(),
                    h.count().to_string(),
                    format!("{:.2}", h.mean_ns() / 1e6),
                    ms(h.percentile_ns(50.0)),
                    ms(h.percentile_ns(90.0)),
                    ms(h.percentile_ns(99.0)),
                    ms(h.max_ns()),
                ]);
            }
            let _ = writeln!(out, "{t}");
        }

        if !self.acc.counters().is_empty() {
            let mut t = Table::new("Counters", &["counter", "value"]);
            for (key, value) in self.acc.counters() {
                t.row([key.clone(), value.to_string()]);
            }
            let _ = writeln!(out, "{t}");
        }
        out
    }

    fn phases_json(&self, with_durations: bool) -> Json {
        let rows = self
            .acc
            .phases()
            .map(|(id, slot)| {
                let row = Json::obj()
                    .field("phase", id.name())
                    .field("count", slot.count);
                if with_durations {
                    row.field("ns", slot.nanos)
                } else {
                    row
                }
            })
            .collect();
        Json::Arr(rows)
    }

    fn map_json<V: Into<Json>>(entries: impl Iterator<Item = (String, V)>) -> Json {
        let mut obj = Json::obj();
        for (k, v) in entries {
            obj = obj.field(&k, v);
        }
        obj
    }

    fn hist_json(h: &LogHist) -> Json {
        Json::obj()
            .field("count", h.count())
            .field("sum_ns", h.sum_ns())
            .field("min_ns", h.min_ns())
            .field("max_ns", h.max_ns())
            .field("mean_ns", h.mean_ns())
            .field("p50_ns", h.percentile_ns(50.0))
            .field("p90_ns", h.percentile_ns(90.0))
            .field("p99_ns", h.percentile_ns(99.0))
    }

    /// The versioned machine-readable artifact, durations included.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("harness", self.harness.as_str())
            .field("tier", self.tier.name())
            .field("threads", self.threads)
            .field("total_ns", self.total_ns())
            .field("sim_coverage", self.sim_coverage())
            .field("phases", self.phases_json(true))
            .field(
                "counters",
                Self::map_json(self.acc.counters().iter().map(|(k, v)| (k.clone(), *v))),
            )
            .field(
                "gauges",
                Self::map_json(self.acc.gauges().iter().map(|(k, v)| (k.clone(), *v))),
            )
            .field(
                "samples",
                Self::map_json(
                    self.acc
                        .samples()
                        .iter()
                        .map(|(k, h)| (k.clone(), Self::hist_json(h))),
                ),
            )
            .field("events", self.acc.events().len())
            .field("events_dropped", self.acc.events_dropped())
    }

    /// The scheduling-independent subset of the profile: phase set and
    /// counts (no durations) plus the named counters. This document is
    /// byte-identical at every executor width — the property the
    /// telemetry integration tests pin.
    pub fn deterministic_view(&self) -> Json {
        Json::obj()
            .field("schema", SCHEMA)
            .field("harness", self.harness.as_str())
            .field("tier", self.tier.name())
            .field("phases", self.phases_json(false))
            .field(
                "counters",
                Self::map_json(self.acc.counters().iter().map(|(k, v)| (k.clone(), *v))),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global profiling switch.
    static PROFILE: Mutex<()> = Mutex::new(());

    fn build_report() -> ProfileReport {
        let _g = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
        let ((), report) = collect("demo", Tier::Smoke, 2, || {
            nox_telemetry::with_acc(|a| {
                a.add_span(phase::SIM_STEP, 1000);
                a.add_span(phase::SIM_ROUTE, 600);
                a.add_span(phase::SIM_ARBITRATE, 350);
                a.add_count("exec.stage.demo.jobs", 4);
                a.set_gauge("exec.worker.0.jobs", 3);
                a.set_gauge("exec.worker.0.busy_ns", 900);
                a.set_gauge("exec.worker.0.wait_ns", 100);
                a.sample_ns("exec.job_ns", 250);
            });
        });
        report
    }

    #[test]
    fn coverage_is_attributed_over_step() {
        let r = build_report();
        let cov = r.sim_coverage().expect("sim time recorded");
        assert!((cov - 0.95).abs() < 1e-9, "cov = {cov}");
        assert!(r.total_ns() > 0);
    }

    #[test]
    fn json_has_schema_and_all_phases() {
        let r = build_report();
        let doc = r.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let phases = doc.get("phases").and_then(Json::as_array).unwrap();
        assert_eq!(phases.len(), phase::PHASE_COUNT);
        assert_eq!(
            phases[0].get("phase").and_then(Json::as_str),
            Some("sim.step")
        );
        assert!(phases[0].get("ns").is_some());
        // Round-trips through the parser (integral floats reparse as
        // integers, so compare the serialized text).
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn deterministic_view_excludes_wall_clock_and_scheduling_state() {
        let r = build_report();
        let det = r.deterministic_view().to_string();
        assert!(!det.contains("\"ns\""), "durations leaked: {det}");
        assert!(!det.contains("gauges"), "gauges leaked: {det}");
        assert!(!det.contains("samples"), "histograms leaked: {det}");
        assert!(!det.contains("threads"), "executor width leaked: {det}");
        assert!(det.contains("exec.stage.demo.jobs"));
    }

    #[test]
    fn render_mentions_phases_workers_and_coverage() {
        let r = build_report();
        let s = r.render();
        assert!(s.contains("sim.route"));
        assert!(s.contains("sim phase coverage: 95.0%"));
        assert!(s.contains("Executor workers"));
        assert!(s.contains("exec.job_ns"));
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let _g = PROFILE.lock().unwrap_or_else(|e| e.into_inner());
        let ((), r) = collect("empty", Tier::Smoke, 1, || {});
        assert_eq!(r.sim_coverage(), None);
        assert!(r.workers().is_empty());
        let doc = r.to_json();
        assert_eq!(doc.get("sim_coverage"), Some(&Json::Null));
        let _ = r.render();
    }
}
