//! A minimal JSON document builder and parser.
//!
//! The build environment is fully offline (no serde), so every
//! machine-readable artifact in the workspace — probe run reports, the
//! per-harness `--json` outputs, `claims_report.json`, and the
//! `BENCH_sim_throughput.json` perf artifact — is constructed from this
//! small value type and serialized with [`std::fmt::Display`]. The
//! parser exists so the same artifacts can be read back (baseline
//! diffing, `noxsim bench-compare`) and so round-trip tests can pin the
//! schemas. Objects preserve insertion order, floats render via Rust's
//! shortest-roundtrip `Display` (which never emits `NaN`/`inf` — those
//! become `null`), and `u64` counters are kept lossless rather than
//! squeezed through `f64`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered losslessly.
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Serializes the document to a string (single line).
    pub fn to_string_compact(&self) -> String {
        self.to_string()
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document from text.
    ///
    /// Strict enough for the workspace's own artifacts and hardened for
    /// adversarial ones (the `noxsim serve` daemon feeds client-supplied
    /// bytes through here): rejects trailing garbage, unterminated
    /// strings, malformed or non-finite numbers (`1e999` overflows
    /// `f64` and is an error, not `inf`), invalid `\u` escapes
    /// (surrogate halves included), and documents nested deeper than
    /// [`MAX_DEPTH`] — truncated or hostile input returns `Err`, never
    /// panics, recurses without bound, or allocates more than a small
    /// multiple of the input size. Unicode escapes cover the Basic
    /// Multilingual Plane (no surrogate pairs), which is all the
    /// emitters produce.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Maximum container nesting depth [`Json::parse`] accepts. The parser
/// recurses once per nesting level, so the bound is what keeps a
/// `[[[[...` document from overflowing the stack; 128 levels is far
/// beyond any artifact this workspace emits.
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                char::from(b),
                self.pos
            )),
        }
    }

    /// Bumps the container nesting depth, erroring past [`MAX_DEPTH`] —
    /// the recursion bound that keeps hostile nesting from overflowing
    /// the stack. Paired with a decrement when the container closes.
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-escape, non-quote) bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape \\{}", char::from(other)));
                        }
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        // Keep integers lossless where they fit; everything else is f64.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        match text.parse::<f64>() {
            // A number like `1e999` parses to infinity: the emitters
            // never produce one (non-finite floats render as `null`),
            // so a huge number in the input is malformed, not `inf`.
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            Ok(_) => Err(format!("number {text:?} at byte {start} overflows f64")),
            Err(_) => Err(format!("malformed number {text:?} at byte {start}")),
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n.into())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj()
            .field("name", "sweep")
            .field("drained", true)
            .field("count", 42u64)
            .field("ratio", 0.5)
            .field("missing", Json::Null)
            .field("xs", vec![1u64, 2, 3]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"sweep","drained":true,"count":42,"ratio":0.5,"missing":null,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(doc.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn u64_counters_are_lossless() {
        let big = u64::MAX - 1;
        assert_eq!(Json::UInt(big).to_string(), format!("{big}"));
        assert_eq!(Json::parse(&format!("{big}")).unwrap(), Json::UInt(big));
    }

    #[test]
    fn option_maps_to_null_or_value() {
        assert_eq!(Json::from(None::<u64>).to_string(), "null");
        assert_eq!(Json::from(Some(7u64)).to_string(), "7");
    }

    #[test]
    fn parses_every_value_kind() {
        let doc = Json::parse(
            r#" {"a": null, "b": [true, false], "c": -1.5e3, "d": 12, "e": "x\ny", "f": {}} "#,
        )
        .unwrap();
        assert_eq!(doc.get("a"), Some(&Json::Null));
        assert_eq!(
            doc.get("b").unwrap().as_array().unwrap(),
            &[Json::Bool(true), Json::Bool(false)]
        );
        assert_eq!(doc.get("c").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(doc.get("d").unwrap().as_u64(), Some(12));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
        assert_eq!(doc.get("f"), Some(&Json::obj()));
    }

    #[test]
    fn round_trips_built_documents() {
        let doc = Json::obj()
            .field("schema", "nox-test/v1")
            .field("xs", vec![1.25f64, 0.5])
            .field("n", 99u64)
            .field("nested", Json::obj().field("s", "q\"uote"))
            .field("none", Json::Null);
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "1 2", "\"abc", "{\"a\":}", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
    }

    #[test]
    fn rejects_hostile_nesting_huge_numbers_and_bad_escapes() {
        // One level under the bound parses; one over errors.
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&deep_bad).is_err());
        // Unclosed nesting must error, not recurse forever.
        assert!(Json::parse(&"[".repeat(100_000)).is_err());
        // Numbers that overflow f64 are malformed, not infinite.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
        // Surrogate halves and truncated \u escapes are invalid.
        for bad in [r#""\ud800""#, r#""\u12""#, r#""\u""#, r#""\q""#] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
