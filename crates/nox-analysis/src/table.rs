//! Plain-text and CSV table rendering for the experiment harnesses.
//!
//! Every `bench/src/bin/figN` binary prints its series through this module
//! so the regenerated tables share one format and can be diffed run to
//! run.

use std::fmt;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<T: Into<String>>(title: T, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let line: String = widths.iter().map(|w| "-".repeat(w + 2)).collect();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} ", w = w)?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        writeln!(f, "{line}")?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a fixed number of decimals (helper for harnesses).
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["arch", "latency"]);
        t.row(["NoX", "5.64"]).row(["Non-Speculative", "6.82"]);
        let s = t.to_string();
        assert!(s.contains("T\n"));
        assert!(s.contains("NoX"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, and two rows under the title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn num_formats_decimals() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(2.0, 0), "2");
    }

    #[test]
    fn empty_table_is_well_formed() {
        let t = Table::new("empty", &["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_csv().starts_with("x\n"));
    }
}
