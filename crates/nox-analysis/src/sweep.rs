//! Injection-rate sweeps for the synthetic-traffic studies (Figures 8, 9).
//!
//! A sweep runs one router architecture over a list of injection rates
//! with a fixed traffic pattern, collecting latency, accepted throughput,
//! and energy at every point, and locates the saturation point and the
//! crossovers between architectures that the paper reports in §5.1.

use nox_exec::Executor;
use nox_power::energy::{energy_delay2, energy_per_packet_pj, EnergyModel};
use nox_sim::config::{Arch, NetConfig};
use nox_sim::sim::{run, RunSpec, SimResult};
use nox_sim::topology::Mesh;
use nox_traffic::synthetic::{generate, Process, SyntheticConfig};
use nox_traffic::Pattern;

/// One measured operating point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered load, MB/s per node.
    pub rate_mbps: f64,
    /// Mean packet latency, nanoseconds.
    pub latency_ns: f64,
    /// Accepted throughput, MB/s per node.
    pub accepted_mbps: f64,
    /// Mean dynamic energy per packet, picojoules.
    pub energy_per_packet_pj: f64,
    /// Energy-delay^2 figure of merit (pJ * ns^2).
    pub ed2: f64,
    /// Average network power over the window, milliwatts.
    pub power_mw: f64,
    /// `false` once the network saturates (measured packets undrained).
    pub drained: bool,
    /// The full simulator result, for deeper inspection.
    pub result: SimResult,
}

/// The sweep of one architecture over a set of rates.
#[derive(Clone, Debug)]
pub struct ArchSeries {
    /// Router architecture.
    pub arch: Arch,
    /// Traffic pattern swept.
    pub pattern: Pattern,
    /// The measured points, in increasing rate order.
    pub points: Vec<SweepPoint>,
}

/// Parameters of a sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Arrival process.
    pub process: Process,
    /// Offered loads in MB/s per node, increasing.
    pub rates_mbps: Vec<f64>,
    /// Packet length in flits.
    pub len: u16,
    /// Trace duration in nanoseconds (must cover warmup+measure+drain).
    pub duration_ns: f64,
    /// Measurement phases.
    pub run: RunSpec,
    /// Trace seed.
    pub seed: u64,
}

impl SweepConfig {
    /// A single-flit uniform-random Poisson sweep with sensible phases.
    pub fn uniform(rates_mbps: Vec<f64>) -> Self {
        SweepConfig {
            pattern: Pattern::UniformRandom,
            process: Process::Poisson,
            rates_mbps,
            len: 1,
            duration_ns: 40_000.0,
            run: RunSpec {
                warmup_ns: 1_500.0,
                measure_ns: 6_000.0,
                drain_ns: 30_000.0,
            },
            seed: 0xF168,
        }
    }
}

/// Measures one operating point of `arch` under `cfg` at `rate`: trace
/// generation, the full measured run, and the derived metrics. Every
/// point is self-contained (its trace depends only on the configuration
/// and the rate), which is what lets sweeps fan points out across
/// threads without changing a single output bit.
pub fn measure_point(arch: Arch, cfg: &SweepConfig, rate: f64) -> SweepPoint {
    let _span = nox_telemetry::SpanGuard::begin(nox_telemetry::phase::HARNESS_POINT);
    let net = NetConfig::paper(arch);
    let mesh = Mesh::new(net.width, net.height);
    let model = EnergyModel::for_arch(arch);
    let trace = generate(
        mesh,
        &SyntheticConfig {
            pattern: cfg.pattern,
            process: cfg.process,
            rate_mbps_per_node: rate,
            len: cfg.len,
            flit_bytes: net.flit_bytes,
            duration_ns: cfg.duration_ns,
            seed: cfg.seed,
        },
    );
    let result = run(net, &trace, &cfg.run);
    point_from_result(rate, result, &model)
}

/// Runs a sweep of `arch` under `cfg`, serially.
pub fn sweep(arch: Arch, cfg: &SweepConfig) -> ArchSeries {
    sweep_with(arch, cfg, &Executor::sequential())
}

/// Runs a sweep of `arch` under `cfg`, fanning the load points out over
/// `exec`. Points are reduced in rate order, so the series is
/// bit-identical to [`sweep`] at any thread count.
pub fn sweep_with(arch: Arch, cfg: &SweepConfig, exec: &Executor) -> ArchSeries {
    let stage = format!("sweep.{}", arch.name());
    let points = exec.map_stage(&stage, cfg.rates_mbps.clone(), |_, rate| {
        measure_point(arch, cfg, rate)
    });
    ArchSeries {
        arch,
        pattern: cfg.pattern,
        points,
    }
}

/// Builds a [`SweepPoint`] from a finished run.
pub fn point_from_result(rate: f64, result: SimResult, model: &EnergyModel) -> SweepPoint {
    let latency_ns = result.avg_latency_ns();
    let c = &result.window_counters;
    SweepPoint {
        rate_mbps: rate,
        latency_ns,
        accepted_mbps: result.accepted_mbps_per_node(),
        energy_per_packet_pj: energy_per_packet_pj(model, c),
        ed2: energy_delay2(model, c, latency_ns),
        power_mw: model.breakdown(c).power_mw(result.window_ns),
        drained: result.drained,
        result,
    }
}

impl ArchSeries {
    /// Zero-load latency estimate: the latency of the lowest-rate point.
    pub fn zero_load_latency_ns(&self) -> f64 {
        self.points.first().map(|p| p.latency_ns).unwrap_or(0.0)
    }

    /// The saturation throughput in MB/s/node: the highest *accepted*
    /// throughput observed at any offered load where the network still
    /// kept latencies bounded (mean below `factor` times zero-load), or
    /// the maximum accepted throughput if it never saturates in range.
    pub fn saturation_mbps(&self, factor: f64) -> f64 {
        let zl = self.zero_load_latency_ns();
        self.points
            .iter()
            .filter(|p| p.drained && p.latency_ns <= factor * zl)
            .map(|p| p.accepted_mbps)
            .fold(0.0, f64::max)
    }

    /// The lowest offered rate at which the network is saturated
    /// (undrained or latency beyond `factor` x zero-load), if any.
    pub fn saturation_onset_mbps(&self, factor: f64) -> Option<f64> {
        let zl = self.zero_load_latency_ns();
        self.points
            .iter()
            .find(|p| !p.drained || p.latency_ns > factor * zl)
            .map(|p| p.rate_mbps)
    }
}

/// Finds the crossover between two series: the lowest rate from which
/// `a`'s latency stays at or below `b`'s for the remainder of the sweep
/// (both unsaturated points only). Returns `None` if `a` never wins.
pub fn crossover_mbps(a: &ArchSeries, b: &ArchSeries) -> Option<f64> {
    let paired: Vec<(f64, f64, f64)> = a
        .points
        .iter()
        .zip(&b.points)
        .filter(|(pa, pb)| pa.drained && pb.drained)
        .map(|(pa, pb)| (pa.rate_mbps, pa.latency_ns, pb.latency_ns))
        .collect();
    let mut best = None;
    for i in 0..paired.len() {
        if paired[i..].iter().all(|&(_, la, lb)| la <= lb) {
            best = Some(paired[i].0);
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(rates: Vec<f64>) -> SweepConfig {
        SweepConfig {
            duration_ns: 8_000.0,
            run: RunSpec {
                warmup_ns: 500.0,
                measure_ns: 2_000.0,
                drain_ns: 20_000.0,
            },
            ..SweepConfig::uniform(rates)
        }
    }

    #[test]
    fn sweep_produces_monotone_nonneg_latencies() {
        let s = sweep(Arch::Nox, &quick_cfg(vec![300.0, 900.0, 1500.0]));
        assert_eq!(s.points.len(), 3);
        for p in &s.points {
            assert!(p.latency_ns > 0.0);
            assert!(p.energy_per_packet_pj > 0.0);
            assert!(p.ed2 > 0.0);
        }
        // Latency grows with load.
        assert!(s.points[2].latency_ns >= s.points[0].latency_ns);
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let s = sweep(Arch::SpecAccurate, &quick_cfg(vec![600.0]));
        let p = &s.points[0];
        assert!(p.drained);
        assert!((p.accepted_mbps - 600.0).abs() / 600.0 < 0.1);
    }

    #[test]
    fn crossover_detects_series_order() {
        // Synthetic series: `a` worse at low rate, better from 200 on.
        let mk = |lats: &[f64]| ArchSeries {
            arch: Arch::Nox,
            pattern: Pattern::UniformRandom,
            points: lats
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    let mut result = fake_result();
                    result.latency_ns.record(l);
                    SweepPoint {
                        rate_mbps: 100.0 * (i + 1) as f64,
                        latency_ns: l,
                        accepted_mbps: 100.0 * (i + 1) as f64,
                        energy_per_packet_pj: 1.0,
                        ed2: 1.0,
                        power_mw: 1.0,
                        drained: true,
                        result,
                    }
                })
                .collect(),
        };
        let a = mk(&[5.0, 4.0, 4.0]);
        let b = mk(&[4.0, 4.5, 5.0]);
        assert_eq!(crossover_mbps(&a, &b), Some(200.0));
        assert_eq!(crossover_mbps(&b, &a), None);
    }

    fn fake_result() -> SimResult {
        SimResult {
            cfg: NetConfig::paper(Arch::Nox),
            cycles: 1,
            window_counters: Default::default(),
            latency_ns: Default::default(),
            latency_hist: Default::default(),
            measured_total: 1,
            measured_ejected: 1,
            window_ns: 1.0,
            drained: true,
        }
    }
}

#[cfg(test)]
mod saturation_tests {
    use super::*;

    fn series(points: Vec<(f64, f64, f64, bool)>) -> ArchSeries {
        // (rate, latency, accepted, drained)
        ArchSeries {
            arch: Arch::Nox,
            pattern: Pattern::UniformRandom,
            points: points
                .into_iter()
                .map(
                    |(rate_mbps, latency_ns, accepted_mbps, drained)| SweepPoint {
                        rate_mbps,
                        latency_ns,
                        accepted_mbps,
                        energy_per_packet_pj: 1.0,
                        ed2: 1.0,
                        power_mw: 1.0,
                        drained,
                        result: SimResult {
                            cfg: NetConfig::paper(Arch::Nox),
                            cycles: 1,
                            window_counters: Default::default(),
                            latency_ns: Default::default(),
                            latency_hist: Default::default(),
                            measured_total: 1,
                            measured_ejected: 1,
                            window_ns: 1.0,
                            drained,
                        },
                    },
                )
                .collect(),
        }
    }

    #[test]
    fn saturation_takes_best_bounded_point() {
        let s = series(vec![
            (100.0, 5.0, 100.0, true),
            (200.0, 6.0, 200.0, true),
            (300.0, 500.0, 220.0, true), // latency blew past 15x zero-load
            (400.0, 900.0, 210.0, false),
        ]);
        assert_eq!(s.saturation_mbps(15.0), 200.0);
        assert_eq!(s.saturation_onset_mbps(15.0), Some(300.0));
    }

    #[test]
    fn unsaturated_series_reports_max_accepted() {
        let s = series(vec![(100.0, 5.0, 100.0, true), (200.0, 5.5, 200.0, true)]);
        assert_eq!(s.saturation_mbps(15.0), 200.0);
        assert_eq!(s.saturation_onset_mbps(15.0), None);
    }

    #[test]
    fn undrained_points_never_count_as_saturation_throughput() {
        let s = series(vec![
            (100.0, 5.0, 100.0, true),
            (200.0, 6.0, 999.0, false), // bogus accepted on a saturated run
        ]);
        assert_eq!(s.saturation_mbps(15.0), 100.0);
    }

    #[test]
    fn zero_load_latency_is_first_point() {
        let s = series(vec![(100.0, 5.0, 100.0, true), (200.0, 9.0, 200.0, true)]);
        assert_eq!(s.zero_load_latency_ns(), 5.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = series(vec![]);
        assert_eq!(s.zero_load_latency_ns(), 0.0);
        assert_eq!(s.saturation_mbps(15.0), 0.0);
        assert_eq!(s.saturation_onset_mbps(15.0), None);
    }
}
