//! Experiment harness for the NoX router reproduction.
//!
//! Glues the cycle-accurate simulator (`nox-sim`), traffic generators
//! (`nox-traffic`), and physical models (`nox-power`) into the runs that
//! regenerate the paper's evaluation:
//!
//! * [`mod@sweep`] — injection-rate sweeps with saturation and crossover
//!   detection (Figures 8 and 9);
//! * [`apps`] — dual-network application-workload runs and the mean
//!   energy-delay^2 comparison (Figures 10 and 11);
//! * [`harness`] — one library module per `bench` binary, each returning
//!   a structured result type with `render()` (the human table) and
//!   `to_json()` (a versioned `nox-bench/<harness>/v1` document);
//! * [`claims`] — the machine-checkable conformance registry binding
//!   every EXPERIMENTS.md claim to a harness measurement;
//! * [`bench_artifact`] — the `BENCH_sim_throughput.json` performance
//!   artifact (multi-trial) and its regression comparison;
//! * [`mod@profile`] — the `nox-bench/profile/v1` phase-attribution
//!   artifact collected by `noxsim profile`;
//! * [`mod@json`] — the dependency-free JSON value, serializer, and
//!   parser the structured outputs are built on;
//! * [`table`] — shared plain-text / CSV table rendering for all of the
//!   `bench` harness binaries.
//!
//! # Example
//!
//! ```no_run
//! use nox_analysis::sweep::{sweep, SweepConfig};
//! use nox_sim::config::Arch;
//!
//! let cfg = SweepConfig::uniform(vec![500.0, 1500.0, 2500.0]);
//! let series = sweep(Arch::Nox, &cfg);
//! println!("saturation: {:.0} MB/s/node", series.saturation_mbps(15.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod bench_artifact;
pub mod claims;
pub mod harness;
pub mod json;
pub mod profile;
pub mod sweep;
pub mod table;

pub use apps::{mean_ed2_improvement_pct, run_workload, AppResult};
pub use harness::{HarnessArgs, Tier};
pub use json::Json;
pub use sweep::{crossover_mbps, sweep, ArchSeries, SweepConfig, SweepPoint};
pub use table::Table;
