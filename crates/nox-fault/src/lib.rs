//! `nox-fault` — deterministic fault plans, CRC sidebands, and campaign
//! statistics for the NoX reproduction.
//!
//! The NoX router decodes flits by XORing contiguous link words
//! (`(A^B^C) ^ (B^C) = A`), which makes one corrupted or dropped link
//! word poison *every* later decode in its collision chain. This crate
//! holds the pieces of the fault-tolerance layer that are independent of
//! the simulator:
//!
//! * [`FaultConfig`] / [`FaultPlan`] — a seed-driven description of which
//!   link words flip bits, drop, or duplicate, which credit counters
//!   corrupt, which links are stuck-at-dead, and which router freezes.
//!   Every decision is a pure hash of `(seed, cycle, node, port, salt)`,
//!   so a campaign replays bit-identically regardless of iteration order.
//! * [`crc8`] — the linear CRC-8 sideband used for detection. Linearity
//!   (`crc8(a ^ b) == crc8(a) ^ crc8(b)`) is what lets a CRC sideband
//!   ride through XOR superposition: the check value of an encoded word
//!   is exactly the XOR of its constituents' check values, so an
//!   end-of-chain decode can be verified against the XOR of the
//!   constituent CRCs without ever decoding the sideband itself.
//! * [`FaultStats`] — the counter block a campaign reports: injected vs
//!   detected vs silently corrupted events, containment actions, and
//!   retransmission outcomes.
//!
//! The simulator integration (interception points, chain-kill
//! containment, end-to-end retransmission, fault-aware rerouting) lives
//! in `nox-sim`'s `fault` module behind its `faults` cargo feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CRC-8 polynomial (x^8 + x^2 + x + 1, "CRC-8/ATM"), used with zero
/// init and zero xor-out so the code stays linear.
pub const CRC8_POLY: u8 = 0x07;

/// Linear CRC-8 over a 64-bit word (zero init, zero xor-out, MSB first).
///
/// Because the code is linear over GF(2), `crc8(a ^ b) == crc8(a) ^
/// crc8(b)`: the sideband of an XOR-superposed link word equals the XOR
/// of its constituents' sidebands, so the receiver can check a decoded
/// flit against recomputed constituent CRCs. Any single-bit payload error
/// is detected (the syndrome of a one-bit error is a nonzero remainder);
/// multi-bit bursts alias with probability ~2^-8.
pub fn crc8(word: u64) -> u8 {
    let mut crc: u8 = 0;
    for byte in word.to_be_bytes() {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ CRC8_POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// splitmix64 — the same finalizer the simulator uses for flit payloads;
/// here it turns `(seed, cycle, node, port, salt)` into a uniform draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// End-to-end retransmission policy: a source re-sends a packet when no
/// acknowledgement arrives within the timeout, doubling the timeout per
/// attempt (exponential backoff) up to `max_attempts` total tries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetxConfig {
    /// Cycles to wait for the first delivery before retransmitting.
    pub timeout_cycles: u64,
    /// Maximum total transmission attempts per packet (>= 1).
    pub max_attempts: u32,
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig {
            timeout_cycles: 400,
            max_attempts: 6,
        }
    }
}

impl RetxConfig {
    /// The timeout armed after `attempt` transmissions (1-based):
    /// `timeout_cycles * 2^(attempt-1)`, saturating.
    pub fn timeout_after(&self, attempt: u32) -> u64 {
        self.timeout_cycles
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(20))
    }
}

/// A hard-failed (stuck-at) unidirectional link, identified by its
/// driving router and output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeadLink {
    /// Driving router (grid node index).
    pub node: u16,
    /// Output port index on that router.
    pub port: u8,
}

/// A transient whole-router freeze: the router performs no control work
/// for `cycles` cycles starting at `from_cycle` (its buffers still accept
/// arrivals — the credit protocol guarantees space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterFreeze {
    /// Frozen router (grid node index).
    pub node: u16,
    /// First frozen cycle.
    pub from_cycle: u64,
    /// Number of frozen cycles.
    pub cycles: u64,
}

/// The complete, deterministic description of one fault campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for every per-cycle fault draw.
    pub seed: u64,
    /// Per-link-word probability of a single-bit payload flip.
    pub bit_flip_rate: f64,
    /// Per-link-word probability the word is dropped in flight.
    pub drop_rate: f64,
    /// Per-link-word probability the word is delivered twice.
    pub dup_rate: f64,
    /// Per-cycle probability that one router's credit counter is
    /// corrupted (overclaimed to "all slots free").
    pub credit_corrupt_rate: f64,
    /// Links that are stuck-at-dead from `stuck_from_cycle` on.
    pub dead_links: Vec<DeadLink>,
    /// Cycle from which `dead_links` stop carrying traffic.
    pub stuck_from_cycle: u64,
    /// Optional transient router freeze.
    pub freeze: Option<RouterFreeze>,
    /// Whether the CRC-8 sideband check runs at ejection.
    pub crc_enabled: bool,
    /// End-to-end retransmission, if enabled.
    pub retx: Option<RetxConfig>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            bit_flip_rate: 0.0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            credit_corrupt_rate: 0.0,
            dead_links: Vec::new(),
            stuck_from_cycle: 0,
            freeze: None,
            crc_enabled: false,
            retx: None,
        }
    }
}

impl FaultConfig {
    /// A bit-flip-only campaign with no protection — the configuration
    /// that exposes NoX's chain fragility.
    pub fn bit_flips(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            bit_flip_rate: rate,
            ..Default::default()
        }
    }

    /// The same bit-flip campaign with the full protection stack: CRC
    /// detection plus end-to-end retransmission.
    pub fn protected_bit_flips(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            bit_flip_rate: rate,
            crc_enabled: true,
            retx: Some(RetxConfig::default()),
            ..Default::default()
        }
    }

    /// Validates rates and structure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, r) in [
            ("bit_flip_rate", self.bit_flip_rate),
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("credit_corrupt_rate", self.credit_corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be within [0, 1], got {r}"));
            }
        }
        if let Some(rx) = &self.retx {
            if rx.max_attempts == 0 {
                return Err("retx.max_attempts must be >= 1".into());
            }
            if rx.timeout_cycles == 0 {
                return Err("retx.timeout_cycles must be >= 1".into());
            }
        }
        Ok(())
    }
}

/// Salts separating the independent per-site draws.
#[derive(Clone, Copy, Debug)]
enum Salt {
    BitFlip = 1,
    BitIndex = 2,
    Drop = 3,
    Dup = 4,
    CreditCorrupt = 5,
    CreditSite = 6,
}

/// The per-cycle fault scheduler: pure functions of the configured seed,
/// so two walks over the same campaign agree exactly no matter what order
/// the simulator queries sites in.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Wraps a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate().expect("invalid fault configuration");
        FaultPlan { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn draw(&self, cycle: u64, node: u16, port: u8, salt: Salt) -> u64 {
        let mix = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cycle)
            .wrapping_mul(0xD605_0CB1_1F9B_62D5)
            .wrapping_add(((node as u64) << 16) | ((port as u64) << 8) | salt as u64);
        splitmix64(mix)
    }

    fn bernoulli(&self, cycle: u64, node: u16, port: u8, salt: Salt, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // Compare the top 53 bits against the rate threshold.
        let draw = self.draw(cycle, node, port, salt) >> 11;
        (draw as f64) < rate * (1u64 << 53) as f64
    }

    /// Should the word launched at `(node, port)` on `cycle` have one
    /// payload bit flipped? Returns the bit index to flip.
    pub fn bit_flip(&self, cycle: u64, node: u16, port: u8) -> Option<u32> {
        self.bernoulli(cycle, node, port, Salt::BitFlip, self.cfg.bit_flip_rate)
            .then(|| (self.draw(cycle, node, port, Salt::BitIndex) % 64) as u32)
    }

    /// Should the word launched at `(node, port)` on `cycle` be dropped?
    pub fn drop(&self, cycle: u64, node: u16, port: u8) -> bool {
        self.bernoulli(cycle, node, port, Salt::Drop, self.cfg.drop_rate)
    }

    /// Should the word launched at `(node, port)` on `cycle` be
    /// duplicated?
    pub fn duplicate(&self, cycle: u64, node: u16, port: u8) -> bool {
        self.bernoulli(cycle, node, port, Salt::Dup, self.cfg.dup_rate)
    }

    /// Does a credit-counter corruption strike on `cycle`? Returns a draw
    /// the caller maps onto one of its `sites` (router/port pairs).
    pub fn credit_corrupt(&self, cycle: u64, sites: usize) -> Option<usize> {
        if sites == 0 {
            return None;
        }
        self.bernoulli(
            cycle,
            0,
            0,
            Salt::CreditCorrupt,
            self.cfg.credit_corrupt_rate,
        )
        .then(|| (self.draw(cycle, 0, 0, Salt::CreditSite) % sites as u64) as usize)
    }

    /// Is the link at `(node, port)` stuck dead on `cycle`?
    pub fn link_dead(&self, cycle: u64, node: u16, port: u8) -> bool {
        cycle >= self.cfg.stuck_from_cycle
            && self
                .cfg
                .dead_links
                .iter()
                .any(|d| d.node == node && d.port == port)
    }

    /// Is router `node` frozen on `cycle`?
    pub fn frozen(&self, cycle: u64, node: u16) -> bool {
        self.cfg.freeze.is_some_and(|f| {
            f.node == node && cycle >= f.from_cycle && cycle < f.from_cycle + f.cycles
        })
    }
}

/// Streaming mean/max accumulator for latency-style metrics, in cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleStats {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl CycleStats {
    /// Records one sample.
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.sum += cycles;
        self.max = self.max.max(cycles);
    }

    /// The mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a fault campaign counts. Injection counters record what the
/// plan actually did; detection counters classify what the protection
/// stack saw; recovery counters track the retransmission protocol.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Link words whose payload was bit-flipped.
    pub injected_bit_flips: u64,
    /// Link words dropped in flight.
    pub injected_drops: u64,
    /// Link words delivered twice.
    pub injected_dups: u64,
    /// Credit counters overclaimed.
    pub injected_credit_corruptions: u64,
    /// Words discarded because their link was stuck-at-dead.
    pub dead_link_drops: u64,
    /// Router-tick cycles suppressed by a freeze.
    pub frozen_cycles: u64,

    /// Corrupted flits caught by the CRC sideband at ejection.
    pub detected_crc: u64,
    /// Decode-register desyncs caught by the FSM self-check (a presented
    /// word that is not a single plain flit).
    pub detected_desync: u64,
    /// Flits discarded for arriving out of sequence (a drop or
    /// duplication upstream).
    pub detected_sequence: u64,
    /// Words dropped at a full input buffer (credit-corruption fallout).
    pub detected_overflow: u64,
    /// Corrupted flits delivered to the core undetected.
    pub silent_corruptions: u64,

    /// Poisoned decode chains truncated (decoder reset + head discard).
    pub chain_kills: u64,
    /// Watchdog deadlock-recovery resets: the network made no progress
    /// for a full stall window (a lost wormhole tail wedging an output
    /// reservation or stream), so every router's control engines were
    /// reset and stuck decode chains flushed.
    pub watchdog_resets: u64,
    /// Flits lost inside containment actions (desync discards).
    pub flits_discarded: u64,
    /// Packets retransmitted end to end.
    pub retransmissions: u64,
    /// Tail ejections discarded as duplicates of an already-delivered
    /// packet (a late original racing its retransmission).
    pub duplicates_discarded: u64,
    /// Packets that exhausted every transmission attempt.
    pub packets_failed: u64,
    /// Packets that needed at least one retransmission and were
    /// ultimately delivered.
    pub packets_recovered: u64,

    /// Injection-to-first-detection latency, in cycles.
    pub detection_latency: CycleStats,
    /// Creation-to-delivery latency of recovered packets, in cycles.
    pub recovery_latency: CycleStats,
}

impl FaultStats {
    /// Total injected fault events.
    pub fn injected_total(&self) -> u64 {
        self.injected_bit_flips
            + self.injected_drops
            + self.injected_dups
            + self.injected_credit_corruptions
            + self.dead_link_drops
    }

    /// Total detections across every detector.
    pub fn detected_total(&self) -> u64 {
        self.detected_crc + self.detected_desync + self.detected_sequence + self.detected_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc8_is_linear() {
        let words = [0u64, 1, 0xFFFF_FFFF_FFFF_FFFF, 0xDEAD_BEEF_0BAD_F00D, 42];
        for &a in &words {
            for &b in &words {
                assert_eq!(
                    crc8(a ^ b),
                    crc8(a) ^ crc8(b),
                    "crc8 not linear at {a:#x}^{b:#x}"
                );
            }
        }
        assert_eq!(crc8(0), 0);
    }

    #[test]
    fn crc8_detects_every_single_bit_error() {
        for word in [0u64, 0x0123_4567_89AB_CDEF, u64::MAX] {
            for bit in 0..64 {
                assert_ne!(
                    crc8(word),
                    crc8(word ^ (1u64 << bit)),
                    "single-bit flip at {bit} aliased"
                );
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_order_independent() {
        let plan = FaultPlan::new(FaultConfig::bit_flips(99, 0.05));
        let forward: Vec<Option<u32>> = (0..1000).map(|c| plan.bit_flip(c, 3, 1)).collect();
        let backward: Vec<Option<u32>> = (0..1000).rev().map(|c| plan.bit_flip(c, 3, 1)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let again: Vec<Option<u32>> = (0..1000).map(|c| plan.bit_flip(c, 3, 1)).collect();
        assert_eq!(forward, again);
    }

    #[test]
    fn plan_rate_is_roughly_honoured() {
        let plan = FaultPlan::new(FaultConfig::bit_flips(7, 0.1));
        let hits = (0..20_000)
            .filter(|&c| plan.bit_flip(c, 0, 0).is_some())
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn distinct_sites_draw_independently() {
        let plan = FaultPlan::new(FaultConfig::bit_flips(7, 0.5));
        let a: Vec<bool> = (0..64).map(|c| plan.bit_flip(c, 0, 0).is_some()).collect();
        let b: Vec<bool> = (0..64).map(|c| plan.bit_flip(c, 0, 1).is_some()).collect();
        let c: Vec<bool> = (0..64).map(|c| plan.bit_flip(c, 1, 0).is_some()).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_and_one_rates_are_exact() {
        let never = FaultPlan::new(FaultConfig::bit_flips(1, 0.0));
        assert!((0..500).all(|c| never.bit_flip(c, 0, 0).is_none()));
        let always = FaultPlan::new(FaultConfig {
            drop_rate: 1.0,
            ..Default::default()
        });
        assert!((0..500).all(|c| always.drop(c, 0, 0)));
    }

    #[test]
    fn dead_links_and_freeze_windows() {
        let plan = FaultPlan::new(FaultConfig {
            dead_links: vec![DeadLink { node: 5, port: 2 }],
            stuck_from_cycle: 100,
            freeze: Some(RouterFreeze {
                node: 3,
                from_cycle: 10,
                cycles: 5,
            }),
            ..Default::default()
        });
        assert!(!plan.link_dead(99, 5, 2));
        assert!(plan.link_dead(100, 5, 2));
        assert!(!plan.link_dead(100, 5, 1));
        assert!(!plan.frozen(9, 3));
        assert!(plan.frozen(10, 3) && plan.frozen(14, 3));
        assert!(!plan.frozen(15, 3));
        assert!(!plan.frozen(12, 4));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let rx = RetxConfig {
            timeout_cycles: 100,
            max_attempts: 8,
        };
        assert_eq!(rx.timeout_after(1), 100);
        assert_eq!(rx.timeout_after(2), 200);
        assert_eq!(rx.timeout_after(4), 800);
        assert!(rx.timeout_after(80) >= rx.timeout_after(21));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FaultConfig {
            bit_flip_rate: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            retx: Some(RetxConfig {
                timeout_cycles: 0,
                max_attempts: 1
            }),
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
