//! Live telemetry streaming: line-delimited JSON progress events.
//!
//! The CLI's `--stream <file|->` flag installs a sink here; instrumented
//! code emits one self-contained JSON object per line through
//! [`emit`]. Emission is serialized under one lock, and the sequence
//! number is assigned under that same lock, so the frame order on the
//! wire matches the order of `emit` calls exactly. Because `nox-exec`
//! reports job completions through an in-order cursor, that order is
//! deterministic at every thread count — the property the stream-framing
//! tests assert, and the wire contract `noxsim serve` inherits.
//!
//! When no sink is installed, [`emit`] is a single relaxed atomic load.
//!
//! # Resume contract
//!
//! Sequence numbers are **per sink installation**: every [`set`] starts
//! a fresh stream whose first frame carries `"seq":0`, and within one
//! installation the numbers are gap-free and strictly ascending. There
//! is no cross-connection sequencing — a client that reconnects (or a
//! `noxsim serve` client whose request is re-run after a daemon
//! restart) detects the restart by either signal:
//!
//! * the `seq` field going backwards (any non-successor value), or
//! * a fresh `run` event (the CLI) / `start` event (the serve daemon),
//!   which are only ever emitted at the head of a stream.
//!
//! On restart a consumer discards its partial tally and replays from
//! the new stream; because artifacts are deterministic, re-running a
//! request converges on byte-identical results, so resuming is always
//! safe. Torn frames: every frame is serialized in full and handed to
//! the sink as **one** `write_all` of a complete `{...}\n` line (the
//! framing tests pin this), so within a healthy process no partial line
//! is ever emitted; a crash (`kill -9`) can still tear at most the last
//! line on the wire, which a consumer must treat as end-of-stream —
//! never as data.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

struct Sink {
    writer: Box<dyn Write + Send>,
    seq: u64,
}

/// Installs a stream sink; subsequent [`emit`] calls write to it.
///
/// Starts a fresh stream: the next frame carries `"seq":0` (the resume
/// contract's restart marker). A previously installed sink is flushed
/// before being dropped, so its final frame is never left torn in a
/// buffering writer.
pub fn set(writer: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = sink.as_mut() {
        let _ = old.writer.flush();
    }
    *sink = Some(Sink { writer, seq: 0 });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes the sink (flushing it), ending streaming.
pub fn clear() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut s) = sink.take() {
        let _ = s.writer.flush();
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

/// `true` when a sink is installed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Classifies the `seq` field of a received frame against the last one
/// seen, implementing the consumer side of the resume contract: `Fresh`
/// for the head of a (re)started stream, `Next` for the expected
/// successor, `Gap` for anything else (frames lost, or a restart whose
/// head was missed — either way the consumer must resynchronize).
///
/// # Example
///
/// ```
/// use nox_telemetry::stream::{classify_seq, SeqStep};
///
/// assert_eq!(classify_seq(None, 0), SeqStep::Fresh);
/// assert_eq!(classify_seq(Some(0), 1), SeqStep::Next);
/// assert_eq!(classify_seq(Some(7), 0), SeqStep::Fresh); // stream restarted
/// assert_eq!(classify_seq(Some(7), 9), SeqStep::Gap);   // frame lost
/// ```
pub fn classify_seq(prev: Option<u64>, seq: u64) -> SeqStep {
    match (prev, seq) {
        (_, 0) => SeqStep::Fresh,
        (Some(p), s) if s == p + 1 => SeqStep::Next,
        _ => SeqStep::Gap,
    }
}

/// Result of [`classify_seq`]: how a frame's sequence number relates to
/// the stream the consumer thinks it is reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqStep {
    /// `seq == 0`: the head of a new stream (first connection, or a
    /// restart the consumer must treat as a fresh stream).
    Fresh,
    /// The gap-free successor of the previous frame.
    Next,
    /// Neither head nor successor: frames were lost, or a restart's
    /// head frame was missed.
    Gap,
}

/// One field value of a stream event.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// A JSON string (escaped on emission).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A float (emitted with shortest round-trip formatting).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

/// Appends `s` to `out` as a JSON string literal.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one event line: `{"event":<kind>,"seq":N,<fields...>}`.
///
/// A no-op when no sink is installed. A sink write error deactivates the
/// stream (progress telemetry must never abort a run).
pub fn emit(kind: &str, fields: &[(&str, Field<'_>)]) {
    if !active() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let Some(s) = sink.as_mut() else { return };
    let mut line = String::with_capacity(64);
    line.push_str("{\"event\":");
    push_json_str(&mut line, kind);
    line.push_str(",\"seq\":");
    line.push_str(&s.seq.to_string());
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            Field::Str(v) => push_json_str(&mut line, v),
            Field::U64(v) => line.push_str(&v.to_string()),
            Field::F64(v) => {
                if v.is_finite() {
                    line.push_str(&v.to_string())
                } else {
                    line.push_str("null")
                }
            }
            Field::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    s.seq += 1;
    // Write-and-flush per line: each frame is complete on the wire as
    // soon as it is emitted, which is the point of live streaming.
    if s.writer.write_all(line.as_bytes()).is_err() || s.writer.flush().is_err() {
        *sink = None;
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink capturing emitted bytes for inspection.
    #[derive(Clone, Default)]
    pub struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Capture {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Tests share the process-global sink; serialize them.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn emit_without_sink_is_a_no_op() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        emit("job", &[("index", Field::U64(1))]);
        assert!(!active());
    }

    #[test]
    fn frames_are_complete_json_lines_with_sequence_numbers() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cap = Capture::default();
        set(Box::new(cap.clone()));
        emit(
            "stage",
            &[("stage", Field::Str("sweep.nox")), ("jobs", Field::U64(12))],
        );
        emit(
            "job",
            &[
                ("index", Field::U64(0)),
                ("ms", Field::F64(1.5)),
                ("ok", Field::Bool(true)),
            ],
        );
        clear();
        let out = cap.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"event":"stage","seq":0,"stage":"sweep.nox","jobs":12}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"job","seq":1,"index":0,"ms":1.5,"ok":true}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    /// A sink recording the byte span of every individual `write` call,
    /// to pin the one-write-per-frame (no torn line) property.
    #[derive(Clone, Default)]
    struct CallRecorder(Arc<StdMutex<Vec<Vec<u8>>>>);

    impl Write for CallRecorder {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().push(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_frame_is_one_complete_line_write() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = CallRecorder::default();
        set(Box::new(rec.clone()));
        emit("run", &[("cmd", Field::Str("claims"))]);
        emit("job", &[("index", Field::U64(3)), ("ms", Field::F64(0.25))]);
        emit("done", &[]);
        clear();
        let calls = rec.0.lock().unwrap().clone();
        // Three frames -> exactly three write calls, each one a whole
        // newline-terminated JSON line: a frame can never be torn by
        // interleaved writers, only by a process crash mid-syscall.
        assert_eq!(calls.len(), 3);
        for call in &calls {
            let line = std::str::from_utf8(call).unwrap();
            assert!(
                line.ends_with('\n'),
                "frame not newline-terminated: {line:?}"
            );
            assert_eq!(line.matches('\n').count(), 1);
            assert!(line.starts_with('{') && line[..line.len() - 1].ends_with('}'));
        }
    }

    #[test]
    fn sequence_numbers_restart_per_installation() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // First "connection".
        let a = Capture::default();
        set(Box::new(a.clone()));
        emit("run", &[("cmd", Field::Str("verify"))]);
        emit("job", &[("index", Field::U64(0))]);
        // Reconnect: a second installation restarts the stream.
        let b = Capture::default();
        set(Box::new(b.clone()));
        emit("run", &[("cmd", Field::Str("verify"))]);
        clear();
        let first: Vec<String> = a.contents().lines().map(str::to_string).collect();
        let second: Vec<String> = b.contents().lines().map(str::to_string).collect();
        assert!(first[0].contains("\"seq\":0") && first[1].contains("\"seq\":1"));
        // The new stream's head frame is seq 0 again and is a `run`
        // event — both restart signals of the resume contract.
        assert!(
            second[0].contains("\"event\":\"run\",\"seq\":0"),
            "{second:?}"
        );
    }

    #[test]
    fn a_reconnecting_consumer_detects_gaps_and_restarts() {
        // Consumer side of the contract, over a synthetic frame
        // sequence: connection 1 delivers seqs 0,1,2; the daemon
        // restarts; connection 2 delivers 0,1. A lossy tail delivers 4.
        let mut prev = None;
        let mut restarts = 0;
        let mut gaps = 0;
        for seq in [0u64, 1, 2, 0, 1, 4] {
            match classify_seq(prev, seq) {
                SeqStep::Fresh if prev.is_some() => restarts += 1,
                SeqStep::Fresh | SeqStep::Next => {}
                SeqStep::Gap => gaps += 1,
            }
            prev = Some(seq);
        }
        assert_eq!((restarts, gaps), (1, 1));
    }
}
