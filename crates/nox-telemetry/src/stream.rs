//! Live telemetry streaming: line-delimited JSON progress events.
//!
//! The CLI's `--stream <file|->` flag installs a sink here; instrumented
//! code emits one self-contained JSON object per line through
//! [`emit`]. Emission is serialized under one lock, and the sequence
//! number is assigned under that same lock, so the frame order on the
//! wire matches the order of `emit` calls exactly. Because `nox-exec`
//! reports job completions through an in-order cursor, that order is
//! deterministic at every thread count — the property the stream-framing
//! tests assert, and the wire contract a future `noxsim serve` inherits.
//!
//! When no sink is installed, [`emit`] is a single relaxed atomic load.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

struct Sink {
    writer: Box<dyn Write + Send>,
    seq: u64,
}

/// Installs a stream sink; subsequent [`emit`] calls write to it.
pub fn set(writer: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    *sink = Some(Sink { writer, seq: 0 });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes the sink (flushing it), ending streaming.
pub fn clear() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut s) = sink.take() {
        let _ = s.writer.flush();
    }
    ACTIVE.store(false, Ordering::Relaxed);
}

/// `true` when a sink is installed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// One field value of a stream event.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// A JSON string (escaped on emission).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A float (emitted with shortest round-trip formatting).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

/// Appends `s` to `out` as a JSON string literal.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one event line: `{"event":<kind>,"seq":N,<fields...>}`.
///
/// A no-op when no sink is installed. A sink write error deactivates the
/// stream (progress telemetry must never abort a run).
pub fn emit(kind: &str, fields: &[(&str, Field<'_>)]) {
    if !active() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let Some(s) = sink.as_mut() else { return };
    let mut line = String::with_capacity(64);
    line.push_str("{\"event\":");
    push_json_str(&mut line, kind);
    line.push_str(",\"seq\":");
    line.push_str(&s.seq.to_string());
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            Field::Str(v) => push_json_str(&mut line, v),
            Field::U64(v) => line.push_str(&v.to_string()),
            Field::F64(v) => {
                if v.is_finite() {
                    line.push_str(&v.to_string())
                } else {
                    line.push_str("null")
                }
            }
            Field::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    s.seq += 1;
    // Write-and-flush per line: each frame is complete on the wire as
    // soon as it is emitted, which is the point of live streaming.
    if s.writer.write_all(line.as_bytes()).is_err() || s.writer.flush().is_err() {
        *sink = None;
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink capturing emitted bytes for inspection.
    #[derive(Clone, Default)]
    pub struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Capture {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Tests share the process-global sink; serialize them.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn emit_without_sink_is_a_no_op() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        emit("job", &[("index", Field::U64(1))]);
        assert!(!active());
    }

    #[test]
    fn frames_are_complete_json_lines_with_sequence_numbers() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cap = Capture::default();
        set(Box::new(cap.clone()));
        emit(
            "stage",
            &[("stage", Field::Str("sweep.nox")), ("jobs", Field::U64(12))],
        );
        emit(
            "job",
            &[
                ("index", Field::U64(0)),
                ("ms", Field::F64(1.5)),
                ("ok", Field::Bool(true)),
            ],
        );
        clear();
        let out = cap.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"event":"stage","seq":0,"stage":"sweep.nox","jobs":12}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"job","seq":1,"index":0,"ms":1.5,"ok":true}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
