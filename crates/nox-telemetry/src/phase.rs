//! The static phase registry and the simulator's mark-based phase clock.
//!
//! Phases are a closed, ordered set known at compile time, so profile
//! artifacts list them in one canonical order at every thread count —
//! the structural half of the determinism argument in DESIGN.md §14.

/// An index into the static phase registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(pub u8);

impl PhaseId {
    /// The phase's registered name, e.g. `"sim.route"`.
    pub fn name(self) -> &'static str {
        PHASES[self.0 as usize]
    }

    /// Index into [`PHASES`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

macro_rules! registry {
    ($(($const_name:ident, $idx:expr, $name:expr),)*) => {
        /// All registered phase names, in canonical report order.
        pub const PHASES: &[&str] = &[$($name),*];
        $(pub const $const_name: PhaseId = PhaseId($idx);)*
    };
}

registry![
    (SIM_STEP, 0, "sim.step"),
    (SIM_DELIVER, 1, "sim.deliver"),
    (SIM_CREDIT, 2, "sim.credit"),
    (SIM_INJECT, 3, "sim.inject"),
    (SIM_ROUTE, 4, "sim.route"),
    (SIM_ARBITRATE, 5, "sim.arbitrate"),
    (SIM_DRIVE, 6, "sim.drive"),
    (SIM_ENCODE, 7, "sim.encode"),
    (SIM_SINK, 8, "sim.sink"),
    (SIM_OTHER, 9, "sim.other"),
    (EXEC_JOB, 10, "exec.job"),
    (HARNESS_STAGE, 11, "harness.stage"),
    (HARNESS_POINT, 12, "harness.point"),
    (PROFILE_TOTAL, 13, "profile.total"),
];

/// Number of registered phases.
pub const PHASE_COUNT: usize = PHASES.len();

/// The simulator-facing phases whose sum is audited against `sim.step`
/// (everything inside a step except the residual `sim.other`).
pub const SIM_ATTRIBUTED: &[PhaseId] = &[
    SIM_DELIVER,
    SIM_CREDIT,
    SIM_INJECT,
    SIM_ROUTE,
    SIM_ARBITRATE,
    SIM_DRIVE,
    SIM_ENCODE,
    SIM_SINK,
];

use crate::acc::ProfileAcc;
use std::time::Instant;

/// A mark-based phase timer for the simulator hot loop.
///
/// Instead of opening and closing a span per phase (two clock reads
/// each), the network reads the clock once per phase *boundary*:
/// [`mark`](Self::mark) attributes everything since the previous mark to
/// the named phase. Marks inside one step partition the step interval
/// exactly, so the attributed phases telescope to the step total with no
/// gap and no overlap — `sum(phases) == sim.step` to the nanosecond,
/// which the telemetry integration tests assert.
#[derive(Debug)]
pub struct PhaseClock {
    last: Instant,
    step_start: Instant,
    acc: ProfileAcc,
}

impl Clone for PhaseClock {
    /// Cloning a network must not double-count its history: a clone
    /// starts a fresh, empty clock.
    fn clone(&self) -> Self {
        PhaseClock::start()
    }
}

impl Default for PhaseClock {
    fn default() -> Self {
        PhaseClock::start()
    }
}

impl PhaseClock {
    /// Creates an idle clock.
    pub fn start() -> Self {
        let now = Instant::now(); // detlint: allow(wall_clock)
        PhaseClock {
            last: now,
            step_start: now,
            acc: ProfileAcc::new(),
        }
    }

    /// Opens a new step: discards time elapsed since the previous step
    /// ended (that time belongs to the caller, not the simulator).
    #[inline]
    pub fn begin_step(&mut self) {
        let now = Instant::now(); // detlint: allow(wall_clock)
        self.last = now;
        self.step_start = now;
    }

    /// Attributes everything since the previous mark to `phase`.
    #[inline]
    pub fn mark(&mut self, phase: PhaseId) {
        let now = Instant::now(); // detlint: allow(wall_clock)
        self.acc
            .add_span(phase, now.duration_since(self.last).as_nanos() as u64);
        self.last = now;
    }

    /// Closes the step: records the whole interval since
    /// [`begin_step`](Self::begin_step) as one `sim.step` span. Reads no
    /// clock — the final [`mark`](Self::mark) already fixed the end time,
    /// so the step total equals the telescoped sum of its marks exactly.
    #[inline]
    pub fn end_step(&mut self) {
        let total = self.last.duration_since(self.step_start).as_nanos() as u64;
        self.acc.add_span(SIM_STEP, total);
    }

    /// Flushes everything recorded so far into the calling thread's
    /// accumulator (a no-op when profiling was turned off meanwhile).
    pub fn flush(&mut self) {
        let acc = std::mem::take(&mut self.acc);
        crate::absorb(Box::new(acc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(PHASES.len(), PHASE_COUNT);
        assert_eq!(SIM_STEP.name(), "sim.step");
        assert_eq!(PROFILE_TOTAL.index(), PHASE_COUNT - 1);
        // Names are unique.
        let mut seen = std::collections::BTreeSet::new();
        for p in PHASES {
            assert!(seen.insert(p), "duplicate phase name {p}");
        }
    }

    #[test]
    fn marks_telescope_exactly_to_the_step_total() {
        let mut clock = PhaseClock::start();
        for _ in 0..100 {
            clock.begin_step();
            clock.mark(SIM_DELIVER);
            clock.mark(SIM_ROUTE);
            clock.mark(SIM_OTHER);
            clock.end_step();
        }
        let attributed: u64 = [SIM_DELIVER, SIM_ROUTE, SIM_OTHER]
            .iter()
            .map(|&p| clock.acc.phase(p).nanos)
            .sum();
        assert_eq!(attributed, clock.acc.phase(SIM_STEP).nanos);
        assert_eq!(clock.acc.phase(SIM_STEP).count, 100);
    }

    #[test]
    fn clone_starts_empty() {
        let mut clock = PhaseClock::start();
        clock.begin_step();
        clock.mark(SIM_DELIVER);
        clock.end_step();
        let clone = clock.clone();
        assert_eq!(clone.acc.phase(SIM_STEP).count, 0);
        assert_eq!(clock.acc.phase(SIM_STEP).count, 1);
    }
}
