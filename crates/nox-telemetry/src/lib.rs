//! Phase-attributed self-profiling for the NoX workspace.
//!
//! This crate is the one sanctioned home of wall-clock time. Artifact
//! crates (`nox-sim`, `nox-analysis`, …) are forbidden by `detlint` from
//! reading clocks — their outputs must be bit-deterministic — so every
//! duration in the workspace flows through the primitives here:
//!
//! - a **static phase registry** ([`phase::PHASES`]) naming the simulator
//!   step phases, executor stages, and harness stages;
//! - scoped **span timers** ([`SpanGuard`]) and a mark-based
//!   [`phase::PhaseClock`] for the simulator hot loop (one clock read per
//!   phase boundary, not two per span);
//! - a per-thread **[`ProfileAcc`]** holding phase totals, named counters,
//!   gauges, and log-bucketed duration histograms;
//! - a per-job **capture/absorb** protocol ([`capture`], [`absorb`]) that
//!   lets `nox-exec` merge worker-thread measurements *in submission
//!   order*, so the merged structure (phase set, ordering, counter
//!   values) is identical at every thread count even though the durations
//!   themselves are wall-clock;
//! - a line-delimited JSON **stream sink** ([`stream`]) for live progress
//!   events — the wire format a future `noxsim serve` will speak.
//!
//! Everything is disabled by default: until [`set_profiling`] turns the
//! global switch on, no accumulator is allocated and every hook is a
//! single relaxed atomic load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

mod acc;
pub mod phase;
pub mod stream;

pub use acc::{LogHist, PhaseSlot, ProfileAcc, SpanEvent, EVENT_CAP};
pub use phase::{PhaseClock, PhaseId, PHASES};

/// The global profiling switch. Off by default; when off, every
/// instrumentation hook reduces to one relaxed atomic load.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns phase profiling on or off process-wide.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// `true` when phase profiling is enabled.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

thread_local! {
    /// The calling thread's accumulator, allocated lazily on first use
    /// (and only while profiling is enabled — the zero-cost-when-off
    /// guarantee the stream-framing tests assert).
    static ACC: RefCell<Option<Box<ProfileAcc>>> = const { RefCell::new(None) };
}

/// Runs `f` against the calling thread's accumulator, allocating it on
/// first use. Returns `None` (without allocating) when profiling is off.
pub fn with_acc<R>(f: impl FnOnce(&mut ProfileAcc) -> R) -> Option<R> {
    if !profiling() {
        return None;
    }
    ACC.with(|a| {
        let mut a = a.borrow_mut();
        let acc = a.get_or_insert_with(|| Box::new(ProfileAcc::new()));
        Some(f(acc))
    })
}

/// `true` when the calling thread has an accumulator allocated. Test
/// support for the zero-cost-when-off guarantee.
pub fn acc_allocated() -> bool {
    ACC.with(|a| a.borrow().is_some())
}

/// Detaches and returns the calling thread's accumulator, if any.
pub fn take_acc() -> Option<Box<ProfileAcc>> {
    ACC.with(|a| a.borrow_mut().take())
}

/// Merges `delta` into the calling thread's accumulator. This is how
/// `nox-exec` folds per-job captures back in, one job at a time, in
/// submission order.
pub fn absorb(delta: Box<ProfileAcc>) {
    with_acc(|a| a.absorb(*delta));
}

/// Runs `f` with a fresh accumulator and returns whatever it recorded.
///
/// The caller's accumulator (if any) is parked for the duration and
/// restored afterwards, so a capture nested inside a larger profiled
/// region measures exactly the work of `f` — this is the executor's
/// per-job measurement protocol. Returns `(result, None)` without
/// touching thread state when profiling is off.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Option<Box<ProfileAcc>>) {
    if !profiling() {
        return (f(), None);
    }
    let parked = take_acc();
    let result = f();
    let delta = take_acc();
    ACC.with(|a| *a.borrow_mut() = parked);
    (result, delta)
}

/// The process-wide epoch all span timestamps are relative to.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process epoch (established on first call).
/// Monotonic; shared by every thread, so span events from different
/// workers land on one comparable timeline.
pub fn epoch_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now); // detlint: allow(wall_clock)
    epoch.elapsed().as_nanos() as u64 // detlint: allow(wall_clock)
}

/// A monotonic wall-clock stopwatch — the only sanctioned way for other
/// workspace crates to measure a duration. The reading never feeds a
/// claims artifact; it exists for profiles, benches, and progress events.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> Self {
        Stopwatch(Instant::now()) // detlint: allow(wall_clock)
    }

    /// Nanoseconds elapsed since [`start`](Self::start).
    pub fn elapsed_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64 // detlint: allow(wall_clock)
    }

    /// Seconds elapsed since [`start`](Self::start).
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

static NEXT_THREAD_TAG: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_TAG: u32 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
}

/// A small integer identifying the calling thread on span events (Chrome
/// trace lanes). Assignment order is scheduling-dependent; the tag never
/// appears in deterministic views.
pub fn thread_tag() -> u32 {
    THREAD_TAG.with(|t| *t)
}

/// A scoped phase timer: records one span (duration plus a bounded trace
/// event) into the thread accumulator when dropped. Free when profiling
/// is off.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    phase: PhaseId,
    index: u32,
    start_ns: Option<u64>,
}

impl SpanGuard {
    /// Opens a span for `phase`.
    pub fn begin(phase: PhaseId) -> Self {
        Self::with_index(phase, 0)
    }

    /// Opens a span for `phase` carrying a caller-chosen index (e.g. the
    /// executor's job submission index) into the span event.
    pub fn with_index(phase: PhaseId, index: u32) -> Self {
        let start_ns = profiling().then(epoch_ns);
        SpanGuard {
            phase,
            index,
            start_ns,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start_ns) = self.start_ns else {
            return;
        };
        let dur_ns = epoch_ns().saturating_sub(start_ns);
        let (phase, index) = (self.phase, self.index);
        with_acc(|a| {
            a.add_span(phase, dur_ns);
            a.push_event(SpanEvent {
                phase,
                index,
                tid: thread_tag(),
                start_ns,
                dur_ns,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global profiling switch.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_profiling_allocates_nothing() {
        let _g = lock();
        set_profiling(false);
        let _ = take_acc();
        assert!(with_acc(|_| ()).is_none());
        let _span = SpanGuard::begin(phase::EXEC_JOB);
        drop(_span);
        assert!(!acc_allocated());
    }

    #[test]
    fn spans_accumulate_into_the_thread_acc() {
        let _g = lock();
        set_profiling(true);
        let _ = take_acc();
        {
            let _s = SpanGuard::begin(phase::HARNESS_STAGE);
        }
        {
            let _s = SpanGuard::with_index(phase::HARNESS_STAGE, 7);
        }
        let acc = take_acc().expect("acc allocated while profiling");
        set_profiling(false);
        let slot = acc.phase(phase::HARNESS_STAGE);
        assert_eq!(slot.count, 2);
        assert_eq!(acc.events().len(), 2);
        assert_eq!(acc.events()[1].index, 7);
    }

    #[test]
    fn capture_parks_and_restores_the_outer_acc() {
        let _g = lock();
        set_profiling(true);
        let _ = take_acc();
        with_acc(|a| a.add_count("outer", 1));
        let ((), delta) = capture(|| {
            with_acc(|a| a.add_count("inner", 5));
        });
        let delta = delta.expect("capture returns a delta while profiling");
        assert_eq!(delta.counters().get("inner"), Some(&5));
        assert!(delta.counters().get("outer").is_none());
        // The outer accumulator survived the capture untouched.
        let outer = take_acc().expect("outer acc restored");
        set_profiling(false);
        assert_eq!(outer.counters().get("outer"), Some(&1));
        assert!(outer.counters().get("inner").is_none());
    }

    #[test]
    fn absorb_merges_sums_and_appends_events() {
        let _g = lock();
        set_profiling(true);
        let _ = take_acc();
        let mut d1 = ProfileAcc::new();
        d1.add_span(phase::SIM_STEP, 10);
        d1.add_count("jobs", 1);
        let mut d2 = ProfileAcc::new();
        d2.add_span(phase::SIM_STEP, 32);
        d2.add_count("jobs", 2);
        absorb(Box::new(d1));
        absorb(Box::new(d2));
        let acc = take_acc().expect("acc allocated");
        set_profiling(false);
        assert_eq!(acc.phase(phase::SIM_STEP).count, 2);
        assert_eq!(acc.phase(phase::SIM_STEP).nanos, 42);
        assert_eq!(acc.counters().get("jobs"), Some(&3));
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = epoch_ns();
        let b = epoch_ns();
        assert!(b >= a);
    }
}
