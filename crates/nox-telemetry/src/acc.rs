//! The per-thread metrics accumulator: phase totals, named counters,
//! gauges, log-bucketed duration histograms, and a bounded span trace.
//!
//! Everything in an accumulator is a sum, a map keyed by name, or an
//! append-only list — so merging accumulators is associative, and folding
//! per-job deltas *in submission order* (what `nox-exec` does) yields a
//! structure independent of how jobs were scheduled across workers.

use std::collections::BTreeMap;

use crate::phase::{PhaseId, PHASE_COUNT};

/// Upper bound on retained span events per accumulator; beyond it new
/// events are counted but dropped, keeping long runs memory-light.
pub const EVENT_CAP: usize = 65_536;

/// Accumulated time for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSlot {
    /// Number of spans (or marks) recorded.
    pub count: u64,
    /// Total duration in nanoseconds.
    pub nanos: u64,
}

/// One completed span, for Chrome-trace export. Timestamps are relative
/// to the process epoch ([`crate::epoch_ns`]).
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Which registered phase this span belongs to.
    pub phase: PhaseId,
    /// Caller-chosen index (e.g. executor job submission index).
    pub index: u32,
    /// Thread tag of the recording thread (a Chrome trace lane).
    pub tid: u32,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A power-of-two log histogram over nanosecond durations. Bucket `b`
/// holds samples in `[2^(b-1), 2^b)` (bucket 0 holds zeros), so 64
/// buckets cover every representable duration.
#[derive(Clone, Debug)]
pub struct LogHist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0 < p <= 100`), or 0 when empty. Bucket resolution is a factor
    /// of two — enough to expose load imbalance, not for fine tails.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << b };
            }
        }
        self.max
    }
}

/// A thread's accumulated telemetry. See the module docs for the merge
/// discipline that keeps its structure deterministic.
#[derive(Clone, Debug, Default)]
pub struct ProfileAcc {
    phases: [PhaseSlot; PHASE_COUNT],
    /// Deterministic event counts (job totals, stage sizes). These are
    /// the values the determinism tests compare byte-for-byte.
    counters: BTreeMap<String, u64>,
    /// Last-write-wins observations whose values are scheduling-dependent
    /// (per-worker busy time). Excluded from deterministic views.
    gauges: BTreeMap<String, u64>,
    /// Duration histograms (job latency, queue wait). Excluded from
    /// deterministic views.
    samples: BTreeMap<String, LogHist>,
    events: Vec<SpanEvent>,
    events_dropped: u64,
}

impl ProfileAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one span to a phase total.
    pub fn add_span(&mut self, phase: PhaseId, nanos: u64) {
        let slot = &mut self.phases[phase.index()];
        slot.count += 1;
        slot.nanos += nanos;
    }

    /// Increments a named counter.
    pub fn add_count(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Sets a named gauge (last write wins on merge).
    pub fn set_gauge(&mut self, key: &str, value: u64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Records one duration sample into a named histogram.
    pub fn sample_ns(&mut self, key: &str, ns: u64) {
        self.samples.entry(key.to_string()).or_default().record(ns);
    }

    /// Appends a span event, dropping (but counting) past [`EVENT_CAP`].
    pub fn push_event(&mut self, ev: SpanEvent) {
        if self.events.len() < EVENT_CAP {
            self.events.push(ev);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Merges `other` into `self`: phase totals and counters add,
    /// gauges overwrite, histograms merge, events append (bounded).
    pub fn absorb(&mut self, other: ProfileAcc) {
        for (slot, o) in self.phases.iter_mut().zip(other.phases.iter()) {
            slot.count += o.count;
            slot.nanos += o.nanos;
        }
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges {
            self.gauges.insert(k, v);
        }
        for (k, h) in other.samples {
            self.samples.entry(k).or_default().merge(&h);
        }
        self.events_dropped += other.events_dropped;
        for ev in other.events {
            self.push_event(ev);
        }
    }

    /// The accumulated slot for one phase.
    pub fn phase(&self, phase: PhaseId) -> PhaseSlot {
        self.phases[phase.index()]
    }

    /// All phase slots, in registry order.
    pub fn phases(&self) -> impl Iterator<Item = (PhaseId, PhaseSlot)> + '_ {
        self.phases
            .iter()
            .enumerate()
            .map(|(i, s)| (PhaseId(i as u8), *s))
    }

    /// The named counters (deterministic values).
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The named gauges (scheduling-dependent values).
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// The named duration histograms.
    pub fn samples(&self) -> &BTreeMap<String, LogHist> {
        &self.samples
    }

    /// Retained span events.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events dropped past [`EVENT_CAP`].
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase;

    #[test]
    fn log_hist_buckets_and_percentiles() {
        let mut h = LogHist::new();
        assert_eq!(h.percentile_ns(99.0), 0);
        for ns in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.sum_ns(), 1_001_006);
        // The p100 bucket bound covers the max sample.
        assert!(h.percentile_ns(100.0) >= 1_000_000);
        // Half the samples are <= 3ns.
        assert!(h.percentile_ns(50.0) <= 4);
    }

    #[test]
    fn hist_merge_matches_combined_recording() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut both = LogHist::new();
        for (i, ns) in [5u64, 17, 300, 4096, 9].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*ns);
            both.record(*ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum_ns(), both.sum_ns());
        assert_eq!(a.min_ns(), both.min_ns());
        assert_eq!(a.max_ns(), both.max_ns());
    }

    #[test]
    fn event_cap_drops_but_counts() {
        let mut acc = ProfileAcc::new();
        let ev = SpanEvent {
            phase: phase::EXEC_JOB,
            index: 0,
            tid: 0,
            start_ns: 0,
            dur_ns: 1,
        };
        for _ in 0..EVENT_CAP + 10 {
            acc.push_event(ev);
        }
        assert_eq!(acc.events().len(), EVENT_CAP);
        assert_eq!(acc.events_dropped(), 10);
    }

    #[test]
    fn absorb_is_order_insensitive_for_sums() {
        let mut d1 = ProfileAcc::new();
        d1.add_count("points", 3);
        d1.sample_ns("job", 100);
        let mut d2 = ProfileAcc::new();
        d2.add_count("points", 4);
        d2.sample_ns("job", 900);

        let mut ab = ProfileAcc::new();
        ab.absorb(d1.clone());
        ab.absorb(d2.clone());
        let mut ba = ProfileAcc::new();
        ba.absorb(d2);
        ba.absorb(d1);
        assert_eq!(ab.counters(), ba.counters());
        assert_eq!(ab.samples()["job"].sum_ns(), ba.samples()["job"].sum_ns());
    }
}
