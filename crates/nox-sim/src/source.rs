//! Packet injection sources.
//!
//! Each node has a [`Source`] holding the node's share of the injection
//! trace. Packets enter an unbounded source queue at their creation time
//! (latency measurement starts there, so saturation shows up as unbounded
//! queueing delay, as in the paper's latency curves) and their flits feed
//! the router's local input port at up to one flit per cycle — the
//! injection bandwidth of a 64-bit interface.

use std::collections::VecDeque;

use crate::flit::{word_for, FlitKey, PacketId, PacketTable};
use crate::router::InputPort;
use crate::stats::Counters;

/// The injection process for one node.
#[derive(Clone, Debug, Default)]
pub struct Source {
    /// Packets scheduled for this node, in creation order.
    pending: VecDeque<PacketId>,
    /// Packet currently being injected flit by flit.
    current: Option<(PacketId, u16, u16)>, // (id, next_seq, len)
}

impl Source {
    /// Creates an empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a packet (must be pushed in creation-time order).
    pub fn schedule(&mut self, id: PacketId) {
        self.pending.push_back(id);
    }

    /// Number of packets not yet fully injected.
    pub fn backlog(&self) -> usize {
        self.pending.len() + usize::from(self.current.is_some())
    }

    /// `true` when everything scheduled has been injected.
    pub fn is_done(&self) -> bool {
        self.backlog() == 0
    }

    /// Injects up to one flit into the local input port, returning the key
    /// of the flit injected this cycle (if any).
    pub fn inject(
        &mut self,
        cycle: u64,
        local_in: &mut InputPort,
        packets: &PacketTable,
        counters: &mut Counters,
    ) -> Option<FlitKey> {
        if self.current.is_none() {
            if let Some(&id) = self.pending.front() {
                if packets.meta(id).created_cycle <= cycle {
                    self.pending.pop_front();
                    self.current = Some((id, 0, packets.meta(id).len));
                    counters.packets_injected += 1;
                }
            }
        }
        let (id, seq, len) = self.current?;
        if !local_in.has_space() {
            return None;
        }
        let key = FlitKey { packet: id, seq };
        local_in.receive(word_for(key));
        counters.flits_injected += 1;
        counters.buffer_writes += 1;
        self.current = if seq + 1 == len {
            None
        } else {
            Some((id, seq + 1, len))
        };
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arch;
    use crate::flit::PacketMeta;
    use crate::router::Router;
    use crate::topology::{NodeId, Port, Topology};

    fn setup() -> (PacketTable, Router, Counters) {
        (
            PacketTable::new(),
            Router::new(NodeId(0), Arch::Nox, Topology::mesh(2, 2), 4),
            Counters::new(),
        )
    }

    #[test]
    fn injects_one_flit_per_cycle() {
        let (mut packets, mut router, mut counters) = setup();
        let mut src = Source::new();
        let id = packets.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(3),
            len: 3,
            created_cycle: 0,
            measured: false,
        });
        src.schedule(id);
        for cycle in 0..3 {
            src.inject(
                cycle,
                router.input_mut(Port::Local.id()),
                &packets,
                &mut counters,
            );
        }
        assert_eq!(router.input(Port::Local.id()).occupancy(), 3);
        assert!(src.is_done());
        assert_eq!(counters.flits_injected, 3);
        assert_eq!(counters.packets_injected, 1);
    }

    #[test]
    fn respects_creation_time() {
        let (mut packets, mut router, mut counters) = setup();
        let mut src = Source::new();
        let id = packets.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(3),
            len: 1,
            created_cycle: 5,
            measured: false,
        });
        src.schedule(id);
        src.inject(
            4,
            router.input_mut(Port::Local.id()),
            &packets,
            &mut counters,
        );
        assert_eq!(router.input(Port::Local.id()).occupancy(), 0);
        src.inject(
            5,
            router.input_mut(Port::Local.id()),
            &packets,
            &mut counters,
        );
        assert_eq!(router.input(Port::Local.id()).occupancy(), 1);
    }

    #[test]
    fn stalls_when_buffer_full() {
        let (mut packets, mut router, mut counters) = setup();
        let mut src = Source::new();
        for _ in 0..6 {
            let id = packets.push(PacketMeta {
                src: NodeId(0),
                dest: NodeId(3),
                len: 1,
                created_cycle: 0,
                measured: false,
            });
            src.schedule(id);
        }
        for cycle in 0..6 {
            src.inject(
                cycle,
                router.input_mut(Port::Local.id()),
                &packets,
                &mut counters,
            );
        }
        // Buffer depth is 4: two packets remain queued at the source.
        assert_eq!(router.input(Port::Local.id()).occupancy(), 4);
        assert_eq!(src.backlog(), 2);
    }

    #[test]
    fn multiflit_packets_inject_contiguously() {
        let (mut packets, mut router, mut counters) = setup();
        let mut src = Source::new();
        let a = packets.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(3),
            len: 2,
            created_cycle: 0,
            measured: false,
        });
        let b = packets.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(3),
            len: 1,
            created_cycle: 0,
            measured: false,
        });
        src.schedule(a);
        src.schedule(b);
        for cycle in 0..3 {
            src.inject(
                cycle,
                router.input_mut(Port::Local.id()),
                &packets,
                &mut counters,
            );
        }
        let fifo_keys: Vec<FlitKey> = (0..3)
            .map(|_| {
                let w = router
                    .input_mut(Port::Local.id())
                    .receive_test_pop()
                    .expect("flit");
                FlitKey::unpack(w.sole_key().unwrap())
            })
            .collect();
        assert_eq!(fifo_keys[0].packet, a);
        assert_eq!(fifo_keys[1].packet, a);
        assert_eq!(fifo_keys[2].packet, b);
    }
}
