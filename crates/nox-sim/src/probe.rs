//! `nox-probe` telemetry hooks: per-router metrics, event traces, and
//! latency decomposition — zero-cost unless the `probe` feature is on.
//!
//! The paper instruments its simulator "with necessary event counters to
//! form an accurate power model" (§4), but [`Counters`](crate::stats::Counters)
//! is network-global: it can reproduce Figure 12 yet cannot show *where*
//! contention lives. The [`Probe`] closes that gap with three layers:
//!
//! 1. **Per-router / per-link time-windowed metrics** — link utilization,
//!    input-buffer occupancy, encoded-chain-length histograms, per-output
//!    NoX FSM mode occupancy (Recovery / Scheduled / Stream), collision and
//!    abort counts — accumulated per fixed-size cycle window with
//!    saturation-onset detection.
//! 2. **Cycle-level event traces** — a bounded ring buffer of injection,
//!    link-word, wasted-cycle, decode-latch, and ejection events, which
//!    the `nox-probe` crate exports as Chrome trace-event JSON or as the
//!    textual waveforms used for the paper's Figure 2/3/7 diagrams.
//! 3. **Per-packet latency decomposition** — source-queueing time versus
//!    in-network time, each with streaming moments and a log-bucketed
//!    histogram for percentile queries.
//!
//! Like the `sanitize` feature, everything here compiles away entirely
//! when the feature is disabled: the hook methods on
//! [`TickCtx`](crate::router::TickCtx) become empty `#[inline(always)]`
//! bodies and [`Network`](crate::network::Network) carries no extra state.
//! With the feature enabled but no probe attached, each hook is a single
//! `Option` test on a cold branch.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use nox_core::{Mode, PortId};

use crate::flit::{FlitKey, PacketId};
use crate::histogram::LogHistogram;
use crate::router::{Router, Send};
use crate::sink::Sink;
use crate::stats::LatencyStats;
use crate::topology::{NodeId, Topology};

/// A link is considered saturated within a window when its busy fraction
/// (productive plus wasted words per cycle) reaches this level.
pub const SATURATION_UTIL: f64 = 0.95;

/// Static configuration of one [`Probe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Length of one metrics window in cycles.
    pub window_cycles: u64,
    /// Capacity of the event ring buffer; the oldest events are dropped
    /// once it fills ([`Probe::events_dropped`] counts them).
    pub ring_capacity: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            window_cycles: 1_024,
            ring_capacity: 65_536,
        }
    }
}

/// What happened in one traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A packet's head flit entered the network at its source.
    Inject {
        /// The injected packet.
        packet: PacketId,
    },
    /// A (possibly encoded) word was launched onto a link.
    Send {
        /// Constituent flit keys of the word ([`FlitKey::pack`] format).
        keys: Vec<u64>,
        /// `true` when the word superposes more than one flit.
        encoded: bool,
    },
    /// A link cycle was driven with an invalid word (NoX abort or
    /// speculative collision): full channel energy, nothing delivered.
    Wasted {
        /// Number of inputs that drove the switch.
        colliding: u8,
        /// `true` for a NoX multi-flit abort, `false` for a speculative
        /// collision.
        abort: bool,
    },
    /// An encoded word was latched into a decode register (router input
    /// or sink).
    Latch,
    /// A packet's tail flit was consumed at its destination.
    Eject {
        /// The completed packet.
        packet: PacketId,
    },
    /// A fault-campaign event (feature `faults`): an injection, a
    /// detection, or a recovery action at this node/port.
    Fault {
        /// What happened, e.g. `"inject bit-flip"` or `"detect crc"`.
        label: &'static str,
    },
}

/// One entry of the cycle-level event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Router (for link/latch events) or core (for inject/eject events).
    pub node: NodeId,
    /// Output port for `Send`/`Wasted`, input port for `Latch`, the local
    /// port for `Inject`/`Eject`.
    pub port: PortId,
    /// The event payload.
    pub kind: EventKind,
}

/// Accumulated activity of one router (whole-run totals or one window).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Productive words launched per output port.
    pub link_busy: Vec<u64>,
    /// Invalid words driven per output port (aborts/collisions).
    pub link_wasted: Vec<u64>,
    /// Per-output NoX FSM mode occupancy, sampled once per cycle:
    /// `[Recovery, Scheduled, Stream]` cycle counts. All zero for
    /// non-NoX routers.
    pub mode_cycles: Vec<[u64; 3]>,
    /// Sum over sampled cycles of total input-buffer occupancy (flits).
    pub occupancy_sum: u64,
    /// Speculative collision cycles charged to this router.
    pub collisions: u64,
    /// NoX multi-flit abort cycles charged to this router.
    pub aborts: u64,
    /// Productive encoded words launched by this router.
    pub encoded: u64,
    /// Histogram of encoded-word sizes: `chain_hist[k]` counts encoded
    /// words superposing exactly `k` flits (`k >= 2`).
    pub chain_hist: Vec<u64>,
}

impl RouterMetrics {
    fn new(ports: usize) -> Self {
        RouterMetrics {
            link_busy: vec![0; ports],
            link_wasted: vec![0; ports],
            mode_cycles: vec![[0; 3]; ports],
            occupancy_sum: 0,
            collisions: 0,
            aborts: 0,
            encoded: 0,
            chain_hist: vec![0; ports + 1],
        }
    }

    fn reset(&mut self) {
        self.link_busy.iter_mut().for_each(|c| *c = 0);
        self.link_wasted.iter_mut().for_each(|c| *c = 0);
        self.mode_cycles.iter_mut().for_each(|m| *m = [0; 3]);
        self.occupancy_sum = 0;
        self.collisions = 0;
        self.aborts = 0;
        self.encoded = 0;
        self.chain_hist.iter_mut().for_each(|c| *c = 0);
    }

    /// Total words (productive + wasted) this router drove on `port`.
    pub fn link_transitions(&self, port: PortId) -> u64 {
        self.link_busy[port.index()] + self.link_wasted[port.index()]
    }
}

/// Aggregated telemetry for one completed metrics window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSummary {
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Window length in cycles (the last window of a run may be short).
    pub cycles: u64,
    /// Highest per-link utilization observed in the window.
    pub max_link_util: f64,
    /// Mean utilization across all connected links.
    pub mean_link_util: f64,
    /// Links whose utilization reached [`SATURATION_UTIL`].
    pub saturated_links: usize,
    /// Mean input-buffer occupancy per router, in flits.
    pub avg_occupancy: f64,
    /// Speculative collision cycles in the window.
    pub collisions: u64,
    /// NoX abort cycles in the window.
    pub aborts: u64,
    /// Productive encoded transfers in the window.
    pub encoded: u64,
}

/// Per-packet latency decomposition: where the nanoseconds went.
#[derive(Clone, Debug)]
pub struct LatencyBreakdown {
    /// Creation-to-ejection latency (what the paper's figures report).
    pub total: LatencyStats,
    /// Histogram of total latency for percentile queries, in ns.
    pub total_hist: LogHistogram,
    /// Source-queueing component: creation to head-flit injection.
    pub queue: LatencyStats,
    /// Histogram of the queueing component, in ns.
    pub queue_hist: LogHistogram,
    /// In-network component: head-flit injection to tail ejection.
    pub network: LatencyStats,
    /// Histogram of the network component, in ns.
    pub network_hist: LogHistogram,
}

impl Default for LatencyBreakdown {
    fn default() -> Self {
        LatencyBreakdown {
            total: LatencyStats::new(),
            total_hist: LogHistogram::default_latency(),
            queue: LatencyStats::new(),
            queue_hist: LogHistogram::default_latency(),
            network: LatencyStats::new(),
            network_hist: LogHistogram::default_latency(),
        }
    }
}

/// The telemetry collector attached to a
/// [`Network`](crate::network::Network) via
/// [`enable_probe`](crate::network::Network::enable_probe).
#[derive(Clone, Debug)]
pub struct Probe {
    cfg: ProbeConfig,
    topo: Topology,
    clock_ns: f64,
    cur_cycle: u64,
    cycles_observed: u64,
    window_start: u64,
    window_cycles: u64,
    totals: Vec<RouterMetrics>,
    window: Vec<RouterMetrics>,
    windows: Vec<WindowSummary>,
    saturation_onset: Option<u64>,
    events: VecDeque<TraceEvent>,
    events_dropped: u64,
    inject_cycle: BTreeMap<PacketId, u64>,
    breakdown: LatencyBreakdown,
    sink_occupancy_sum: u64,
}

impl Probe {
    /// Creates a probe for a network of the given topology and clock.
    pub fn new(cfg: ProbeConfig, topo: Topology, clock_ns: f64) -> Self {
        assert!(cfg.window_cycles > 0, "window length must be non-zero");
        let ports = topo.ports() as usize;
        let routers = topo.routers();
        Probe {
            cfg,
            topo,
            clock_ns,
            cur_cycle: 0,
            cycles_observed: 0,
            window_start: 0,
            window_cycles: 0,
            totals: (0..routers).map(|_| RouterMetrics::new(ports)).collect(),
            window: (0..routers).map(|_| RouterMetrics::new(ports)).collect(),
            windows: Vec::new(),
            saturation_onset: None,
            events: VecDeque::with_capacity(cfg.ring_capacity.min(4_096)),
            events_dropped: 0,
            inject_cycle: BTreeMap::new(),
            breakdown: LatencyBreakdown::default(),
            sink_occupancy_sum: 0,
        }
    }

    // ------------------------------------------------------------ accessors

    /// The probe's configuration.
    pub fn config(&self) -> ProbeConfig {
        self.cfg
    }

    /// The observed network's topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The observed network's clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Cycles observed so far.
    pub fn cycles_observed(&self) -> u64 {
        self.cycles_observed
    }

    /// Whole-run totals, indexed by router.
    pub fn totals(&self) -> &[RouterMetrics] {
        &self.totals
    }

    /// Completed metrics windows, oldest first.
    pub fn windows(&self) -> &[WindowSummary] {
        &self.windows
    }

    /// Start cycle of the first window in which any link reached
    /// [`SATURATION_UTIL`], if one has.
    pub fn saturation_onset_cycle(&self) -> Option<u64> {
        self.saturation_onset
    }

    /// The buffered event trace, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events discarded because the ring buffer was full.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The per-packet latency decomposition.
    pub fn breakdown(&self) -> &LatencyBreakdown {
        &self.breakdown
    }

    /// Mean input-buffer occupancy of one router over the observed run,
    /// in flits (summed across its input ports).
    pub fn avg_occupancy(&self, router: NodeId) -> f64 {
        if self.cycles_observed == 0 {
            return 0.0;
        }
        self.totals[router.index()].occupancy_sum as f64 / self.cycles_observed as f64
    }

    /// Mean ejection-buffer occupancy across all sinks, in flits.
    pub fn avg_sink_occupancy(&self) -> f64 {
        if self.cycles_observed == 0 {
            return 0.0;
        }
        self.sink_occupancy_sum as f64 / (self.cycles_observed * self.topo.cores() as u64) as f64
    }

    /// Utilization of one router's output link over the observed run:
    /// words driven (productive or not) per cycle.
    pub fn link_utilization(&self, router: NodeId, out: PortId) -> f64 {
        if self.cycles_observed == 0 {
            return 0.0;
        }
        self.totals[router.index()].link_transitions(out) as f64 / self.cycles_observed as f64
    }

    /// Highest output-link utilization of one router over the observed
    /// run (connected ports only).
    pub fn max_link_utilization(&self, router: NodeId) -> f64 {
        (0..self.topo.ports())
            .filter(|&p| self.port_connected(router, PortId(p)))
            .map(|p| self.link_utilization(router, PortId(p)))
            .fold(0.0, f64::max)
    }

    /// Network-wide NoX FSM mode occupancy summed over all outputs:
    /// `[Recovery, Scheduled, Stream]` cycle counts.
    pub fn mode_occupancy(&self) -> [u64; 3] {
        let mut acc = [0u64; 3];
        for r in &self.totals {
            for m in &r.mode_cycles {
                for (a, b) in acc.iter_mut().zip(m) {
                    *a += b;
                }
            }
        }
        acc
    }

    /// Network-wide encoded-chain-length histogram (index = flits per
    /// encoded word).
    pub fn chain_histogram(&self) -> Vec<u64> {
        let mut acc = vec![0u64; self.topo.ports() as usize + 1];
        for r in &self.totals {
            for (a, b) in acc.iter_mut().zip(&r.chain_hist) {
                *a += b;
            }
        }
        acc
    }

    fn port_connected(&self, router: NodeId, port: PortId) -> bool {
        self.topo.is_local(port) || self.topo.link_dest(router, port).is_some()
    }

    // ---------------------------------------------------------------- hooks

    fn push_event(&mut self, e: TraceEvent) {
        if self.events.len() == self.cfg.ring_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Marks the start of a network cycle; router-side hooks use this to
    /// timestamp events.
    pub(crate) fn on_cycle_start(&mut self, cycle: u64) {
        self.cur_cycle = cycle;
    }

    /// A flit entered the network at `core`'s source.
    pub(crate) fn on_inject(&mut self, cycle: u64, core: NodeId, key: FlitKey) {
        if key.seq != 0 {
            return;
        }
        self.inject_cycle.insert(key.packet, cycle);
        self.push_event(TraceEvent {
            cycle,
            node: core,
            port: self.topo.local_port(core),
            kind: EventKind::Inject { packet: key.packet },
        });
    }

    /// A packet's tail flit was consumed at its destination on `cycle`.
    pub(crate) fn on_eject(&mut self, cycle: u64, core: NodeId, packet: PacketId, created: u64) {
        self.push_event(TraceEvent {
            cycle,
            node: core,
            port: self.topo.local_port(core),
            kind: EventKind::Eject { packet },
        });
        let total_ns = cycle.saturating_sub(created) as f64 * self.clock_ns;
        self.breakdown.total.record(total_ns);
        self.breakdown.total_hist.record(total_ns);
        if let Some(injected) = self.inject_cycle.remove(&packet) {
            let queue_ns = injected.saturating_sub(created) as f64 * self.clock_ns;
            let net_ns = cycle.saturating_sub(injected) as f64 * self.clock_ns;
            self.breakdown.queue.record(queue_ns);
            self.breakdown.queue_hist.record(queue_ns);
            self.breakdown.network.record(net_ns);
            self.breakdown.network_hist.record(net_ns);
        }
    }

    /// A NoX output drove a productive encoded word of `chain_len` flits.
    pub(crate) fn on_encoded(&mut self, node: NodeId, _out: PortId, chain_len: u8) {
        let m = &mut self.window[node.index()];
        m.encoded += 1;
        let idx = (chain_len as usize).min(m.chain_hist.len() - 1);
        m.chain_hist[idx] += 1;
    }

    /// An output drove an invalid word: a NoX abort or a speculative
    /// collision.
    pub(crate) fn on_wasted(&mut self, node: NodeId, out: PortId, colliding: u8, abort: bool) {
        let m = &mut self.window[node.index()];
        m.link_wasted[out.index()] += 1;
        if abort {
            m.aborts += 1;
        } else {
            m.collisions += 1;
        }
        self.push_event(TraceEvent {
            cycle: self.cur_cycle,
            node,
            port: out,
            kind: EventKind::Wasted { colliding, abort },
        });
    }

    /// A router input (or sink) latched an encoded word into its decode
    /// register.
    pub(crate) fn on_latch(&mut self, node: NodeId, input: PortId) {
        self.push_event(TraceEvent {
            cycle: self.cur_cycle,
            node,
            port: input,
            kind: EventKind::Latch,
        });
    }

    /// A fault-campaign event: injection, detection, or recovery.
    #[cfg(feature = "faults")]
    pub(crate) fn on_fault(&mut self, node: NodeId, port: PortId, label: &'static str) {
        self.push_event(TraceEvent {
            cycle: self.cur_cycle,
            node,
            port,
            kind: EventKind::Fault { label },
        });
    }

    /// End-of-cycle sampling: records this cycle's launched link words,
    /// buffer occupancies, and NoX FSM modes, then rolls the metrics
    /// window over if it filled.
    pub(crate) fn on_cycle_end(
        &mut self,
        cycle: u64,
        sends: &[Send],
        routers: &[Router],
        sinks: &[Sink],
    ) {
        if self.window_cycles == 0 {
            self.window_start = cycle;
        }
        for s in sends {
            self.window[s.node.index()].link_busy[s.out.index()] += 1;
            let keys = s.word.keys().to_vec();
            let encoded = keys.len() > 1;
            self.push_event(TraceEvent {
                cycle,
                node: s.node,
                port: s.out,
                kind: EventKind::Send { keys, encoded },
            });
        }
        for r in routers {
            let m = &mut self.window[r.node().index()];
            m.occupancy_sum += r.buffered_flits() as u64;
            for p in 0..r.ports() {
                if let Some(mode) = r.output_mode(PortId(p)) {
                    let slot = match mode {
                        Mode::Recovery => 0,
                        Mode::Scheduled => 1,
                        Mode::Stream => 2,
                    };
                    m.mode_cycles[p as usize][slot] += 1;
                }
            }
        }
        for s in sinks {
            self.sink_occupancy_sum += s.occupancy() as u64;
        }
        self.cycles_observed += 1;
        self.window_cycles += 1;
        if self.window_cycles >= self.cfg.window_cycles {
            self.roll_window();
        }
    }

    /// Closes the current (possibly partial) window. Called automatically
    /// when a window fills; call it once after a run to flush the tail.
    pub fn finish(&mut self) {
        if self.window_cycles > 0 {
            self.roll_window();
        }
    }

    fn roll_window(&mut self) {
        let cycles = self.window_cycles;
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut links = 0usize;
        let mut saturated = 0usize;
        let mut occ_sum = 0u64;
        let mut collisions = 0u64;
        let mut aborts = 0u64;
        let mut encoded = 0u64;
        for (i, w) in self.window.iter().enumerate() {
            let node = NodeId(i as u16);
            for p in 0..self.topo.ports() {
                let port = PortId(p);
                if !self.port_connected(node, port) {
                    continue;
                }
                let util = w.link_transitions(port) as f64 / cycles as f64;
                max_util = max_util.max(util);
                util_sum += util;
                links += 1;
                if util >= SATURATION_UTIL {
                    saturated += 1;
                }
            }
            occ_sum += w.occupancy_sum;
            collisions += w.collisions;
            aborts += w.aborts;
            encoded += w.encoded;
        }
        let summary = WindowSummary {
            start_cycle: self.window_start,
            cycles,
            max_link_util: max_util,
            mean_link_util: if links == 0 {
                0.0
            } else {
                util_sum / links as f64
            },
            saturated_links: saturated,
            avg_occupancy: occ_sum as f64 / (cycles * self.topo.routers() as u64) as f64,
            collisions,
            aborts,
            encoded,
        };
        if saturated > 0 && self.saturation_onset.is_none() {
            self.saturation_onset = Some(self.window_start);
        }
        self.windows.push(summary);
        // Fold the window into the run totals and reset it.
        for (t, w) in self.totals.iter_mut().zip(self.window.iter_mut()) {
            for (a, b) in t.link_busy.iter_mut().zip(&w.link_busy) {
                *a += b;
            }
            for (a, b) in t.link_wasted.iter_mut().zip(&w.link_wasted) {
                *a += b;
            }
            for (a, b) in t.mode_cycles.iter_mut().zip(&w.mode_cycles) {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            t.occupancy_sum += w.occupancy_sum;
            t.collisions += w.collisions;
            t.aborts += w.aborts;
            t.encoded += w.encoded;
            for (a, b) in t.chain_hist.iter_mut().zip(&w.chain_hist) {
                *a += b;
            }
            w.reset();
        }
        self.window_start += self.window_cycles;
        self.window_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, NetConfig};
    use crate::network::Network;
    use crate::trace::{PacketEvent, Trace};

    fn contended_trace(n: usize) -> Trace {
        // Two sources equidistant from a common destination sending
        // simultaneous packets: their flits reach the merge router on the
        // same cycle, guaranteeing collisions, but the spacing (4 ns >>
        // clock) keeps every link far from saturation.
        let mut t = Trace::new();
        for i in 0..n {
            for src in [6u16, 9] {
                t.push(PacketEvent {
                    time_ns: i as f64 * 4.0,
                    src: NodeId(src),
                    dest: NodeId(10),
                    len: 1,
                });
            }
        }
        t
    }

    fn probed_net(arch: Arch) -> Network {
        let mut net = Network::new(
            NetConfig::small(arch),
            &contended_trace(40),
            (0.0, f64::MAX),
        );
        net.enable_probe(ProbeConfig {
            window_cycles: 64,
            ring_capacity: 4_096,
        });
        net
    }

    #[test]
    fn probe_counts_match_global_counters() {
        for arch in Arch::ALL {
            let mut net = probed_net(arch);
            assert!(net.run_to_quiescence(100_000), "{arch} failed to drain");
            let c = *net.counters();
            let mut probe = net.take_probe().expect("probe attached");
            probe.finish();
            let totals_busy: u64 = probe
                .totals()
                .iter()
                .map(|r| r.link_busy.iter().sum::<u64>())
                .sum();
            let totals_wasted: u64 = probe
                .totals()
                .iter()
                .map(|r| r.link_wasted.iter().sum::<u64>())
                .sum();
            assert_eq!(totals_busy, c.link_flits, "{arch} productive words");
            assert_eq!(totals_wasted, c.link_wasted, "{arch} wasted words");
            let encoded: u64 = probe.totals().iter().map(|r| r.encoded).sum();
            assert_eq!(encoded, c.encoded_transfers, "{arch} encoded words");
            let aborts: u64 = probe.totals().iter().map(|r| r.aborts).sum();
            assert_eq!(aborts, c.aborts, "{arch} aborts");
            let collisions: u64 = probe.totals().iter().map(|r| r.collisions).sum();
            assert_eq!(collisions, c.collisions, "{arch} collisions");
        }
    }

    #[test]
    fn decomposition_components_sum_to_total() {
        let mut net = probed_net(Arch::Nox);
        assert!(net.run_to_quiescence(100_000));
        let mut probe = net.take_probe().expect("probe attached");
        probe.finish();
        let b = probe.breakdown();
        assert_eq!(b.total.count(), 80, "all packets decomposed");
        assert_eq!(b.queue.count(), b.network.count());
        let sum = b.queue.sum() + b.network.sum();
        assert!(
            (sum - b.total.sum()).abs() < 1e-6 * b.total.sum().max(1.0),
            "queue + network must equal total: {} vs {}",
            sum,
            b.total.sum()
        );
        assert!(b.total_hist.percentile(99.0) >= b.total_hist.percentile(50.0));
    }

    #[test]
    fn nox_contention_produces_encoded_events_and_mode_occupancy() {
        let mut net = probed_net(Arch::Nox);
        assert!(net.run_to_quiescence(100_000));
        let mut probe = net.take_probe().expect("probe attached");
        probe.finish();
        let modes = probe.mode_occupancy();
        assert!(modes[0] > 0, "Recovery cycles observed");
        let chain = probe.chain_histogram();
        assert!(chain[2] > 0, "two-flit encoded words observed: {chain:?}");
        assert!(probe
            .events()
            .any(|e| matches!(e.kind, EventKind::Send { encoded: true, .. })));
        assert!(probe.events().any(|e| matches!(e.kind, EventKind::Latch)));
    }

    #[test]
    fn windows_cover_the_run() {
        let mut net = probed_net(Arch::SpecAccurate);
        assert!(net.run_to_quiescence(100_000));
        let mut probe = net.take_probe().expect("probe attached");
        probe.finish();
        let total: u64 = probe.windows().iter().map(|w| w.cycles).sum();
        assert_eq!(total, probe.cycles_observed());
        assert!(probe.windows().len() >= 2, "expected multiple windows");
        // Light load: nothing should look saturated.
        assert_eq!(probe.saturation_onset_cycle(), None);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let mut net = Network::new(
            NetConfig::small(Arch::Nox),
            &contended_trace(200),
            (0.0, f64::MAX),
        );
        net.enable_probe(ProbeConfig {
            window_cycles: 32,
            ring_capacity: 16,
        });
        assert!(net.run_to_quiescence(200_000));
        let probe = net.probe().expect("probe attached");
        assert!(probe.events().count() <= 16);
        assert!(probe.events_dropped() > 0);
    }

    #[test]
    fn saturation_onset_detected_under_overload() {
        // Every node floods node 0: the ejection link must saturate.
        let mut t = Trace::new();
        for i in 0..400 {
            for src in 1..16u16 {
                t.push(PacketEvent {
                    time_ns: i as f64 * 0.8,
                    src: NodeId(src),
                    dest: NodeId(0),
                    len: 1,
                });
            }
        }
        let mut net = Network::new(NetConfig::small(Arch::Nox), &t, (0.0, f64::MAX));
        net.enable_probe(ProbeConfig {
            window_cycles: 128,
            ring_capacity: 1_024,
        });
        net.run(2_000);
        let probe = net.probe().expect("probe attached");
        assert!(
            probe.saturation_onset_cycle().is_some(),
            "hotspot overload must saturate a link"
        );
        assert!(probe.windows().iter().any(|w| w.max_link_util > 0.9));
    }
}
