//! Packet ejection sinks.
//!
//! The network interface at each node ejects at most one flit per cycle —
//! matching the 64-bit link bandwidth. Under the NoX architecture the
//! ejection port can receive *encoded* words (collisions happen on local
//! output ports like any other), so the sink embeds the same decode
//! register and XOR logic as a router input port (§2.4).
//!
//! Every consumed flit is integrity-checked: the payload recovered through
//! however many XOR encodes and decodes it took must equal the flit's
//! original deterministic payload bits.

use std::collections::VecDeque;

use nox_core::{DecodeAction, DecodePlan, Decoder};

use crate::flit::{FlitInfo, FlitKey, PacketTable, Word};
use crate::stats::Counters;
use crate::topology::NodeId;

/// What a sink did in one drain cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkOutcome {
    /// A buffer slot freed this cycle (a credit for the local output).
    pub credit_freed: bool,
    /// The flit consumed this cycle, if any.
    pub consumed: Option<FlitInfo>,
    /// Fault-campaign event label for the probe trace, if a fault was
    /// detected or a corruption slipped through at this sink.
    #[cfg(feature = "faults")]
    pub fault_event: Option<&'static str>,
}

/// The ejection interface of one node.
#[derive(Clone, Debug)]
pub struct Sink {
    node: NodeId,
    fifo: VecDeque<Word>,
    capacity: usize,
    decoder: Decoder<u64>,
}

impl Sink {
    /// Creates a sink with the given ejection buffer depth.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        Sink {
            node,
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            decoder: Decoder::new(),
        }
    }

    /// Accepts an arriving word from the local output channel.
    ///
    /// # Panics
    ///
    /// Panics on overflow — the credit protocol must prevent it.
    pub fn receive(&mut self, word: Word) {
        assert!(
            self.fifo.len() < self.capacity,
            "ejection buffer overflow: credit protocol violated"
        );
        self.fifo.push_back(word);
    }

    /// `true` when no words are buffered and no decode is in progress.
    pub fn is_idle(&self) -> bool {
        self.fifo.is_empty() && !self.decoder.is_mid_chain()
    }

    /// `true` when the ejection buffer can accept another word.
    #[cfg(feature = "faults")]
    pub(crate) fn has_space(&self) -> bool {
        self.fifo.len() < self.capacity
    }

    /// Current ejection buffer occupancy in words.
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// Words currently buffered, head first (sanitizer support).
    #[cfg(feature = "sanitize")]
    pub(crate) fn buffered_words(&self) -> impl Iterator<Item = &Word> {
        self.fifo.iter()
    }

    /// The decode register contents, if a chain is in progress
    /// (sanitizer support).
    #[cfg(feature = "sanitize")]
    pub(crate) fn decode_register(&self) -> Option<&Word> {
        self.decoder.register()
    }

    /// Drains at most one presented flit (or performs one decode latch).
    ///
    /// # Panics
    ///
    /// Panics if a consumed flit fails the payload integrity check or was
    /// delivered to the wrong node — either indicates a router bug.
    pub fn drain(&mut self, packets: &PacketTable, counters: &mut Counters) -> SinkOutcome {
        match self.decoder.plan(self.fifo.front()) {
            DecodePlan::Idle => SinkOutcome::default(),
            DecodePlan::Latch => {
                let w = self.fifo.pop_front().expect("planned latch without head");
                self.decoder.latch(w);
                counters.buffer_reads += 1;
                counters.decode_reg_writes += 1;
                SinkOutcome {
                    credit_freed: true,
                    ..Default::default()
                }
            }
            DecodePlan::Present { word, action } => {
                let key = FlitKey::unpack(word.sole_key().expect("undecodable word at sink"));
                assert_eq!(
                    *word.payload(),
                    key.payload(),
                    "payload corrupted through XOR encode/decode"
                );
                let info = packets.flit_info(key);
                assert_eq!(info.dest, self.node, "flit ejected at wrong node");

                counters.buffer_reads += 1;
                counters.flits_ejected += 1;
                let credit_freed = self.commit_action(action, counters);
                SinkOutcome {
                    credit_freed,
                    consumed: Some(info),
                    #[cfg(feature = "faults")]
                    fault_event: None,
                }
            }
        }
    }

    /// Commits one decode action on the FIFO, returning whether a slot
    /// freed (mirrors the tail of [`Sink::drain`]).
    fn commit_action(&mut self, action: DecodeAction, counters: &mut Counters) -> bool {
        match action {
            DecodeAction::Pass => {
                self.fifo.pop_front();
                self.decoder.commit(DecodeAction::Pass, None);
                true
            }
            DecodeAction::DecodeKeep => {
                self.decoder.commit(DecodeAction::DecodeKeep, None);
                counters.decode_xors += 1;
                false
            }
            DecodeAction::DecodeShift => {
                let head = self.fifo.pop_front().expect("shift without head");
                self.decoder.commit(DecodeAction::DecodeShift, Some(head));
                counters.decode_xors += 1;
                counters.decode_reg_writes += 1;
                true
            }
        }
    }

    /// Drains one presented flit under fault injection.
    ///
    /// Unlike [`Sink::drain`], nothing here panics on corruption — the
    /// fault layer turns each integrity violation into a counted outcome:
    /// a desynchronized decode chain is truncated (chain kill), a
    /// CRC-detected corrupt payload is discarded at the NIC, and an
    /// undetected one is delivered and counted as a silent corruption.
    /// The wrong-node check stays an assertion: headers (keys) are
    /// modeled as protected, so misrouting still indicates a router bug.
    #[cfg(feature = "faults")]
    pub(crate) fn drain_faulty(
        &mut self,
        packets: &PacketTable,
        counters: &mut Counters,
        faults: &mut crate::fault::FaultState,
    ) -> SinkOutcome {
        use crate::fault::DeliveryClass;
        match self.decoder.plan(self.fifo.front()) {
            DecodePlan::Idle => SinkOutcome::default(),
            DecodePlan::Latch => {
                let w = self.fifo.pop_front().expect("planned latch without head");
                self.decoder.latch(w);
                counters.buffer_reads += 1;
                counters.decode_reg_writes += 1;
                SinkOutcome {
                    credit_freed: true,
                    ..Default::default()
                }
            }
            DecodePlan::Present { word, action } => {
                let Some(raw_key) = word.sole_key() else {
                    // FSM desync at the ejection port: contain the chain.
                    let (lost, popped) = self.chain_kill();
                    faults.note_chain_kill(lost);
                    if popped {
                        counters.buffer_reads += 1;
                    }
                    return SinkOutcome {
                        credit_freed: popped,
                        fault_event: Some("detect desync"),
                        ..Default::default()
                    };
                };
                let key = FlitKey::unpack(raw_key);
                let info = packets.flit_info(key);
                assert_eq!(info.dest, self.node, "flit ejected at wrong node");
                counters.buffer_reads += 1;
                let actual = *word.payload();
                let credit_freed = self.commit_action(action, counters);
                match faults.classify_delivery(key, actual) {
                    DeliveryClass::DetectedCrc => SinkOutcome {
                        // The CRC sideband caught the corruption: the flit
                        // is discarded at the NIC, not delivered.
                        credit_freed,
                        fault_event: Some("detect crc"),
                        ..Default::default()
                    },
                    DeliveryClass::Silent => {
                        counters.flits_ejected += 1;
                        SinkOutcome {
                            credit_freed,
                            consumed: Some(info),
                            fault_event: Some("silent corruption"),
                        }
                    }
                    DeliveryClass::Clean => {
                        counters.flits_ejected += 1;
                        SinkOutcome {
                            credit_freed,
                            consumed: Some(info),
                            ..Default::default()
                        }
                    }
                }
            }
        }
    }

    /// Watchdog deadlock recovery: truncates an in-progress decode chain
    /// whose remaining words will never arrive. Returns the number of
    /// constituent keys discarded and whether a FIFO slot freed.
    #[cfg(feature = "faults")]
    pub(crate) fn watchdog_flush(&mut self) -> (usize, bool) {
        if self.decoder.is_mid_chain() {
            self.chain_kill()
        } else {
            (0, false)
        }
    }

    /// Truncates a poisoned decode chain at this sink. Returns the number
    /// of constituent keys discarded and whether a FIFO slot freed.
    #[cfg(feature = "faults")]
    fn chain_kill(&mut self) -> (usize, bool) {
        let mut lost = 0;
        if let Some(reg) = self.decoder.reset() {
            lost += reg.arity();
        }
        let mut popped = false;
        if self.fifo.front().is_some_and(Word::is_encoded) {
            let head = self.fifo.pop_front().expect("front was Some");
            lost += head.arity();
            popped = true;
        }
        (lost, popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{word_for, PacketMeta};

    fn packet(t: &mut PacketTable, dest: u16, len: u16) -> crate::flit::PacketId {
        t.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(dest),
            len,
            created_cycle: 0,
            measured: false,
        })
    }

    #[test]
    fn drains_plain_flits_one_per_cycle() {
        let mut t = PacketTable::new();
        let mut c = Counters::new();
        let mut sink = Sink::new(NodeId(3), 4);
        for _ in 0..3 {
            let id = packet(&mut t, 3, 1);
            sink.receive(word_for(FlitKey { packet: id, seq: 0 }));
        }
        let mut consumed = 0;
        for _ in 0..3 {
            if sink.drain(&t, &mut c).consumed.is_some() {
                consumed += 1;
            }
        }
        assert_eq!(consumed, 3);
        assert!(sink.is_idle());
        assert_eq!(c.flits_ejected, 3);
    }

    #[test]
    fn decodes_encoded_chain_at_ejection() {
        let mut t = PacketTable::new();
        let mut c = Counters::new();
        let mut sink = Sink::new(NodeId(3), 4);
        let a = packet(&mut t, 3, 1);
        let b = packet(&mut t, 3, 1);
        let wa = word_for(FlitKey { packet: a, seq: 0 });
        let wb = word_for(FlitKey { packet: b, seq: 0 });
        sink.receive(wa.xor(&wb));
        sink.receive(wb);

        // Cycle 1: latch, credit freed, nothing consumed.
        let o = sink.drain(&t, &mut c);
        assert!(o.credit_freed && o.consumed.is_none());
        // Cycle 2: A recovered.
        let o = sink.drain(&t, &mut c);
        assert_eq!(o.consumed.unwrap().packet, a);
        assert!(!o.credit_freed);
        // Cycle 3: B consumed.
        let o = sink.drain(&t, &mut c);
        assert_eq!(o.consumed.unwrap().packet, b);
        assert!(o.credit_freed);
        assert!(sink.is_idle());
        assert_eq!(c.decode_xors, 1);
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn misdelivered_flit_detected() {
        let mut t = PacketTable::new();
        let mut c = Counters::new();
        let mut sink = Sink::new(NodeId(3), 4);
        let id = packet(&mut t, 7, 1);
        sink.receive(word_for(FlitKey { packet: id, seq: 0 }));
        let _ = sink.drain(&t, &mut c);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_detected() {
        let mut t = PacketTable::new();
        let mut sink = Sink::new(NodeId(3), 2);
        for _ in 0..3 {
            let id = packet(&mut t, 3, 1);
            sink.receive(word_for(FlitKey { packet: id, seq: 0 }));
        }
    }
}
