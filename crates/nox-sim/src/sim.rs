//! The measurement harness: warmup, measurement window, drain.
//!
//! Follows standard interconnect methodology (and §5 of the paper):
//! traffic runs for a warmup period, statistics are collected over packets
//! *created* during the measurement window, and the simulation continues —
//! with injection still running — until all measured packets eject or a
//! drain cap expires (the saturated case).

use crate::config::NetConfig;
use crate::histogram::LogHistogram;
use crate::network::Network;
use crate::stats::{Counters, LatencyStats};
use crate::trace::Trace;

/// Timing of one measured run, in nanoseconds (clock-independent, so one
/// spec drives all four architectures at equal offered load).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSpec {
    /// Warmup duration before the measurement window opens.
    pub warmup_ns: f64,
    /// Length of the measurement window.
    pub measure_ns: f64,
    /// Maximum extra time after the window to let measured packets drain.
    pub drain_ns: f64,
}

impl RunSpec {
    /// A short spec for unit tests.
    pub fn quick() -> Self {
        RunSpec {
            warmup_ns: 200.0,
            measure_ns: 500.0,
            drain_ns: 2_000.0,
        }
    }
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            warmup_ns: 2_000.0,
            measure_ns: 8_000.0,
            drain_ns: 30_000.0,
        }
    }
}

/// The outcome of one measured simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Configuration the run used.
    pub cfg: NetConfig,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Event-counter deltas over the measurement window (for power).
    pub window_counters: Counters,
    /// Latency of measured packets, in nanoseconds.
    pub latency_ns: LatencyStats,
    /// Log-bucketed latency histogram of measured packets (percentiles).
    pub latency_hist: LogHistogram,
    /// Packets tagged for measurement / actually ejected by the cap.
    pub measured_total: u64,
    /// Measured packets that finished within the drain cap.
    pub measured_ejected: u64,
    /// Length of the measurement window in nanoseconds.
    pub window_ns: f64,
    /// `true` when every measured packet ejected before the cap — `false`
    /// signals saturation.
    pub drained: bool,
}

impl SimResult {
    /// Mean measured packet latency in nanoseconds.
    pub fn avg_latency_ns(&self) -> f64 {
        self.latency_ns.mean()
    }

    /// The given latency percentile (e.g. 99.0) in nanoseconds, or `NaN`
    /// when no measured packet ejected or `p` is outside `(0, 100]` (see
    /// [`LogHistogram::percentile`]).
    pub fn latency_percentile_ns(&self, p: f64) -> f64 {
        self.latency_hist.percentile(p)
    }

    /// Accepted throughput over the window, in flits per node per cycle.
    pub fn accepted_flits_per_node_cycle(&self) -> f64 {
        let cycles = self.window_ns / self.cfg.clock_ns();
        self.window_counters.flits_ejected as f64 / cycles / self.cfg.nodes() as f64
    }

    /// Accepted throughput over the window, in MB/s per node — the unit
    /// of the paper's Figure 8 x-axis (1 MB/s = 1e6 bytes/s).
    pub fn accepted_mbps_per_node(&self) -> f64 {
        let bytes = self.window_counters.flits_ejected as f64 * self.cfg.flit_bytes as f64;
        // bytes per ns per node = GB/s; ×1000 = MB/s.
        bytes / self.window_ns / self.cfg.nodes() as f64 * 1000.0
    }
}

/// Runs `trace` through a network of the given configuration.
///
/// # Example
///
/// ```
/// use nox_sim::config::{Arch, NetConfig};
/// use nox_sim::sim::{run, RunSpec};
/// use nox_sim::topology::NodeId;
/// use nox_sim::trace::{PacketEvent, Trace};
///
/// let mut trace = Trace::new();
/// for i in 0..100u32 {
///     trace.push(PacketEvent {
///         time_ns: i as f64 * 10.0,
///         src: NodeId(0),
///         dest: NodeId(15),
///         len: 1,
///     });
/// }
/// let res = run(NetConfig::small(Arch::Nox), &trace, &RunSpec::quick());
/// assert!(res.drained);
/// assert!(res.avg_latency_ns() > 0.0);
/// ```
pub fn run(cfg: NetConfig, trace: &Trace, spec: &RunSpec) -> SimResult {
    let window = (spec.warmup_ns, spec.warmup_ns + spec.measure_ns);
    let mut net = Network::new(cfg, trace, window);
    let clock = cfg.clock_ns();

    let warmup_cycles = (spec.warmup_ns / clock).ceil() as u64;
    let window_cycles = (spec.measure_ns / clock).ceil() as u64;
    let drain_cycles = (spec.drain_ns / clock).ceil() as u64;

    net.run(warmup_cycles);
    let at_open = *net.counters();
    net.run(window_cycles);
    let at_close = *net.counters();

    // Drain: keep running (injection continues from the trace) until all
    // measured packets are out or the cap expires.
    let mut remaining = drain_cycles;
    while remaining > 0 && net.measured_ejected() < net.measured_total() {
        net.step();
        remaining -= 1;
    }

    let window_counters = delta(&at_open, &at_close);

    SimResult {
        cfg,
        cycles: net.cycle(),
        window_counters,
        latency_ns: *net.latency_measured_ns(),
        latency_hist: net.latency_histogram_ns().clone(),
        measured_total: net.measured_total(),
        measured_ejected: net.measured_ejected(),
        window_ns: window_cycles as f64 * clock,
        drained: net.measured_ejected() == net.measured_total(),
    }
}

fn delta(open: &Counters, close: &Counters) -> Counters {
    Counters {
        cycles: close.cycles - open.cycles,
        link_flits: close.link_flits - open.link_flits,
        link_wasted: close.link_wasted - open.link_wasted,
        xbar_traversals: close.xbar_traversals - open.xbar_traversals,
        xbar_inputs_active: close.xbar_inputs_active - open.xbar_inputs_active,
        buffer_writes: close.buffer_writes - open.buffer_writes,
        buffer_reads: close.buffer_reads - open.buffer_reads,
        arbitrations: close.arbitrations - open.arbitrations,
        decode_xors: close.decode_xors - open.decode_xors,
        decode_reg_writes: close.decode_reg_writes - open.decode_reg_writes,
        collisions: close.collisions - open.collisions,
        aborts: close.aborts - open.aborts,
        encoded_transfers: close.encoded_transfers - open.encoded_transfers,
        wasted_reservations: close.wasted_reservations - open.wasted_reservations,
        flits_injected: close.flits_injected - open.flits_injected,
        flits_ejected: close.flits_ejected - open.flits_ejected,
        packets_injected: close.packets_injected - open.packets_injected,
        packets_ejected: close.packets_ejected - open.packets_ejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arch;
    use crate::topology::NodeId;
    use crate::trace::PacketEvent;

    fn ping_trace(n: usize, gap_ns: f64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(PacketEvent {
                time_ns: i as f64 * gap_ns,
                src: NodeId(0),
                dest: NodeId(15),
                len: 1,
            });
        }
        t
    }

    #[test]
    fn light_load_drains_on_all_architectures() {
        for arch in Arch::ALL {
            let res = run(
                NetConfig::small(arch),
                &ping_trace(200, 10.0),
                &RunSpec::quick(),
            );
            assert!(res.drained, "{arch} failed to drain");
            assert!(res.measured_total > 0);
            assert!(res.avg_latency_ns() > 0.0, "{arch} lost latency stats");
        }
    }

    #[test]
    fn zero_load_latency_ranks_by_clock_and_pipeline() {
        // A single-flit packet crossing 6 hops with no contention:
        // single-cycle routers take ~1 cycle/hop, the sequential router ~2.
        let mut lat = std::collections::BTreeMap::new();
        for arch in Arch::ALL {
            let res = run(
                NetConfig::small(arch),
                &ping_trace(50, 100.0),
                &RunSpec::quick(),
            );
            assert!(res.drained);
            lat.insert(arch, res.avg_latency_ns());
        }
        // Spec-Fast has the shortest clock -> best zero-load latency;
        // the sequential router is worst despite no contention.
        assert!(lat[&Arch::SpecFast] < lat[&Arch::SpecAccurate]);
        assert!(lat[&Arch::SpecAccurate] < lat[&Arch::Nox]);
        assert!(lat[&Arch::Nox] < lat[&Arch::NonSpec]);
    }

    #[test]
    fn window_counters_are_deltas() {
        let res = run(
            NetConfig::small(Arch::Nox),
            &ping_trace(500, 2.0),
            &RunSpec::quick(),
        );
        assert!(res.window_counters.cycles > 0);
        assert!(res.window_counters.cycles < res.cycles);
        assert!(res.window_counters.flits_ejected > 0);
    }

    #[test]
    fn throughput_units_are_consistent() {
        let res = run(
            NetConfig::small(Arch::SpecAccurate),
            &ping_trace(500, 2.0),
            &RunSpec::quick(),
        );
        let fpc = res.accepted_flits_per_node_cycle();
        let mbps = res.accepted_mbps_per_node();
        // 1 flit/node/cycle = 8 bytes per clock_ns per node.
        let expect = fpc * 8.0 / res.cfg.clock_ns() * 1000.0;
        assert!((mbps - expect).abs() < 1e-6 * expect.max(1.0));
    }
}
