//! The cycle-accurate network engine.
//!
//! A [`Network`] instantiates one router per mesh node plus per-node
//! sources and sinks, and advances the whole system one clock cycle at a
//! time. Each [`step`](Network::step):
//!
//! 1. delivers last cycle's link words into input buffers (one-cycle link,
//!    §4's 2 mm inter-tile channels) and matured credits into output
//!    credit counters;
//! 2. lets every source inject up to one flit into its local input port;
//! 3. ticks every router (they emit link transfers and credit returns);
//! 4. drains every sink by at most one flit, recording packet latencies.
//!
//! Per-packet flit ordering, payload integrity, and credit conservation
//! are asserted continuously, so any router bug aborts the simulation
//! rather than silently skewing results.

use std::collections::BTreeMap;
use std::collections::VecDeque;

#[cfg(feature = "faults")]
use crate::fault::{FaultConfig, FaultState, LinkFate, TailDelivery};

use crate::config::NetConfig;
use crate::flit::{PacketId, PacketMeta, PacketTable};
use crate::histogram::LogHistogram;
use crate::router::{CreditReturn, Router, Send, TickCtx};
use crate::sink::Sink;
use crate::source::Source;
use crate::stats::{Counters, LatencyStats};
use crate::topology::{NodeId, Topology};
use crate::trace::Trace;

/// A complete simulated network: routers, sources, sinks, and wiring.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetConfig,
    topo: Topology,
    routers: Vec<Router>,
    /// One source per core.
    sources: Vec<Source>,
    /// One sink per core.
    sinks: Vec<Sink>,
    packets: PacketTable,
    cycle: u64,
    counters: Counters,
    /// Words launched this cycle, delivered at the start of the next.
    in_flight: Vec<Send>,
    /// Credits in transit: (usable-at cycle, node, output port index).
    credits_in_flight: VecDeque<(u64, NodeId, u8)>,
    /// Scratch buffer for the credit returns emitted within one call to
    /// [`step`](Self::step); always drained empty by the end of the call,
    /// kept on the network only to recycle its allocation across cycles.
    credit_scratch: Vec<CreditReturn>,
    /// Next expected flit sequence per partially-received packet.
    /// Ordered so any future iteration is deterministic (detlint policy).
    expected_seq: BTreeMap<PacketId, u16>,
    latency_measured: LatencyStats,
    latency_all: LatencyStats,
    hist_measured: LogHistogram,
    measured_total: u64,
    measured_ejected: u64,
    eject_log: Option<Vec<(PacketId, u64)>>,
    /// Runtime switch for the per-cycle sanitizer audits.
    #[cfg(feature = "sanitize")]
    sanitize: bool,
    /// Telemetry collector, if probing is enabled.
    #[cfg(feature = "probe")]
    probe: Option<Box<crate::probe::Probe>>,
    /// Fault-injection campaign, if one is attached.
    #[cfg(feature = "faults")]
    faults: Option<Box<FaultState>>,
    /// Phase-attribution clock, allocated when the process-wide profiling
    /// switch was on at construction. Cloning a network starts a fresh
    /// clock (see [`nox_telemetry::PhaseClock`]) so history is never
    /// double-counted.
    #[cfg(feature = "telemetry")]
    phases: Option<Box<nox_telemetry::PhaseClock>>,
}

impl Network {
    /// Builds a network and schedules `trace` into it. Packets created
    /// within `measure_window_ns` (half-open, in nanoseconds) are tagged
    /// as measured for latency statistics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or an event addresses a node
    /// outside the mesh.
    pub fn new(cfg: NetConfig, trace: &Trace, measure_window_ns: (f64, f64)) -> Self {
        cfg.validate().expect("invalid network configuration");
        let topo = cfg.topology();
        let clock_ns = cfg.clock_ns();

        let mut packets = PacketTable::new();
        let mut sources: Vec<Source> = (0..topo.cores()).map(|_| Source::new()).collect();
        let mut measured_total = 0;
        for e in trace.events() {
            assert!(
                e.src.index() < topo.cores() && e.dest.index() < topo.cores(),
                "trace event addresses a node outside the mesh"
            );
            let measured = e.time_ns >= measure_window_ns.0 && e.time_ns < measure_window_ns.1;
            measured_total += u64::from(measured);
            let id = packets.push(PacketMeta {
                src: e.src,
                dest: e.dest,
                len: e.len,
                created_cycle: (e.time_ns / clock_ns) as u64,
                measured,
            });
            sources[e.src.index()].schedule(id);
        }

        let nox_options = nox_core::NoxOptions {
            scheduled_mode: cfg.nox_scheduled_mode,
        };
        let routers = topo
            .grid()
            .iter()
            .map(|n| Router::with_options(n, cfg.arch, topo, cfg.buffer_depth, nox_options))
            .collect();
        let sinks = (0..topo.cores() as u16)
            .map(|c| Sink::new(NodeId(c), cfg.buffer_depth))
            .collect();

        Network {
            cfg,
            topo,
            routers,
            sources,
            sinks,
            packets,
            cycle: 0,
            counters: Counters::new(),
            in_flight: Vec::new(),
            credits_in_flight: VecDeque::new(),
            credit_scratch: Vec::new(),
            expected_seq: BTreeMap::new(),
            latency_measured: LatencyStats::new(),
            latency_all: LatencyStats::new(),
            hist_measured: LogHistogram::default_latency(),
            measured_total,
            measured_ejected: 0,
            eject_log: None,
            #[cfg(feature = "sanitize")]
            sanitize: false,
            #[cfg(feature = "probe")]
            probe: None,
            #[cfg(feature = "faults")]
            faults: None,
            #[cfg(feature = "telemetry")]
            phases: nox_telemetry::profiling()
                .then(|| Box::new(nox_telemetry::PhaseClock::start())),
        }
    }

    /// Attributes time since the previous phase mark to `phase`.
    #[cfg(feature = "telemetry")]
    #[inline]
    fn mark_phase(&mut self, phase: nox_telemetry::PhaseId) {
        if let Some(clock) = &mut self.phases {
            clock.mark(phase);
        }
    }

    /// Turns on the per-cycle sanitizer audits: flit conservation,
    /// credit-loop accounting, and §3.2 link-cycle productivity
    /// classification, re-checked at the end of every [`step`](Self::step).
    /// Any audit failure panics with a description of the broken books.
    #[cfg(feature = "sanitize")]
    pub fn enable_sanitizer(&mut self) {
        self.sanitize = true;
    }

    /// Attaches a telemetry [`Probe`](crate::probe::Probe): every
    /// subsequent cycle is observed — per-router windowed metrics, the
    /// bounded event trace, and per-packet latency decomposition. Call
    /// [`Probe::finish`](crate::probe::Probe::finish) on the collector
    /// after the run to flush the final partial window.
    #[cfg(feature = "probe")]
    pub fn enable_probe(&mut self, cfg: crate::probe::ProbeConfig) {
        self.probe = Some(Box::new(crate::probe::Probe::new(
            cfg,
            self.topo,
            self.cfg.clock_ns(),
        )));
    }

    /// The attached probe, if any.
    #[cfg(feature = "probe")]
    pub fn probe(&self) -> Option<&crate::probe::Probe> {
        self.probe.as_deref()
    }

    /// Detaches and returns the probe, ending observation.
    #[cfg(feature = "probe")]
    pub fn take_probe(&mut self) -> Option<crate::probe::Probe> {
        self.probe.take().map(|b| *b)
    }

    /// Attaches a fault-injection campaign: from the next cycle on, link
    /// words are subject to the configured bit flips, drops, duplications,
    /// dead links, credit corruptions, and router freezes, and every
    /// ejection is integrity-classified (clean / CRC-detected / silent).
    /// All packets scheduled so far, plus any injected later, are tracked
    /// as logical packets for the end-to-end retransmission protocol.
    ///
    /// Attaching a campaign disables the sanitizer's conservation audits
    /// (injected faults violate conservation by design) and replaces the
    /// simulator's integrity panics at the sinks with counted outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultConfig::validate`]).
    #[cfg(feature = "faults")]
    pub fn enable_faults(&mut self, cfg: FaultConfig) {
        let mut st = FaultState::new(cfg);
        for i in 0..self.packets.len() {
            let id = PacketId(i as u64);
            st.register(id, self.packets.meta(id));
        }
        self.faults = Some(Box::new(st));
    }

    /// The attached fault campaign's state, if any.
    #[cfg(feature = "faults")]
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_deref()
    }

    /// `true` when the retransmission protocol (if any) has settled:
    /// every logical packet is delivered or written off. `true` when no
    /// campaign is attached.
    #[cfg(feature = "faults")]
    pub fn faults_settled(&self) -> bool {
        self.faults.as_ref().is_none_or(|f| f.settled())
    }

    /// Runs until the network is quiescent *and* the fault campaign's
    /// retransmission protocol has settled, or `max_cycles` elapse.
    /// Returns `true` on settlement. Plain
    /// [`run_to_quiescence`](Self::run_to_quiescence) is not sufficient
    /// under faults: a drained network may still owe retransmissions whose
    /// timeouts have not expired yet.
    #[cfg(feature = "faults")]
    pub fn run_to_settlement(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() && self.faults_settled() {
                return true;
            }
            self.step();
        }
        self.is_quiescent() && self.faults_settled()
    }

    /// Enables recording of `(packet, eject cycle)` pairs — useful for
    /// per-packet analyses, closed-loop drivers, and differential
    /// debugging. Off by default to keep long runs memory-light.
    pub fn enable_eject_log(&mut self) {
        self.eject_log = Some(Vec::new());
    }

    /// Injects a packet dynamically: it enters `src`'s source queue now
    /// (created at the current cycle) and counts as measured if
    /// `measured`. This is how closed-loop drivers (self-throttling cores
    /// reacting to replies) add traffic after construction.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` is outside the topology or `len == 0`.
    pub fn inject(&mut self, src: NodeId, dest: NodeId, len: u16, measured: bool) -> PacketId {
        assert!(
            src.index() < self.topo.cores() && dest.index() < self.topo.cores(),
            "inject outside the topology"
        );
        let id = self.packets.push(PacketMeta {
            src,
            dest,
            len,
            created_cycle: self.cycle,
            measured,
        });
        self.measured_total += u64::from(measured);
        self.sources[src.index()].schedule(id);
        #[cfg(feature = "faults")]
        if let Some(f) = &mut self.faults {
            f.register(id, self.packets.meta(id));
        }
        id
    }

    /// The recorded ejections, if [`enable_eject_log`](Self::enable_eject_log)
    /// was called.
    pub fn eject_log(&self) -> Option<&[(PacketId, u64)]> {
        self.eject_log.as_deref()
    }

    /// The packet table (metadata for every scheduled packet).
    pub fn packets(&self) -> &PacketTable {
        &self.packets
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current event counters (cumulative).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Latency statistics over measured packets, in nanoseconds.
    pub fn latency_measured_ns(&self) -> &LatencyStats {
        &self.latency_measured
    }

    /// Latency statistics over all ejected packets, in nanoseconds.
    pub fn latency_all_ns(&self) -> &LatencyStats {
        &self.latency_all
    }

    /// Log-bucketed latency histogram over measured packets (for
    /// percentile queries), in nanoseconds.
    pub fn latency_histogram_ns(&self) -> &LogHistogram {
        &self.hist_measured
    }

    /// Number of packets tagged measured at construction.
    pub fn measured_total(&self) -> u64 {
        self.measured_total
    }

    /// Measured packets fully ejected so far.
    pub fn measured_ejected(&self) -> u64 {
        self.measured_ejected
    }

    /// `true` once every scheduled packet has been injected and the
    /// network, links, and sinks are empty.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty()
            && self.sources.iter().all(Source::is_done)
            && self.routers.iter().all(Router::is_idle)
            && self.sinks.iter().all(Sink::is_idle)
    }

    /// Advances the network by one clock cycle.
    pub fn step(&mut self) {
        // Phase attribution (DESIGN.md §14): one clock read per phase
        // boundary. The marks partition the step interval exactly, so the
        // named phases telescope to the `sim.step` total.
        #[cfg(feature = "telemetry")]
        if let Some(clock) = &mut self.phases {
            clock.begin_step();
        }

        self.counters.cycles += 1;

        #[cfg(feature = "probe")]
        if let Some(p) = &mut self.probe {
            p.on_cycle_start(self.cycle);
        }

        #[cfg(feature = "faults")]
        if let Some(f) = &mut self.faults {
            f.begin_cycle(self.cycle);
        }

        // 1a. Deliver last cycle's link words, subjecting each to the
        // fault plan if a campaign is attached. The vector is drained (not
        // consumed) so its allocation can carry this cycle's sends below.
        let mut deliveries = std::mem::take(&mut self.in_flight);
        #[cfg(feature = "faults")]
        {
            let mut faults = self.faults.take();
            for mut s in deliveries.drain(..) {
                if let Some(f) = &mut faults {
                    let (fate, flipped) = f.intercept(s.node, s.out, &mut s.word);
                    if flipped {
                        self.probe_fault_event(s.node, s.out, "inject bit-flip");
                    }
                    match fate {
                        LinkFate::Drop => {
                            // The word vanished in flight: its downstream
                            // slot never fills, so the consumed credit is
                            // returned straight to the sender's output.
                            self.probe_fault_event(s.node, s.out, "link drop");
                            self.credits_in_flight.push_back((
                                self.cycle + self.cfg.credit_delay,
                                s.node,
                                s.out.0,
                            ));
                            continue;
                        }
                        LinkFate::DeliverTwice => {
                            if self.fault_space_for(&s) {
                                f.note_dup_delivered(s.node, s.out.0);
                                self.probe_fault_event(s.node, s.out, "inject duplicate");
                                self.deliver_word(s.clone());
                            }
                        }
                        LinkFate::Deliver => {}
                    }
                    if !self.fault_space_for(&s) {
                        // Phantom credits (credit corruption) let a word
                        // arrive at a full buffer: it is dropped there,
                        // and no credit returns for it.
                        f.note_overflow();
                        self.probe_fault_event(s.node, s.out, "overflow drop");
                        continue;
                    }
                }
                self.deliver_word(s);
            }
            self.faults = faults;
        }
        #[cfg(not(feature = "faults"))]
        for s in deliveries.drain(..) {
            self.deliver_word(s);
        }
        #[cfg(feature = "telemetry")]
        self.mark_phase(nox_telemetry::phase::SIM_DELIVER);

        // 1b. Deliver matured credits.
        while let Some(&(due, node, port)) = self.credits_in_flight.front() {
            if due > self.cycle {
                break;
            }
            self.credits_in_flight.pop_front();
            let out = self.routers[node.index()].output_mut(nox_core::PortId(port));
            #[cfg(feature = "faults")]
            if self.faults.is_some() {
                // Phantom credits from injected faults can over-return;
                // clamping keeps the loop self-balancing.
                out.return_credit_saturating(self.cfg.buffer_depth);
                continue;
            }
            out.return_credit(self.cfg.buffer_depth);
        }

        // 1c. Corrupt a credit counter, if the plan says so this cycle.
        #[cfg(feature = "faults")]
        self.fault_credit_corruption();
        #[cfg(feature = "telemetry")]
        self.mark_phase(nox_telemetry::phase::SIM_CREDIT);

        // 2. Sources inject, each into its core's local input port.
        for (i, src) in self.sources.iter_mut().enumerate() {
            let core = NodeId(i as u16);
            let router = self.topo.router_of(core).index();
            let injected = src.inject(
                self.cycle,
                self.routers[router].input_mut(self.topo.local_port(core)),
                &self.packets,
                &mut self.counters,
            );
            #[cfg(feature = "probe")]
            if let (Some(p), Some(key)) = (&mut self.probe, injected) {
                p.on_inject(self.cycle, core, key);
            }
            #[cfg(not(feature = "probe"))]
            let _ = injected;
        }
        #[cfg(feature = "telemetry")]
        self.mark_phase(nox_telemetry::phase::SIM_INJECT);

        // 3. Routers tick, staged so each phase runs across *all* routers
        // (present → arbitrate → apply) and its wall time is attributable
        // as a whole; routers never interact within a cycle, so the
        // staged order is behaviourally identical to ticking each router
        // start-to-finish (see the `Router` docs). Both tick buffers
        // recycle allocations instead of growing fresh `Vec`s every
        // cycle: the drained `deliveries` vector becomes this cycle's
        // send buffer (it returns to `in_flight` in step 5, closing the
        // loop), and the credit buffer is the network's persistent
        // scratch vector.
        let mut sends = deliveries;
        let mut credit_returns = std::mem::take(&mut self.credit_scratch);
        debug_assert!(sends.is_empty() && credit_returns.is_empty());
        {
            let mut ctx = TickCtx::new(
                &self.packets,
                &mut self.counters,
                &mut sends,
                &mut credit_returns,
            );
            #[cfg(feature = "probe")]
            {
                ctx.probe = self.probe.as_deref_mut();
            }
            #[cfg(feature = "faults")]
            {
                ctx.faults = self.faults.as_deref_mut();
            }
            #[cfg(feature = "telemetry")]
            {
                ctx.phases = self.phases.as_deref_mut();
            }
            // 3a. Present: decode plans, routing, request sets. The
            // transient-freeze draw happens here, exactly once per router
            // per cycle; a frozen router loses the whole cycle (no
            // decode, no arbitration, no link drive).
            for r in &mut self.routers {
                let frozen = ctx.fault_frozen(r.node());
                r.tick_present(frozen, &mut ctx);
            }
            #[cfg(feature = "telemetry")]
            ctx.phase_mark(nox_telemetry::phase::SIM_ROUTE);
            // 3b. Arbitrate: every credited output's engine decides.
            for r in &mut self.routers {
                r.tick_arbitrate();
            }
            #[cfg(feature = "telemetry")]
            ctx.phase_mark(nox_telemetry::phase::SIM_ARBITRATE);
            // 3c. Apply: drive links, service inputs, return credits.
            for r in &mut self.routers {
                r.tick_apply(&mut ctx);
            }
            #[cfg(feature = "telemetry")]
            ctx.phase_mark(nox_telemetry::phase::SIM_DRIVE);
        }

        // 4. Sinks drain one flit each and record latencies.
        let clock_ns = self.cfg.clock_ns();
        #[cfg(feature = "faults")]
        let mut faults = self.faults.take();
        for (i, sink) in self.sinks.iter_mut().enumerate() {
            #[cfg(feature = "faults")]
            let outcome = match &mut faults {
                Some(f) => sink.drain_faulty(&self.packets, &mut self.counters, f),
                None => sink.drain(&self.packets, &mut self.counters),
            };
            #[cfg(not(feature = "faults"))]
            let outcome = sink.drain(&self.packets, &mut self.counters);
            #[cfg(all(feature = "faults", feature = "probe"))]
            if let (Some(label), Some(p)) = (outcome.fault_event, &mut self.probe) {
                let core = NodeId(i as u16);
                p.on_fault(core, self.topo.local_port(core), label);
            }
            if outcome.credit_freed {
                // A freed ejection slot credits the owning router's local
                // output port for this core.
                let core = NodeId(i as u16);
                credit_returns.push(CreditReturn {
                    node: self.topo.router_of(core),
                    input: self.topo.local_port(core),
                });
            }
            #[cfg(feature = "probe")]
            if outcome.credit_freed && outcome.consumed.is_none() {
                // A decode-register latch at the sink (§2.4 at ejection).
                if let Some(p) = &mut self.probe {
                    let core = NodeId(i as u16);
                    p.on_latch(core, self.topo.local_port(core));
                }
            }
            if let Some(info) = outcome.consumed {
                let expected = self.expected_seq.entry(info.packet).or_insert(0);
                #[cfg(feature = "faults")]
                if *expected != info.seq {
                    if let Some(f) = &mut faults {
                        // Upstream losses broke the flit sequence: the NIC
                        // discards the flit; retransmission (if configured)
                        // re-delivers the whole packet.
                        f.note_seq_mismatch();
                        #[cfg(feature = "probe")]
                        if let Some(p) = &mut self.probe {
                            let core = NodeId(i as u16);
                            p.on_fault(core, self.topo.local_port(core), "detect sequence");
                        }
                        continue;
                    }
                }
                assert_eq!(
                    *expected, info.seq,
                    "packet {:?} flits arrived out of order",
                    info.packet
                );
                *expected += 1;
                if info.tail {
                    self.expected_seq.remove(&info.packet);
                    #[cfg(feature = "faults")]
                    if let Some(f) = &mut faults {
                        match f.note_tail(info.packet, self.cycle + 1) {
                            TailDelivery::Duplicate => {
                                // The logical packet already arrived via an
                                // earlier attempt: discard this copy.
                                continue;
                            }
                            TailDelivery::First { recovered } => {
                                #[cfg(feature = "probe")]
                                if recovered {
                                    if let Some(p) = &mut self.probe {
                                        let core = NodeId(i as u16);
                                        p.on_fault(core, self.topo.local_port(core), "recovered");
                                    }
                                }
                                #[cfg(not(feature = "probe"))]
                                let _ = recovered;
                            }
                        }
                    }
                    self.counters.packets_ejected += 1;
                    if let Some(log) = &mut self.eject_log {
                        log.push((info.packet, self.cycle + 1));
                    }
                    let meta = self.packets.meta(info.packet);
                    #[cfg(feature = "probe")]
                    if let Some(p) = &mut self.probe {
                        p.on_eject(
                            self.cycle + 1,
                            NodeId(i as u16),
                            info.packet,
                            meta.created_cycle,
                        );
                    }
                    let latency_ns = (self.cycle + 1 - meta.created_cycle) as f64 * clock_ns;
                    self.latency_all.record(latency_ns);
                    if meta.measured {
                        self.latency_measured.record(latency_ns);
                        self.hist_measured.record(latency_ns);
                        self.measured_ejected += 1;
                    }
                }
            }
        }

        #[cfg(feature = "faults")]
        {
            self.faults = faults;
            // 4b. Launch retransmissions whose timeouts expired.
            self.fault_retx_pump();
        }
        #[cfg(feature = "telemetry")]
        self.mark_phase(nox_telemetry::phase::SIM_SINK);

        // 5. Launch this cycle's sends and schedule credits. Routers never
        // emit credit returns for local input ports (sources check buffer
        // space directly), so a local-port return here can only come from
        // a sink — a credit for the owning router's local output.
        self.in_flight = sends;
        for c in credit_returns.drain(..) {
            let (owner, port) = self.credit_owner(&c);
            #[cfg(feature = "faults")]
            if let Some(f) = &mut self.faults {
                if f.swallow_credit(owner.0, port.0) {
                    // Annihilate the phantom credit a duplication fault
                    // created when its second copy took an uncredited slot.
                    continue;
                }
            }
            self.credits_in_flight
                .push_back((self.cycle + self.cfg.credit_delay, owner, port.0));
        }
        self.credit_scratch = credit_returns;
        #[cfg(feature = "telemetry")]
        self.mark_phase(nox_telemetry::phase::SIM_CREDIT);

        // 5b. Deadlock watchdog: recover the network if injected losses
        // wedged a control engine (e.g. a reservation whose tail died).
        #[cfg(feature = "faults")]
        self.fault_watchdog();

        // End-of-cycle telemetry: this cycle's launched words, buffer
        // occupancies, and FSM modes.
        #[cfg(feature = "probe")]
        if let Some(p) = &mut self.probe {
            p.on_cycle_end(self.cycle, &self.in_flight, &self.routers, &self.sinks);
        }

        self.cycle += 1;

        #[cfg(feature = "sanitize")]
        if self.sanitize && !self.faults_attached() {
            // Injected faults violate conservation by design; the audits
            // only apply to fault-free operation.
            self.sanitize_audit();
        }

        // Residual bookkeeping (watchdog, probe flush, sanitizer) lands
        // in `sim.other`; the step closes with no further clock read.
        #[cfg(feature = "telemetry")]
        {
            self.mark_phase(nox_telemetry::phase::SIM_OTHER);
            if let Some(clock) = &mut self.phases {
                clock.end_step();
            }
        }
    }

    /// Resolves which output port a freed input slot's credit belongs to.
    /// Routers never emit credit returns for local input ports (sources
    /// check buffer space directly), so a local-port return can only come
    /// from a sink — a credit for the owning router's local output.
    fn credit_owner(&self, c: &CreditReturn) -> (NodeId, nox_core::PortId) {
        if self.topo.is_local(c.input) {
            (c.node, c.input)
        } else {
            // Input port `c.input` of router `c.node` is fed by the
            // neighbour in that direction (wraparound-aware on rings); the
            // credit belongs to the neighbour's opposite output port.
            let dir = self.topo.port_direction(c.input);
            let upstream = self
                .topo
                .neighbor(c.node, dir)
                .expect("credit for an unconnected port");
            (upstream, self.topo.direction_port(dir.opposite()))
        }
    }

    /// Delivers one link word into its destination buffer (router input
    /// or ejection sink).
    fn deliver_word(&mut self, s: Send) {
        self.counters.buffer_writes += 1;
        if self.topo.is_local(s.out) {
            let core = self.topo.core_at(s.node, s.out);
            self.sinks[core.index()].receive(s.word);
        } else {
            let (dest, inp) = self
                .topo
                .link_dest(s.node, s.out)
                .expect("send on an unconnected port");
            self.routers[dest.index()].input_mut(inp).receive(s.word);
        }
    }

    /// `true` when a fault campaign is attached (any feature set).
    #[cfg(feature = "sanitize")]
    fn faults_attached(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.faults.is_some()
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// `true` when the destination buffer of `s` can accept a word —
    /// checked explicitly under fault injection, where phantom credits
    /// make the normal overflow assertion unsound.
    #[cfg(feature = "faults")]
    fn fault_space_for(&self, s: &Send) -> bool {
        if self.topo.is_local(s.out) {
            let core = self.topo.core_at(s.node, s.out);
            self.sinks[core.index()].has_space()
        } else {
            let (dest, inp) = self
                .topo
                .link_dest(s.node, s.out)
                .expect("send on an unconnected port");
            self.routers[dest.index()].input(inp).has_space()
        }
    }

    /// Applies this cycle's credit-corruption draw, if any: one randomly
    /// chosen connected output port has its credit counter forced to full
    /// capacity, handing it phantom credits for occupied downstream slots.
    #[cfg(feature = "faults")]
    fn fault_credit_corruption(&mut self) {
        let Some(f) = &mut self.faults else { return };
        let ports = self.topo.ports() as usize;
        let Some(site) = f.credit_corrupt_site(self.routers.len() * ports) else {
            return;
        };
        let (r, p) = (site / ports, site % ports);
        let port = nox_core::PortId(p as u8);
        if !self.routers[r].output(port).is_connected() {
            return; // drew a mesh-edge port: the fault lands on nothing
        }
        self.routers[r]
            .output_mut(port)
            .force_credits(self.cfg.buffer_depth);
        f.note_credit_corrupted();
        let node = self.routers[r].node();
        self.probe_fault_event(node, port, "corrupt credits");
    }

    /// Launches retransmissions for logical packets whose timeout expired
    /// this cycle: each becomes a fresh physical packet (unmeasured, so
    /// retries do not pollute baseline latency statistics) scheduled at
    /// its original source.
    #[cfg(feature = "faults")]
    fn fault_retx_pump(&mut self) {
        let Some(mut f) = self.faults.take() else {
            return;
        };
        for (idx, rt) in f.due_retransmissions(self.cycle) {
            let id = self.packets.push(PacketMeta {
                src: rt.src,
                dest: rt.dest,
                len: rt.len,
                created_cycle: self.cycle,
                measured: false,
            });
            self.sources[rt.src.index()].schedule(id);
            f.map_attempt(id, idx);
            let router = self.topo.router_of(rt.src);
            self.probe_fault_event(router, self.topo.local_port(rt.src), "retransmit");
        }
        self.faults = Some(f);
    }

    /// Fires the deadlock-recovery watchdog when the network has made no
    /// progress for a full stall window: resets every router's control
    /// engines and flushes stuck decode chains (router inputs and sinks),
    /// returning the credits of any freed slots. Containment only — the
    /// packets whose flits are discarded here are re-delivered by the
    /// end-to-end retransmission protocol, if configured.
    #[cfg(feature = "faults")]
    fn fault_watchdog(&mut self) {
        if self.faults.is_none() {
            return;
        }
        let progress = self.counters.buffer_reads
            + self.counters.buffer_writes
            + self.counters.flits_ejected
            + self.counters.link_flits;
        let quiescent = self.is_quiescent();
        let Some(mut f) = self.faults.take() else {
            return;
        };
        if quiescent || !f.watchdog_due(progress) {
            self.faults = Some(f);
            return;
        }
        for i in 0..self.routers.len() {
            let node = self.routers[i].node();
            for (port, lost, popped) in self.routers[i].watchdog_flush() {
                if lost > 0 || popped {
                    f.note_chain_kill(lost);
                }
                if popped {
                    self.counters.buffer_reads += 1;
                    if !self.topo.is_local(port) {
                        let (owner, p) = self.credit_owner(&CreditReturn { node, input: port });
                        self.credits_in_flight.push_back((
                            self.cycle + self.cfg.credit_delay,
                            owner,
                            p.0,
                        ));
                    }
                }
            }
        }
        for i in 0..self.sinks.len() {
            let (lost, popped) = self.sinks[i].watchdog_flush();
            if lost > 0 || popped {
                f.note_chain_kill(lost);
            }
            if popped {
                self.counters.buffer_reads += 1;
                let core = NodeId(i as u16);
                self.credits_in_flight.push_back((
                    self.cycle + self.cfg.credit_delay,
                    self.topo.router_of(core),
                    self.topo.local_port(core).0,
                ));
            }
        }
        self.faults = Some(f);
        self.probe_fault_event(NodeId(0), nox_core::PortId(0), "watchdog reset");
    }

    /// Emits a fault event into the probe trace, if probing is enabled.
    #[cfg(feature = "faults")]
    fn probe_fault_event(&mut self, node: NodeId, port: nox_core::PortId, label: &'static str) {
        #[cfg(feature = "probe")]
        if let Some(p) = &mut self.probe {
            p.on_fault(node, port, label);
        }
        #[cfg(not(feature = "probe"))]
        let _ = (node, port, label);
    }

    /// Runs the global conservation audits over the current state. See
    /// the [`sanitize`](crate::sanitize) module for what each check
    /// proves; any failure is a router bug and panics immediately.
    #[cfg(feature = "sanitize")]
    fn sanitize_audit(&self) {
        use crate::sanitize::{
            check_credit_loop, check_flit_conservation, check_productivity, CreditLoopView,
        };
        use nox_core::PortId;

        let fail = |e: String| panic!("sanitizer (cycle {}): {e}", self.cycle);

        // Flit conservation: every word anywhere in the network
        // contributes its constituent flit keys.
        let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for r in &self.routers {
            for p in 0..r.ports() {
                let ip = r.input(PortId(p));
                for w in ip.buffered_words() {
                    live.extend(w.keys());
                }
                if let Some(reg) = ip.decode_register() {
                    live.extend(reg.keys());
                }
            }
        }
        for sink in &self.sinks {
            for w in sink.buffered_words() {
                live.extend(w.keys());
            }
            if let Some(reg) = sink.decode_register() {
                live.extend(reg.keys());
            }
        }
        for s in &self.in_flight {
            live.extend(s.word.keys());
        }
        if let Err(e) = check_flit_conservation(&self.counters, &live) {
            fail(e);
        }

        // Credit-loop accounting, one loop per connected output port.
        for r in &self.routers {
            for p in 0..r.ports() {
                let out = PortId(p);
                let downstream_occupancy = if self.topo.is_local(out) {
                    let core = self.topo.core_at(r.node(), out);
                    self.sinks[core.index()].occupancy()
                } else if let Some((dest, inp)) = self.topo.link_dest(r.node(), out) {
                    self.routers[dest.index()].input(inp).occupancy()
                } else {
                    continue; // mesh-edge port: no link, no credit loop
                };
                let view = CreditLoopView {
                    label: format!("{} port {out}", r.node()),
                    credits: r.output(out).credits(),
                    downstream_occupancy,
                    words_in_flight: self
                        .in_flight
                        .iter()
                        .filter(|s| s.node == r.node() && s.out == out)
                        .count(),
                    credits_in_flight: self
                        .credits_in_flight
                        .iter()
                        .filter(|&&(_, node, port)| node == r.node() && port == p)
                        .count(),
                    depth: self.cfg.buffer_depth,
                };
                if let Err(e) = check_credit_loop(&view) {
                    fail(e);
                }
            }
        }

        // §3.2 link-cycle productivity classification.
        if let Err(e) = check_productivity(self.cfg.arch, &self.counters) {
            fail(e);
        }
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until quiescent or `max_cycles` elapse; returns `true` if the
    /// network drained.
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }
}

#[cfg(feature = "telemetry")]
impl Drop for Network {
    /// Flushes the phase clock into the dropping thread's telemetry
    /// accumulator. Inside an executor job this lands in the job's
    /// capture delta, which `nox-exec` absorbs in submission order — the
    /// reason merged sim phases are structurally identical at any thread
    /// count.
    fn drop(&mut self) {
        if let Some(clock) = &mut self.phases {
            clock.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arch;
    use crate::trace::PacketEvent;

    fn one_packet_trace(src: u16, dest: u16, len: u16) -> Trace {
        let mut t = Trace::new();
        t.push(PacketEvent {
            time_ns: 0.0,
            src: NodeId(src),
            dest: NodeId(dest),
            len,
        });
        t
    }

    #[test]
    fn single_packet_crosses_the_mesh() {
        for arch in Arch::ALL {
            let mut net = Network::new(
                NetConfig::small(arch),
                &one_packet_trace(0, 15, 1),
                (0.0, f64::MAX),
            );
            assert!(net.run_to_quiescence(1_000), "{arch} lost the packet");
            assert_eq!(net.counters().packets_ejected, 1);
            assert_eq!(net.counters().flits_ejected, 1);
        }
    }

    #[test]
    fn hop_count_sets_zero_load_latency() {
        // 0 -> 15 on a 4x4 mesh: 6 hops + ejection link + injection and
        // sink handling. Single-cycle routers: latency ~= hops + small
        // constant, in cycles.
        let mut net = Network::new(
            NetConfig::small(Arch::Nox),
            &one_packet_trace(0, 15, 1),
            (0.0, f64::MAX),
        );
        assert!(net.run_to_quiescence(1_000));
        let cycles = net.latency_all_ns().mean() / net.config().clock_ns();
        assert!(
            (7.0..12.0).contains(&cycles),
            "zero-load latency {cycles} cycles for 6 hops"
        );
    }

    #[test]
    fn multiflit_packet_arrives_whole() {
        let mut net = Network::new(
            NetConfig::small(Arch::Nox),
            &one_packet_trace(5, 10, 9),
            (0.0, f64::MAX),
        );
        assert!(net.run_to_quiescence(1_000));
        assert_eq!(net.counters().packets_ejected, 1);
        assert_eq!(net.counters().flits_ejected, 9);
    }

    #[test]
    fn self_addressed_packet_uses_local_turnaround() {
        // src == dest routes LOCAL immediately: one switch traversal, no
        // mesh links.
        let mut net = Network::new(
            NetConfig::small(Arch::Nox),
            &one_packet_trace(3, 3, 1),
            (0.0, f64::MAX),
        );
        assert!(net.run_to_quiescence(100));
        assert_eq!(net.counters().packets_ejected, 1);
        assert_eq!(net.counters().link_flits, 1, "only the ejection hop");
    }

    #[test]
    fn measured_window_tags_only_window_packets() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(PacketEvent {
                time_ns: i as f64 * 10.0,
                src: NodeId(0),
                dest: NodeId(5),
                len: 1,
            });
        }
        let net = Network::new(NetConfig::small(Arch::Nox), &t, (20.0, 60.0));
        // Packets at t = 20, 30, 40, 50 fall in [20, 60).
        assert_eq!(net.measured_total(), 4);
    }

    #[test]
    fn credits_regenerate_to_full() {
        // After draining, every output port must have all its credits back
        // (conservation of buffer slots).
        let mesh = crate::topology::Mesh::new(4, 4);
        let mut events = Vec::new();
        for i in 0..mesh.nodes() as u16 {
            events.push(PacketEvent {
                time_ns: i as f64 * 0.5,
                src: NodeId(i),
                dest: NodeId((i + 5) % 16),
                len: 3,
            });
        }
        let trace = Trace::from_events(events);
        let cfg = NetConfig::small(Arch::Nox);
        let mut net = Network::new(cfg, &trace, (0.0, f64::MAX));
        assert!(net.run_to_quiescence(10_000));
        // Let in-flight credits mature.
        net.run(cfg.credit_delay + 2);
        for r in &net.routers {
            for p in 0..r.ports() {
                let p = nox_core::PortId(p);
                assert_eq!(
                    r.output(p).credits(),
                    cfg.buffer_depth,
                    "credits leaked at {} port {p}",
                    r.node()
                );
            }
        }
    }

    #[test]
    fn quiescence_is_stable() {
        let mut net = Network::new(
            NetConfig::small(Arch::SpecAccurate),
            &one_packet_trace(0, 15, 2),
            (0.0, f64::MAX),
        );
        assert!(net.run_to_quiescence(1_000));
        let ejected = net.counters().packets_ejected;
        net.run(50);
        assert!(net.is_quiescent());
        assert_eq!(net.counters().packets_ejected, ejected);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn trace_outside_mesh_rejected() {
        let _ = Network::new(
            NetConfig::small(Arch::Nox),
            &one_packet_trace(0, 99, 1),
            (0.0, f64::MAX),
        );
    }
}

#[cfg(all(test, feature = "faults"))]
mod fault_tests {
    use super::*;
    use crate::config::Arch;
    use crate::fault::{DeadLink, RetxConfig, RouterFreeze};
    use crate::trace::PacketEvent;

    /// Deterministic all-to-all-ish traffic: enough collisions to form
    /// XOR chains, spread over every link direction.
    fn uniform_trace(rounds: u32, len: u16) -> Trace {
        let mut t = Trace::new();
        for i in 0..rounds {
            for s in 0..16u16 {
                let d = (u32::from(s) * 7 + i * 3 + 5) % 16;
                t.push(PacketEvent {
                    time_ns: f64::from(i) * 4.0,
                    src: NodeId(s),
                    dest: NodeId(d as u16),
                    len,
                });
            }
        }
        t
    }

    fn faulty_net(arch: Arch, trace: &Trace, cfg: FaultConfig) -> Network {
        let mut net = Network::new(NetConfig::small(arch), trace, (0.0, f64::MAX));
        net.enable_faults(cfg);
        net
    }

    #[test]
    fn zero_rate_campaign_changes_nothing() {
        for arch in Arch::ALL {
            let trace = uniform_trace(10, 2);
            let mut clean = Network::new(NetConfig::small(arch), &trace, (0.0, f64::MAX));
            assert!(clean.run_to_quiescence(20_000));
            let mut faulty = faulty_net(arch, &trace, FaultConfig::default());
            assert!(faulty.run_to_settlement(20_000), "{arch}: did not settle");
            assert_eq!(
                clean.counters().packets_ejected,
                faulty.counters().packets_ejected,
                "{arch}: zero-rate campaign altered behaviour"
            );
            let f = faulty.fault_state().unwrap();
            assert_eq!(f.stats().injected_total(), 0);
            assert_eq!(f.delivered_logicals(), f.total_logicals());
        }
    }

    #[test]
    fn unprotected_bit_flips_corrupt_silently() {
        for arch in Arch::ALL {
            let mut net = faulty_net(
                arch,
                &uniform_trace(20, 2),
                FaultConfig::bit_flips(11, 0.02),
            );
            assert!(net.run_to_settlement(50_000), "{arch}: did not settle");
            let st = net.fault_state().unwrap().stats();
            assert!(st.injected_bit_flips > 0, "{arch}: plan never fired");
            assert!(
                st.silent_corruptions > 0,
                "{arch}: flips must deliver wrong payloads without CRC"
            );
            assert_eq!(st.detected_crc, 0, "{arch}: CRC is off");
        }
    }

    #[test]
    fn crc_and_retransmission_recover_full_delivery() {
        for arch in Arch::ALL {
            let mut net = faulty_net(
                arch,
                &uniform_trace(20, 2),
                FaultConfig::protected_bit_flips(11, 0.02),
            );
            assert!(net.run_to_settlement(200_000), "{arch}: did not settle");
            let f = net.fault_state().unwrap();
            let st = f.stats();
            assert!(st.injected_bit_flips > 0, "{arch}: plan never fired");
            assert!(st.detected_crc > 0, "{arch}: CRC never fired");
            assert_eq!(
                st.silent_corruptions, 0,
                "{arch}: single-bit flips must never alias CRC-8"
            );
            assert_eq!(
                f.delivered_logicals(),
                f.total_logicals(),
                "{arch}: retransmission must recover every packet"
            );
        }
    }

    #[test]
    fn drops_are_recovered_by_retransmission() {
        for arch in Arch::ALL {
            let cfg = FaultConfig {
                seed: 7,
                drop_rate: 0.01,
                crc_enabled: true,
                retx: Some(RetxConfig::default()),
                ..Default::default()
            };
            let mut net = faulty_net(arch, &uniform_trace(15, 2), cfg);
            assert!(net.run_to_settlement(200_000), "{arch}: did not settle");
            let f = net.fault_state().unwrap();
            assert!(f.stats().injected_drops > 0, "{arch}: plan never fired");
            assert!(f.stats().retransmissions > 0, "{arch}: no retries");
            assert_eq!(f.delivered_logicals(), f.total_logicals(), "{arch}");
        }
    }

    #[test]
    fn duplications_are_deduplicated() {
        for arch in Arch::ALL {
            let cfg = FaultConfig {
                seed: 13,
                dup_rate: 0.02,
                crc_enabled: true,
                retx: Some(RetxConfig::default()),
                ..Default::default()
            };
            let mut net = faulty_net(arch, &uniform_trace(15, 1), cfg);
            assert!(net.run_to_settlement(200_000), "{arch}: did not settle");
            let f = net.fault_state().unwrap();
            assert!(f.stats().injected_dups > 0, "{arch}: plan never fired");
            assert_eq!(f.delivered_logicals(), f.total_logicals(), "{arch}");
        }
    }

    #[test]
    fn dead_link_is_routed_around() {
        // Kill node 5's East link from cycle 0; row traffic 4 -> 7 must
        // detour and still arrive without any retransmission.
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(PacketEvent {
                time_ns: f64::from(i) * 4.0,
                src: NodeId(4),
                dest: NodeId(7),
                len: 2,
            });
        }
        let east = Topology::mesh(4, 4).route(NodeId(5), NodeId(7));
        let cfg = FaultConfig {
            dead_links: vec![DeadLink {
                node: 5,
                port: east.0,
            }],
            crc_enabled: true,
            retx: Some(RetxConfig::default()),
            ..Default::default()
        };
        let mut net = faulty_net(Arch::Nox, &t, cfg);
        assert!(net.run_to_settlement(100_000));
        let f = net.fault_state().unwrap();
        assert_eq!(f.delivered_logicals(), f.total_logicals());
        assert_eq!(
            f.stats().retransmissions,
            0,
            "reroute should make retries unnecessary"
        );
    }

    #[test]
    fn credit_corruption_overflows_are_contained() {
        for arch in Arch::ALL {
            let cfg = FaultConfig {
                seed: 23,
                credit_corrupt_rate: 0.02,
                crc_enabled: true,
                retx: Some(RetxConfig::default()),
                ..Default::default()
            };
            let mut net = faulty_net(arch, &uniform_trace(15, 2), cfg);
            assert!(net.run_to_settlement(400_000), "{arch}: did not settle");
            let f = net.fault_state().unwrap();
            assert!(
                f.stats().injected_credit_corruptions > 0,
                "{arch}: plan never fired"
            );
            assert_eq!(f.delivered_logicals(), f.total_logicals(), "{arch}");
        }
    }

    #[test]
    fn router_freeze_delays_but_delivers() {
        let cfg = FaultConfig {
            freeze: Some(RouterFreeze {
                node: 5,
                from_cycle: 5,
                cycles: 50,
            }),
            crc_enabled: true,
            retx: Some(RetxConfig::default()),
            ..Default::default()
        };
        let mut net = faulty_net(Arch::Nox, &uniform_trace(5, 2), cfg);
        assert!(net.run_to_settlement(100_000));
        let f = net.fault_state().unwrap();
        assert!(f.stats().frozen_cycles > 0);
        assert_eq!(f.delivered_logicals(), f.total_logicals());
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut net = faulty_net(
                Arch::Nox,
                &uniform_trace(10, 2),
                FaultConfig::protected_bit_flips(42, 0.03),
            );
            assert!(net.run_to_settlement(200_000));
            (
                net.cycle(),
                *net.counters(),
                format!("{:?}", net.fault_state().unwrap().stats()),
            )
        };
        assert_eq!(run(), run());
    }
}

#[cfg(all(test, feature = "probe"))]
mod probe_tests {
    use super::*;
    use crate::config::Arch;
    use crate::trace::PacketEvent;

    /// Probe-verified check for the recycled tick scratch buffers: the
    /// full per-cycle telemetry (event trace, windowed metrics, launched
    /// words) of a probed run is identical run-to-run, and the probed
    /// run agrees with an unprobed network on every externally visible
    /// output — so recycling the `sends`/`credit_returns` allocations
    /// across cycles changed nothing about per-cycle behavior.
    #[cfg(feature = "probe")]
    #[test]
    fn scratch_buffer_recycling_keeps_per_cycle_behavior_identical() {
        use crate::probe::ProbeConfig;
        let mut events = Vec::new();
        for i in 0..32u16 {
            events.push(PacketEvent {
                time_ns: i as f64 * 0.7,
                src: NodeId(i % 16),
                dest: NodeId((i * 7 + 3) % 16),
                len: 1 + (i % 4),
            });
        }
        let trace = Trace::from_events(events);

        let probed = |arch: Arch| {
            let mut net = Network::new(NetConfig::small(arch), &trace, (0.0, f64::MAX));
            net.enable_eject_log();
            net.enable_probe(ProbeConfig {
                window_cycles: 16,
                ring_capacity: 1 << 14,
            });
            assert!(net.run_to_quiescence(10_000));
            let mut probe = net.take_probe().unwrap();
            probe.finish();
            assert_eq!(probe.events_dropped(), 0, "ring too small for the test");
            let telemetry = format!(
                "{:?} {:?}",
                probe.windows(),
                probe.events().collect::<Vec<_>>()
            );
            (
                net.cycle(),
                *net.counters(),
                net.eject_log().unwrap().to_vec(),
                telemetry,
            )
        };

        for arch in Arch::ALL {
            let a = probed(arch);
            let b = probed(arch);
            assert_eq!(a, b, "{arch}: per-cycle telemetry diverged between runs");

            let mut plain = Network::new(NetConfig::small(arch), &trace, (0.0, f64::MAX));
            plain.enable_eject_log();
            assert!(plain.run_to_quiescence(10_000));
            assert_eq!(plain.cycle(), a.0, "{arch}: cycle count diverged");
            assert_eq!(*plain.counters(), a.1, "{arch}: counters diverged");
            assert_eq!(
                plain.eject_log().unwrap(),
                &a.2[..],
                "{arch}: ejection schedule diverged"
            );
        }
    }
}
