//! Dimension-ordered (XY) routing.
//!
//! The paper uses deterministic dimension-ordered routing (Table 1): a
//! packet first travels along X to its destination column, then along Y to
//! its destination row. DOR is deadlock-free on a mesh with a single
//! resource class, which is why the wormhole routers evaluated here need
//! no virtual channels (protocol-level deadlock is instead avoided with a
//! second physical network, §2.8).

use crate::topology::{Mesh, NodeId, Port};

/// The output port a flit at `cur` must take toward `dest` under XY
/// dimension-ordered routing. Returns [`Port::Local`] when `cur == dest`.
///
/// # Example
///
/// ```
/// use nox_sim::routing::route_xy;
/// use nox_sim::topology::{Mesh, NodeId, Port};
///
/// let m = Mesh::new(8, 8);
/// // Node 0 is (0,0); node 63 is (7,7): X first.
/// assert_eq!(route_xy(m, NodeId(0), NodeId(63)), Port::East);
/// // Same column: go along Y.
/// assert_eq!(route_xy(m, NodeId(0), NodeId(56)), Port::South);
/// assert_eq!(route_xy(m, NodeId(5), NodeId(5)), Port::Local);
/// ```
pub fn route_xy(mesh: Mesh, cur: NodeId, dest: NodeId) -> Port {
    let c = mesh.coord(cur);
    let d = mesh.coord(dest);
    if c.x < d.x {
        Port::East
    } else if c.x > d.x {
        Port::West
    } else if c.y < d.y {
        Port::South
    } else if c.y > d.y {
        Port::North
    } else {
        Port::Local
    }
}

/// The output port a flit at `cur` must take toward `dest` on an
/// `n`-router ring under shortest-path routing, ties broken East.
/// Returns [`Port::Local`] when `cur == dest`.
///
/// Note this routing function is deliberately *unrestricted*: with the
/// wraparound link every East (and every West) channel participates in a
/// channel-dependency cycle, so the network can deadlock under saturating
/// traffic. The `nox-statics` analyzer proves exactly that and produces
/// the witness cycle; a deadlock-free ring needs an escape resource
/// (e.g. a dateline virtual channel), which this minimal seed omits.
///
/// # Example
///
/// ```
/// use nox_sim::routing::route_ring;
/// use nox_sim::topology::{NodeId, Port};
///
/// assert_eq!(route_ring(8, NodeId(7), NodeId(0)), Port::East); // wrap
/// assert_eq!(route_ring(8, NodeId(1), NodeId(7)), Port::West);
/// assert_eq!(route_ring(8, NodeId(3), NodeId(3)), Port::Local);
/// ```
pub fn route_ring(n: u8, cur: NodeId, dest: NodeId) -> Port {
    let n = n as u16;
    debug_assert!(cur.0 < n && dest.0 < n, "node outside ring");
    if cur == dest {
        return Port::Local;
    }
    let east = (dest.0 + n - cur.0) % n;
    if east <= n - east {
        Port::East
    } else {
        Port::West
    }
}

/// The full XY path from `src` to `dest`, excluding `src`, including
/// `dest`. Useful for tests and analytical models.
pub fn path_xy(mesh: Mesh, src: NodeId, dest: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut cur = src;
    while cur != dest {
        let port = route_xy(mesh, cur, dest);
        cur = mesh
            .neighbor(cur, port)
            .expect("XY routing stepped off the mesh");
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_x_before_y() {
        let m = Mesh::new(4, 4);
        // (0,0) -> (2,2): must go East first.
        assert_eq!(route_xy(m, NodeId(0), NodeId(10)), Port::East);
        // (2,0) -> (2,2): X resolved, go South.
        assert_eq!(route_xy(m, NodeId(2), NodeId(10)), Port::South);
    }

    #[test]
    fn route_to_self_is_local() {
        let m = Mesh::new(4, 4);
        assert_eq!(route_xy(m, NodeId(7), NodeId(7)), Port::Local);
    }

    #[test]
    fn path_length_matches_manhattan_distance() {
        let m = Mesh::new(8, 8);
        for a in [0u16, 5, 17, 63] {
            for b in [0u16, 9, 32, 63] {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(path_xy(m, a, b).len() as u32, m.hops(a, b));
            }
        }
    }

    #[test]
    fn path_ends_at_destination() {
        let m = Mesh::new(8, 8);
        let p = path_xy(m, NodeId(3), NodeId(60));
        assert_eq!(*p.last().unwrap(), NodeId(60));
    }

    #[test]
    fn ring_routes_are_minimal_and_never_reverse() {
        // Every route reaches its destination within floor(n/2) hops and
        // never changes direction along the way.
        for n in [3u8, 4, 5, 8] {
            for s in 0..n as u16 {
                for d in 0..n as u16 {
                    let mut cur = NodeId(s);
                    let mut first = None;
                    let mut steps = 0u16;
                    while cur != NodeId(d) {
                        let port = route_ring(n, cur, NodeId(d));
                        assert_ne!(port, Port::Local);
                        assert_eq!(*first.get_or_insert(port), port, "n={n} {s}->{d} reversed");
                        let m = n as u16;
                        cur = match port {
                            Port::East => NodeId((cur.0 + 1) % m),
                            Port::West => NodeId((cur.0 + m - 1) % m),
                            _ => unreachable!("ring routes only E/W"),
                        };
                        steps += 1;
                        assert!(steps <= n as u16 / 2, "n={n} {s}->{d} not minimal");
                    }
                }
            }
        }
    }

    #[test]
    fn xy_paths_never_turn_back_to_x() {
        // Once a packet moves in Y, it must never move in X again —
        // the invariant that makes DOR deadlock-free.
        let m = Mesh::new(8, 8);
        for (a, b) in [(0u16, 63u16), (7, 56), (20, 43)] {
            let mut cur = NodeId(a);
            let mut seen_y = false;
            while cur != NodeId(b) {
                let port = route_xy(m, cur, NodeId(b));
                match port {
                    Port::East | Port::West => {
                        assert!(!seen_y, "X move after Y move");
                    }
                    Port::North | Port::South => seen_y = true,
                    Port::Local => unreachable!(),
                }
                cur = m.neighbor(cur, port).unwrap();
            }
        }
    }
}
