//! Event counters and latency accumulators.
//!
//! The paper's power methodology (§4) complements the cycle-accurate
//! simulator "with necessary event counters to form an accurate power
//! model". [`Counters`] is that set of event counters; `nox-power` maps
//! them to energy. [`LatencyStats`] is a streaming accumulator for packet
//! latencies so multi-million-packet runs need no per-packet storage.

/// Dynamic-activity event counters for one network.
///
/// Counter semantics (one increment per event):
///
/// * `link_flits` — productive link traversals (one word actually carrying
///   payload crosses an inter-router or ejection channel).
/// * `link_wasted` — link cycles driven with an indeterminate or invalid
///   value: speculative collision cycles (§3.2) and NoX aborts (§2.7).
///   These cost full channel energy but carry nothing.
/// * `xbar_traversals` / `xbar_inputs_active` — switch activations and the
///   total number of inputs simultaneously driving them (for the XOR
///   switch an encoded transfer activates several inputs at once).
/// * `buffer_writes` / `buffer_reads` — SRAM FIFO accesses.
/// * `arbitrations` — output arbiter decisions producing a grant.
/// * `decode_xors` / `decode_reg_writes` — NoX decode-path activity.
/// * `collisions` — speculative-router collision cycles.
/// * `aborts` — NoX multi-flit abort cycles.
/// * `encoded_transfers` — NoX productive encoded link words.
/// * `wasted_reservations` — speculative output reservations that idled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Counters {
    pub cycles: u64,
    pub link_flits: u64,
    pub link_wasted: u64,
    pub xbar_traversals: u64,
    pub xbar_inputs_active: u64,
    pub buffer_writes: u64,
    pub buffer_reads: u64,
    pub arbitrations: u64,
    pub decode_xors: u64,
    pub decode_reg_writes: u64,
    pub collisions: u64,
    pub aborts: u64,
    pub encoded_transfers: u64,
    pub wasted_reservations: u64,
    pub flits_injected: u64,
    pub flits_ejected: u64,
    pub packets_injected: u64,
    pub packets_ejected: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total link activations, productive or not — what the channel
    /// energy model charges for.
    pub fn link_transitions(&self) -> u64 {
        self.link_flits + self.link_wasted
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.cycles += other.cycles;
        self.link_flits += other.link_flits;
        self.link_wasted += other.link_wasted;
        self.xbar_traversals += other.xbar_traversals;
        self.xbar_inputs_active += other.xbar_inputs_active;
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.arbitrations += other.arbitrations;
        self.decode_xors += other.decode_xors;
        self.decode_reg_writes += other.decode_reg_writes;
        self.collisions += other.collisions;
        self.aborts += other.aborts;
        self.encoded_transfers += other.encoded_transfers;
        self.wasted_reservations += other.wasted_reservations;
        self.flits_injected += other.flits_injected;
        self.flits_ejected += other.flits_ejected;
        self.packets_injected += other.packets_injected;
        self.packets_ejected += other.packets_ejected;
    }
}

/// Streaming mean/min/max/variance accumulator for packet latencies (or
/// any nonnegative sample stream).
///
/// # Example
///
/// ```
/// use nox_sim::stats::LatencyStats;
///
/// let mut s = LatencyStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl LatencyStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0 when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = Counters {
            link_flits: 3,
            cycles: 10,
            ..Default::default()
        };
        let b = Counters {
            link_flits: 4,
            link_wasted: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.link_flits, 7);
        assert_eq!(a.link_wasted, 2);
        assert_eq!(a.cycles, 10);
        assert_eq!(a.link_transitions(), 9);
    }

    #[test]
    fn latency_stats_moments() {
        let mut s = LatencyStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let xs = [1.0, 5.0, 2.5, 8.0, 3.0];
        let mut all = LatencyStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }
}
