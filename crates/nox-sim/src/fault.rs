//! Runtime fault-injection state (feature `faults`).
//!
//! This module wires the pure, deterministic machinery of `nox-fault`
//! (fault plans, CRC sidebands, campaign statistics) into the simulator.
//! A [`FaultState`] attached to a [`Network`](crate::network::Network) via
//! [`enable_faults`](crate::network::Network::enable_faults) intercepts
//! every link delivery, may freeze routers or corrupt credit counters,
//! classifies every ejected flit as clean / detected-corrupt / silently
//! corrupt, and drives the end-to-end retransmission protocol.
//!
//! # What the fault layer models
//!
//! * **Injection** — per-word bit flips, drops, and duplications on
//!   links; stuck-at-dead links; per-cycle credit-counter overclaims;
//!   transient whole-router freezes. All draws come from the seeded
//!   [`FaultPlan`], so a campaign replays bit-identically.
//! * **Detection** — a linear CRC-8 sideband checked at ejection
//!   (`crc8(actual) != crc8(expected)` is exactly equivalent to checking
//!   a physically-XORed CRC sideband, because the code is linear); FSM
//!   desync self-checks at every decode register (a presented word that
//!   is not one plain flit); per-packet sequence checks at the NIC; and
//!   buffer-overflow drops from corrupted credit counters.
//! * **Containment** — poisoned XOR chains are truncated ("chain kill")
//!   instead of presenting garbage to the switch, and CRC-detected flits
//!   are discarded at the NIC instead of being delivered wrong.
//! * **Recovery** — sources retransmit undelivered packets after a
//!   timeout with exponential backoff; receivers discard duplicate
//!   deliveries; XY routing detours around stuck-at-dead links.
//!
//! Headers are modeled as protected: the simulator's ground-truth keys
//! (which stand in for the flit header sideband) are never corrupted, so
//! routing and sequence information stay intact and corruption is purely
//! a payload phenomenon. This isolates exactly the failure mode the NoX
//! XOR chain amplifies — one flipped payload bit on an encoded word
//! corrupts *every* flit decoded from that chain.

use std::collections::BTreeMap;

use nox_core::PortId;
pub use nox_fault::{
    crc8, CycleStats, DeadLink, FaultConfig, FaultPlan, FaultStats, RetxConfig, RouterFreeze,
};

use crate::flit::{FlitInfo, FlitKey, PacketId, PacketMeta, Word};
use crate::topology::{NodeId, Topology};

/// Cycles without any flit movement before the deadlock-recovery
/// watchdog fires (resetting control engines and flushing stuck decode
/// chains). Far above any fault-free stall the credit protocol can
/// produce, far below the default retransmission timeout's backoff range.
pub(crate) const WATCHDOG_STALL_CYCLES: u64 = 256;

/// What the fault layer decided for one in-flight link word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LinkFate {
    /// Deliver the (possibly corrupted) word normally.
    Deliver,
    /// Deliver the word twice (a duplication fault).
    DeliverTwice,
    /// The word vanishes in flight (drop or dead link).
    Drop,
}

/// How an ejected flit's payload classified against its ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DeliveryClass {
    /// Payload intact.
    Clean,
    /// Payload corrupt, caught by the CRC sideband; discarded at the NIC.
    DetectedCrc,
    /// Payload corrupt and delivered to the core undetected.
    Silent,
}

/// Disposition of a tail-flit ejection for the retransmission protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TailDelivery {
    /// First complete delivery of the logical packet.
    First {
        /// `true` when delivery needed at least one retransmission.
        recovered: bool,
    },
    /// The logical packet was already delivered; this copy is discarded.
    Duplicate,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LogicalStatus {
    /// Awaiting delivery; with retransmission on, a timeout is armed.
    Pending {
        deadline: Option<u64>,
    },
    Delivered,
    Failed,
}

/// One logical packet: the payload the application wants delivered once,
/// across however many physical transmission attempts.
#[derive(Clone, Debug)]
struct Logical {
    src: NodeId,
    dest: NodeId,
    len: u16,
    created: u64,
    attempts: u32,
    status: LogicalStatus,
}

/// A retransmission the network must launch for a timed-out packet.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Retransmit {
    /// Source core.
    pub src: NodeId,
    /// Destination core.
    pub dest: NodeId,
    /// Packet length in flits.
    pub len: u16,
}

/// The complete runtime state of an attached fault campaign.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    stats: FaultStats,
    cur_cycle: u64,
    /// All logical packets, indexed by registration order.
    logicals: Vec<Logical>,
    /// Physical attempt (PacketId) to logical index.
    by_packet: BTreeMap<PacketId, usize>,
    /// Flit keys tagged at bit-flip injection time, for detection-latency
    /// measurement: key -> injection cycle.
    corrupt_since: BTreeMap<u64, u64>,
    /// Credits to swallow per (node, output port) — the balancing side of
    /// a duplication fault, whose second copy occupied an uncredited slot.
    swallow: BTreeMap<(u16, u8), u64>,
    /// Pinned output port per (node, packet), so a mid-campaign dead-link
    /// detour cannot split a wormhole packet across two paths.
    route_cache: BTreeMap<(u16, u64), PortId>,
    /// Progress-counter snapshot for the deadlock watchdog.
    watchdog_last_progress: u64,
    /// Cycle at which progress last advanced.
    watchdog_stall_since: u64,
}

impl FaultState {
    /// Wraps a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultConfig::validate`]).
    pub fn new(cfg: FaultConfig) -> Self {
        FaultState {
            plan: FaultPlan::new(cfg),
            stats: FaultStats::default(),
            cur_cycle: 0,
            logicals: Vec::new(),
            by_packet: BTreeMap::new(),
            corrupt_since: BTreeMap::new(),
            swallow: BTreeMap::new(),
            route_cache: BTreeMap::new(),
            watchdog_last_progress: 0,
            watchdog_stall_since: 0,
        }
    }

    /// The campaign statistics accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The attached fault plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        self.plan.config()
    }

    /// Number of logical packets registered.
    pub fn total_logicals(&self) -> u64 {
        self.logicals.len() as u64
    }

    /// Logical packets delivered exactly once (dedup'd).
    pub fn delivered_logicals(&self) -> u64 {
        self.logicals
            .iter()
            .filter(|l| l.status == LogicalStatus::Delivered)
            .count() as u64
    }

    /// `true` when the retransmission protocol has nothing left to do:
    /// every logical packet is delivered or has exhausted its attempts.
    /// Without retransmission there is no protocol to wait on, so this is
    /// always `true`.
    pub fn settled(&self) -> bool {
        self.plan.config().retx.is_none()
            || self
                .logicals
                .iter()
                .all(|l| !matches!(l.status, LogicalStatus::Pending { .. }))
    }

    // ---------------------------------------------------- network hooks

    pub(crate) fn begin_cycle(&mut self, cycle: u64) {
        self.cur_cycle = cycle;
    }

    /// Registers a physical packet as a fresh logical packet (attempt 1).
    pub(crate) fn register(&mut self, id: PacketId, meta: &PacketMeta) {
        let deadline = self
            .plan
            .config()
            .retx
            .map(|rx| meta.created_cycle + rx.timeout_after(1));
        let idx = self.logicals.len();
        self.logicals.push(Logical {
            src: meta.src,
            dest: meta.dest,
            len: meta.len,
            created: meta.created_cycle,
            attempts: 1,
            status: LogicalStatus::Pending { deadline },
        });
        self.by_packet.insert(id, idx);
    }

    /// Maps a retransmission attempt's packet id onto its logical packet.
    pub(crate) fn map_attempt(&mut self, id: PacketId, logical: usize) {
        self.by_packet.insert(id, logical);
    }

    /// Decides the fate of one in-flight link word, applying any bit flip
    /// in place. Returns the fate plus whether a flip was injected (for
    /// telemetry).
    pub(crate) fn intercept(
        &mut self,
        node: NodeId,
        out: PortId,
        word: &mut Word,
    ) -> (LinkFate, bool) {
        let (c, n, p) = (self.cur_cycle, node.0, out.0);
        if self.plan.link_dead(c, n, p) {
            self.stats.dead_link_drops += 1;
            return (LinkFate::Drop, false);
        }
        if self.plan.drop(c, n, p) {
            self.stats.injected_drops += 1;
            return (LinkFate::Drop, false);
        }
        let mut flipped = false;
        if let Some(bit) = self.plan.bit_flip(c, n, p) {
            word.corrupt_payload(&(1u64 << bit));
            self.stats.injected_bit_flips += 1;
            flipped = true;
            // Tag every constituent for detection-latency measurement.
            // The mask also lands on chain-mates decoded *against* this
            // word; those go untagged, so the latency statistic samples
            // directly-struck flits only.
            for &k in word.keys() {
                self.corrupt_since.entry(k).or_insert(c);
            }
        }
        if self.plan.duplicate(c, n, p) {
            self.stats.injected_dups += 1;
            return (LinkFate::DeliverTwice, flipped);
        }
        (LinkFate::Deliver, flipped)
    }

    /// A duplicated copy actually landed in a downstream buffer: its
    /// eventual release will generate an uncredited return, so one future
    /// credit for this link must be swallowed.
    pub(crate) fn note_dup_delivered(&mut self, node: NodeId, port: u8) {
        *self.swallow.entry((node.0, port)).or_insert(0) += 1;
    }

    /// Should this credit return be swallowed (annihilating a phantom
    /// credit from a duplication fault)?
    pub(crate) fn swallow_credit(&mut self, node: u16, port: u8) -> bool {
        match self.swallow.get_mut(&(node, port)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// A word arrived at a full buffer (credit-corruption fallout) and was
    /// dropped without returning the phantom credit.
    pub(crate) fn note_overflow(&mut self) {
        self.stats.detected_overflow += 1;
    }

    /// Is this router frozen this cycle? Counts suppressed router-cycles.
    pub(crate) fn frozen_tick(&mut self, node: u16) -> bool {
        if self.plan.frozen(self.cur_cycle, node) {
            self.stats.frozen_cycles += 1;
            true
        } else {
            false
        }
    }

    /// Draws this cycle's credit-corruption site, if any, out of `sites`.
    pub(crate) fn credit_corrupt_site(&mut self, sites: usize) -> Option<usize> {
        self.plan.credit_corrupt(self.cur_cycle, sites)
    }

    /// A credit counter was actually overclaimed.
    pub(crate) fn note_credit_corrupted(&mut self) {
        self.stats.injected_credit_corruptions += 1;
    }

    /// A poisoned decode chain was truncated, losing `lost` constituent
    /// keys' worth of superposed state.
    pub(crate) fn note_chain_kill(&mut self, lost: usize) {
        self.stats.detected_desync += 1;
        self.stats.chain_kills += 1;
        self.stats.flits_discarded += lost as u64;
    }

    /// A flit arrived at the NIC out of sequence (drop or duplication
    /// upstream) and was discarded.
    pub(crate) fn note_seq_mismatch(&mut self) {
        self.stats.detected_sequence += 1;
    }

    /// Classifies one decoded flit at ejection against its ground-truth
    /// payload, updating detection statistics.
    pub(crate) fn classify_delivery(&mut self, key: FlitKey, actual: u64) -> DeliveryClass {
        let expected = key.payload();
        if actual == expected {
            // Any earlier mask cancelled out (flip + flip on the same bit).
            self.corrupt_since.remove(&key.pack());
            return DeliveryClass::Clean;
        }
        let tagged = self.corrupt_since.remove(&key.pack());
        if self.plan.config().crc_enabled && crc8(actual) != crc8(expected) {
            self.stats.detected_crc += 1;
            if let Some(c0) = tagged {
                self.stats
                    .detection_latency
                    .record(self.cur_cycle.saturating_sub(c0));
            }
            DeliveryClass::DetectedCrc
        } else {
            // CRC off, or a multi-bit mask aliased (~2^-8 per corrupt flit).
            self.stats.silent_corruptions += 1;
            DeliveryClass::Silent
        }
    }

    /// Records a tail-flit ejection for the retransmission protocol.
    pub(crate) fn note_tail(&mut self, id: PacketId, eject_cycle: u64) -> TailDelivery {
        let Some(&idx) = self.by_packet.get(&id) else {
            // Unregistered packet (faults attached mid-run): pass through.
            return TailDelivery::First { recovered: false };
        };
        let l = &mut self.logicals[idx];
        match l.status {
            LogicalStatus::Delivered => {
                self.stats.duplicates_discarded += 1;
                TailDelivery::Duplicate
            }
            LogicalStatus::Pending { .. } | LogicalStatus::Failed => {
                if l.status == LogicalStatus::Failed {
                    // A write-off arrived after all: un-count the failure.
                    self.stats.packets_failed = self.stats.packets_failed.saturating_sub(1);
                }
                l.status = LogicalStatus::Delivered;
                let recovered = l.attempts > 1;
                if recovered {
                    self.stats.packets_recovered += 1;
                    self.stats
                        .recovery_latency
                        .record(eject_cycle.saturating_sub(l.created));
                }
                TailDelivery::First { recovered }
            }
        }
    }

    /// Collects the retransmissions due this cycle, arming backoff
    /// deadlines and writing off packets that exhausted their attempts.
    pub(crate) fn due_retransmissions(&mut self, cycle: u64) -> Vec<(usize, Retransmit)> {
        let Some(rx) = self.plan.config().retx else {
            return Vec::new();
        };
        let mut due = Vec::new();
        for (idx, l) in self.logicals.iter_mut().enumerate() {
            let LogicalStatus::Pending {
                deadline: Some(deadline),
            } = l.status
            else {
                continue;
            };
            if deadline > cycle {
                continue;
            }
            if l.attempts >= rx.max_attempts {
                l.status = LogicalStatus::Failed;
                self.stats.packets_failed += 1;
                continue;
            }
            l.attempts += 1;
            l.status = LogicalStatus::Pending {
                deadline: Some(cycle + rx.timeout_after(l.attempts)),
            };
            self.stats.retransmissions += 1;
            due.push((
                idx,
                Retransmit {
                    src: l.src,
                    dest: l.dest,
                    len: l.len,
                },
            ));
        }
        due
    }

    /// Deadlock watchdog: `true` when the network made no progress for
    /// [`WATCHDOG_STALL_CYCLES`] and recovery (engine resets + decode
    /// flushes) should fire. `progress` is any monotone counter that
    /// advances whenever a flit moves.
    pub(crate) fn watchdog_due(&mut self, progress: u64) -> bool {
        if progress != self.watchdog_last_progress {
            self.watchdog_last_progress = progress;
            self.watchdog_stall_since = self.cur_cycle;
            return false;
        }
        if self.cur_cycle.saturating_sub(self.watchdog_stall_since) >= WATCHDOG_STALL_CYCLES {
            self.watchdog_stall_since = self.cur_cycle;
            self.stats.watchdog_resets += 1;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------ router hooks

    fn link_is_dead(&self, node: NodeId, port: PortId) -> bool {
        self.plan.link_dead(self.cur_cycle, node.0, port.0)
    }

    /// Fault-aware route selection: takes the XY-preferred port unless its
    /// link is stuck-at-dead, in which case the detour minimizing the
    /// remaining hop distance over live links is chosen. The choice is
    /// pinned per (router, packet) so wormhole packets stay on one path
    /// even if the dead set changes mid-flight.
    ///
    /// Detours are best-effort graceful degradation: they are deterministic
    /// and minimal-first, but unlike plain XY they are not provably
    /// deadlock-free — the end-to-end retransmission layer (not the
    /// routing function) carries the delivery guarantee under hard faults.
    pub(crate) fn reroute(
        &mut self,
        topo: &Topology,
        node: NodeId,
        info: &FlitInfo,
        preferred: PortId,
    ) -> PortId {
        if self.plan.config().dead_links.is_empty() {
            return preferred;
        }
        let key = (node.0, info.packet.0);
        if info.multiflit && info.seq > 0 {
            if let Some(&pinned) = self.route_cache.get(&key) {
                if info.tail {
                    self.route_cache.remove(&key);
                }
                return pinned;
            }
        }
        let chosen = self.pick_live_port(topo, node, info.dest, preferred);
        if info.multiflit && !info.tail {
            self.route_cache.insert(key, chosen);
        }
        chosen
    }

    fn pick_live_port(
        &self,
        topo: &Topology,
        node: NodeId,
        dest: NodeId,
        preferred: PortId,
    ) -> PortId {
        if topo.is_local(preferred) || !self.link_is_dead(node, preferred) {
            return preferred;
        }
        let dest_router = topo.router_of(dest);
        let mut best: Option<(u32, PortId)> = None;
        for p in 0..topo.ports() {
            let p = PortId(p);
            if topo.is_local(p) || self.link_is_dead(node, p) {
                continue;
            }
            let Some((neighbour, _)) = topo.link_dest(node, p) else {
                continue;
            };
            let d = topo.router_hops(neighbour, dest_router);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, p));
            }
        }
        // Every live link dead-ends: fall back to the preferred port; the
        // word will be counted as a dead-link drop and retransmission
        // (if configured) eventually gives up on the packet.
        best.map_or(preferred, |(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketTable;

    fn meta(src: u16, dest: u16, len: u16, created: u64) -> PacketMeta {
        PacketMeta {
            src: NodeId(src),
            dest: NodeId(dest),
            len,
            created_cycle: created,
            measured: false,
        }
    }

    fn state_with_retx() -> FaultState {
        FaultState::new(FaultConfig {
            retx: Some(RetxConfig {
                timeout_cycles: 100,
                max_attempts: 3,
            }),
            ..Default::default()
        })
    }

    #[test]
    fn retransmission_times_out_backs_off_and_gives_up() {
        let mut st = state_with_retx();
        let mut t = PacketTable::new();
        let id = t.push(meta(0, 5, 2, 0));
        st.register(id, t.meta(id));

        assert!(st.due_retransmissions(99).is_empty());
        // Attempt 2 at the first deadline.
        let due = st.due_retransmissions(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].1.len, 2);
        assert_eq!(st.stats().retransmissions, 1);
        // Backoff doubled: next deadline is 100 + 200.
        assert!(st.due_retransmissions(299).is_empty());
        let due = st.due_retransmissions(300);
        assert_eq!(due.len(), 1);
        // Attempt 3 armed a 400-cycle deadline (300 + 400 = 700); its
        // expiry exhausts max_attempts and writes the packet off.
        assert!(st.due_retransmissions(699).is_empty());
        assert_eq!(st.stats().packets_failed, 0);
        assert!(st.due_retransmissions(700).is_empty());
        assert_eq!(st.stats().packets_failed, 1);
        assert!(st.settled());
        assert_eq!(st.delivered_logicals(), 0);
    }

    #[test]
    fn tail_delivery_dedups_and_counts_recovery() {
        let mut st = state_with_retx();
        let mut t = PacketTable::new();
        let id = t.push(meta(0, 5, 1, 0));
        st.register(id, t.meta(id));
        let due = st.due_retransmissions(100);
        let retry = t.push(meta(0, 5, 1, 100));
        st.map_attempt(retry, due[0].0);

        // The retry lands first; the late original is a duplicate.
        assert_eq!(
            st.note_tail(retry, 150),
            TailDelivery::First { recovered: true }
        );
        assert_eq!(st.note_tail(id, 160), TailDelivery::Duplicate);
        assert_eq!(st.stats().packets_recovered, 1);
        assert_eq!(st.stats().duplicates_discarded, 1);
        assert_eq!(st.stats().recovery_latency.max, 150);
        assert_eq!(st.delivered_logicals(), 1);
        assert!(st.settled());
    }

    #[test]
    fn classify_detects_with_crc_and_is_silent_without() {
        let key = FlitKey {
            packet: PacketId(7),
            seq: 0,
        };
        let mut unprot = FaultState::new(FaultConfig::bit_flips(1, 0.0));
        assert_eq!(
            unprot.classify_delivery(key, key.payload()),
            DeliveryClass::Clean
        );
        assert_eq!(
            unprot.classify_delivery(key, key.payload() ^ 4),
            DeliveryClass::Silent
        );
        let mut prot = FaultState::new(FaultConfig::protected_bit_flips(1, 0.0));
        assert_eq!(
            prot.classify_delivery(key, key.payload() ^ 4),
            DeliveryClass::DetectedCrc
        );
        assert_eq!(prot.stats().detected_crc, 1);
        assert_eq!(unprot.stats().silent_corruptions, 1);
    }

    #[test]
    fn intercept_flips_exactly_one_payload_bit() {
        let mut st = FaultState::new(FaultConfig::bit_flips(3, 1.0));
        st.begin_cycle(5);
        let key = FlitKey {
            packet: PacketId(1),
            seq: 0,
        };
        let mut w = crate::flit::word_for(key);
        let (fate, flipped) = st.intercept(NodeId(0), PortId(1), &mut w);
        assert_eq!(fate, LinkFate::Deliver);
        assert!(flipped);
        assert_eq!(w.sole_key(), Some(key.pack()), "keys must stay intact");
        assert_eq!(
            (*w.payload() ^ key.payload()).count_ones(),
            1,
            "exactly one bit flipped"
        );
        assert_eq!(st.stats().injected_bit_flips, 1);
    }

    #[test]
    fn swallowed_credits_balance_duplications() {
        let mut st = FaultState::new(FaultConfig::default());
        st.note_dup_delivered(NodeId(3), 2);
        assert!(st.swallow_credit(3, 2));
        assert!(!st.swallow_credit(3, 2));
        assert!(!st.swallow_credit(3, 1));
    }

    #[test]
    fn reroute_detours_around_a_dead_link_and_pins_the_packet() {
        let topo = Topology::mesh(4, 4);
        // Node 5 = (1,1) heading to node 7 = (3,1): XY prefers East.
        let preferred = topo.route(NodeId(5), NodeId(7));
        let mut st = FaultState::new(FaultConfig {
            dead_links: vec![DeadLink {
                node: 5,
                port: preferred.0,
            }],
            ..Default::default()
        });
        let mut t = PacketTable::new();
        let id = t.push(meta(5, 7, 2, 0));
        let head = t.flit_info(FlitKey { packet: id, seq: 0 });
        let tail = t.flit_info(FlitKey { packet: id, seq: 1 });

        let chosen = st.reroute(&topo, NodeId(5), &head, preferred);
        assert_ne!(chosen, preferred, "must detour off the dead link");
        assert!(!topo.is_local(chosen));
        // The tail follows the pinned choice even though it re-routes.
        assert_eq!(st.reroute(&topo, NodeId(5), &tail, preferred), chosen);
        // Pin is released after the tail.
        assert!(st.route_cache.is_empty());
    }

    #[test]
    fn reroute_is_identity_without_dead_links() {
        let topo = Topology::mesh(4, 4);
        let mut st = FaultState::new(FaultConfig::bit_flips(1, 0.5));
        let mut t = PacketTable::new();
        let id = t.push(meta(5, 7, 1, 0));
        let info = t.flit_info(FlitKey { packet: id, seq: 0 });
        let preferred = topo.route(NodeId(5), NodeId(7));
        assert_eq!(st.reroute(&topo, NodeId(5), &info, preferred), preferred);
    }
}
