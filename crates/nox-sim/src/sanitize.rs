//! Simulation sanitizer: per-cycle conservation audits (the `sanitize`
//! cargo feature).
//!
//! The simulator's inline assertions catch *local* protocol violations
//! (buffer overflow, out-of-order flits, payload corruption at ejection).
//! The sanitizer closes the *global* books every cycle:
//!
//! * **flit conservation** — every injected, not-yet-ejected flit is
//!   present somewhere in the network (buffered, in a decode register, or
//!   on a link), and no ejected flit leaves a stale copy behind;
//! * **credit-loop accounting** — for every link, buffer slots are
//!   conserved: available credits + occupied downstream slots + words in
//!   flight + credits in return flight always equal the buffer depth;
//! * **link-cycle productivity** — every wasted link cycle is explained
//!   by its architecture's waste mechanism per §3.2: aborts for NoX,
//!   failed speculation for Spec, and nothing at all for Non-Spec.
//!
//! The checks here are pure functions over counter snapshots and
//! occupancy views; [`Network`](crate::network::Network) assembles the
//! views and panics on the first audit failure, in keeping with the
//! simulator's fail-fast assertion style.

use std::collections::BTreeSet;

use crate::config::Arch;
use crate::stats::Counters;

/// Slot accounting for one credit loop (one connected output port and
/// the input buffer it feeds).
#[derive(Clone, Debug)]
pub struct CreditLoopView {
    /// Where the loop lives, for diagnostics (e.g. `"(1,2) port E"`).
    pub label: String,
    /// Credits available at the upstream output port.
    pub credits: usize,
    /// Words occupying the downstream buffer.
    pub downstream_occupancy: usize,
    /// Words launched onto this link, not yet delivered.
    pub words_in_flight: usize,
    /// Credits freed downstream, still in their return flight.
    pub credits_in_flight: usize,
    /// The downstream buffer depth the loop must conserve.
    pub depth: usize,
}

/// Checks that live flit keys exactly account for the injected-minus-
/// ejected difference. `live_keys` is the set of distinct flit keys
/// appearing anywhere in the network (buffers, decode registers, links).
pub fn check_flit_conservation(c: &Counters, live_keys: &BTreeSet<u64>) -> Result<(), String> {
    let in_network = c.flits_injected - c.flits_ejected;
    if live_keys.len() as u64 != in_network {
        return Err(format!(
            "flit conservation broken: {} injected - {} ejected = {} flits should be in the \
             network, but {} distinct flit keys are present",
            c.flits_injected,
            c.flits_ejected,
            in_network,
            live_keys.len()
        ));
    }
    Ok(())
}

/// Checks slot conservation for one credit loop.
pub fn check_credit_loop(v: &CreditLoopView) -> Result<(), String> {
    let slots = v.credits + v.downstream_occupancy + v.words_in_flight + v.credits_in_flight;
    if slots != v.depth {
        return Err(format!(
            "credit loop {} lost track of buffer slots: {} credits + {} buffered + {} on link + \
             {} credits in flight = {} != depth {}",
            v.label,
            v.credits,
            v.downstream_occupancy,
            v.words_in_flight,
            v.credits_in_flight,
            slots,
            v.depth
        ));
    }
    Ok(())
}

/// Checks the §3.2 link-cycle productivity classification: each
/// architecture may only waste link cycles through its own mechanism,
/// and every wasted cycle must be accounted for by it.
pub fn check_productivity(arch: Arch, c: &Counters) -> Result<(), String> {
    let fail = |msg: String| Err(format!("link productivity ({arch}): {msg}"));
    match arch {
        Arch::NonSpec => {
            if c.link_wasted != 0 || c.aborts != 0 || c.collisions != 0 || c.encoded_transfers != 0
            {
                return fail(format!(
                    "non-speculative links are always productive, yet wasted={} aborts={} \
                     collisions={} encoded={}",
                    c.link_wasted, c.aborts, c.collisions, c.encoded_transfers
                ));
            }
        }
        Arch::SpecFast | Arch::SpecAccurate => {
            if c.link_wasted != c.collisions {
                return fail(format!(
                    "every wasted link cycle must be a failed speculation: wasted={} collisions={}",
                    c.link_wasted, c.collisions
                ));
            }
            if c.aborts != 0 || c.encoded_transfers != 0 {
                return fail(format!(
                    "NoX events on a speculative router: aborts={} encoded={}",
                    c.aborts, c.encoded_transfers
                ));
            }
        }
        Arch::Nox => {
            if c.link_wasted != c.aborts {
                return fail(format!(
                    "every wasted link cycle must be an abort: wasted={} aborts={}",
                    c.link_wasted, c.aborts
                ));
            }
            if c.collisions != 0 || c.wasted_reservations != 0 {
                return fail(format!(
                    "speculation events on a NoX router: collisions={} wasted_reservations={}",
                    c.collisions, c.wasted_reservations
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Counters {
        Counters::new()
    }

    #[test]
    fn flit_conservation_accepts_balanced_books() {
        let mut c = counters();
        c.flits_injected = 5;
        c.flits_ejected = 2;
        let live: BTreeSet<u64> = [10, 11, 12].into_iter().collect();
        assert!(check_flit_conservation(&c, &live).is_ok());
    }

    #[test]
    fn flit_conservation_rejects_a_lost_flit() {
        let mut c = counters();
        c.flits_injected = 3;
        c.flits_ejected = 0;
        let live: BTreeSet<u64> = [10, 11].into_iter().collect();
        let err = check_flit_conservation(&c, &live).unwrap_err();
        assert!(err.contains("flit conservation broken"), "{err}");
    }

    #[test]
    fn credit_loop_rejects_leaked_slot() {
        let v = CreditLoopView {
            label: "test".into(),
            credits: 1,
            downstream_occupancy: 1,
            words_in_flight: 0,
            credits_in_flight: 0,
            depth: 4,
        };
        assert!(check_credit_loop(&v).unwrap_err().contains("lost track"));
    }

    #[test]
    fn productivity_classifies_per_architecture() {
        let mut c = counters();
        c.link_wasted = 3;
        c.aborts = 3;
        assert!(check_productivity(Arch::Nox, &c).is_ok());
        assert!(check_productivity(Arch::NonSpec, &c).is_err());
        // A wasted cycle with no abort is unexplained on NoX.
        c.aborts = 2;
        assert!(check_productivity(Arch::Nox, &c).is_err());
        // Spec explains waste through collisions instead.
        c.aborts = 0;
        c.collisions = 3;
        assert!(check_productivity(Arch::SpecFast, &c).is_ok());
        assert!(check_productivity(Arch::SpecAccurate, &c).is_ok());
    }
}
