//! Cycle-accurate wormhole NoC simulator for the NoX router reproduction
//! (Hayenga & Lipasti, MICRO 2011).
//!
//! This crate rebuilds, from scratch, the evaluation substrate the paper's
//! C++ simulator provided: a mesh of five-port wormhole routers with
//! credit-based flow control, dimension-ordered routing, per-node sources
//! and sinks, and event counters feeding the `nox-power` energy model. All
//! four router architectures from the paper are cycle-accurate models
//! driven by the control state machines in `nox-core`:
//!
//! | architecture | variant | paper |
//! |---|---|---|
//! | Non-speculative (sequential) | [`config::Arch::NonSpec`] | §3.1.1 |
//! | Spec-Fast | [`config::Arch::SpecFast`] | §3.1.2 |
//! | Spec-Accurate | [`config::Arch::SpecAccurate`] | §3.1.2 |
//! | NoX | [`config::Arch::Nox`] | §2 |
//!
//! # Quickstart
//!
//! ```
//! use nox_sim::config::{Arch, NetConfig};
//! use nox_sim::sim::{run, RunSpec};
//! use nox_sim::topology::NodeId;
//! use nox_sim::trace::{PacketEvent, Trace};
//!
//! // A trickle of single-flit packets corner to corner on a 4x4 mesh.
//! let mut trace = Trace::new();
//! for i in 0..50u32 {
//!     trace.push(PacketEvent {
//!         time_ns: i as f64 * 20.0,
//!         src: NodeId(0),
//!         dest: NodeId(15),
//!         len: 1,
//!     });
//! }
//! let result = run(NetConfig::small(Arch::Nox), &trace, &RunSpec::quick());
//! assert!(result.drained);
//! println!("avg latency: {:.2} ns", result.avg_latency_ns());
//! ```
//!
//! The simulator self-checks continuously: credit conservation, per-packet
//! flit ordering, XOR payload integrity at ejection, and buffer bounds are
//! all asserted every cycle of every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
#[cfg(feature = "faults")]
pub mod fault;
pub mod flit;
pub mod histogram;
pub mod network;
#[cfg(feature = "probe")]
pub mod probe;
pub mod router;
pub mod routing;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod sim;
pub mod sink;
pub mod source;
pub mod stats;
pub mod topology;
pub mod trace;

pub use config::{Arch, NetConfig};
pub use histogram::LogHistogram;
pub use network::Network;
pub use sim::{run, RunSpec, SimResult};
pub use stats::{Counters, LatencyStats};
pub use topology::{Mesh, NodeId, Port};
pub use trace::{PacketEvent, Trace};
