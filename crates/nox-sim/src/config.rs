//! Simulation configuration: router architectures and system parameters.
//!
//! Defaults follow Table 1 of the paper (64-node 8x8 mesh, 64-bit flits,
//! four-entry input buffers, 2 mm channels) and Table 2 for the per
//! architecture clock periods. The clock periods here are the *published*
//! values; `nox-power`'s logical-effort timing model re-derives them and a
//! cross-check test keeps the two in agreement.

use std::fmt;

/// The four router architectures evaluated in the paper.
///
/// `Ord` follows declaration order — the paper's presentation order —
/// so the architectures key ordered containers deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// Sequential baseline: switch arbitration then switch traversal (§3.1.1).
    NonSpec,
    /// Aggressive single-cycle speculative router (§3.1.2).
    SpecFast,
    /// Accurately-scheduled single-cycle speculative router (§3.1.2).
    SpecAccurate,
    /// The paper's contribution: XOR-coded crossbar arbitration (§2).
    Nox,
}

impl Arch {
    /// All architectures, in the paper's presentation order.
    pub const ALL: [Arch; 4] = [Arch::NonSpec, Arch::SpecFast, Arch::SpecAccurate, Arch::Nox];

    /// Clock period in picoseconds, from Table 2 of the paper.
    ///
    /// Includes the 248 ps SRAM access and the 98 ps link traversal of the
    /// 2 mm inter-tile channel.
    pub fn clock_ps(self) -> u32 {
        match self {
            Arch::NonSpec => 920,
            Arch::SpecFast => 690,
            Arch::SpecAccurate => 720,
            Arch::Nox => 760,
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(self) -> f64 {
        self.clock_ps() as f64 / 1000.0
    }

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Arch::NonSpec => "Non-Speculative",
            Arch::SpecFast => "Spec-Fast",
            Arch::SpecAccurate => "Spec-Accurate",
            Arch::Nox => "NoX",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Clock periods for the concentrated-mesh (radix-8) routers of the
/// future-work study, in picoseconds. Derived by `nox-power`'s timing
/// model (cross-checked by test): the 4 mm channels add ~98 ps everywhere,
/// the wider arbiter costs the sequential router one more stage, and the
/// NoX decode stage is a *fixed* cost — so NoX's relative clock penalty
/// shrinks at higher radix, as the paper's §8 anticipates.
pub fn cmesh_clock_ps(arch: Arch) -> u32 {
    match arch {
        Arch::NonSpec => 1080,
        Arch::SpecFast => 810,
        Arch::SpecAccurate => 840,
        Arch::Nox => 880,
    }
}

/// Static configuration of one simulated network.
///
/// # Example
///
/// ```
/// use nox_sim::config::{Arch, NetConfig};
///
/// let cfg = NetConfig::paper(Arch::Nox);
/// assert_eq!(cfg.width, 8);
/// assert_eq!(cfg.buffer_depth, 4);
/// assert_eq!(cfg.clock_ps, 760);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Router-grid width (columns).
    pub width: u8,
    /// Router-grid height (rows).
    pub height: u8,
    /// Cores per router: 1 for the paper's mesh, 2..=4 for the
    /// concentrated-mesh future-work study.
    pub concentration: u8,
    /// Use the wraparound ring topology of `width` routers instead of a
    /// grid (requires `height == 1` and `concentration == 1`). The
    /// shortest-path ring routing is knowingly deadlock-prone; see
    /// [`crate::routing::route_ring`].
    pub ring: bool,
    /// Router architecture to instantiate.
    pub arch: Arch,
    /// Input buffer depth in flits per port (Table 1: 4).
    pub buffer_depth: usize,
    /// Flit width in bytes (Table 1: 64-bit links).
    pub flit_bytes: u32,
    /// Cycles between a buffer slot freeing and the credit becoming usable
    /// upstream. Together with the 1-cycle link this sizes the credit
    /// round-trip the 4-entry buffers must cover (Table 1).
    pub credit_delay: u64,
    /// Clock period in picoseconds (defaults to [`Arch::clock_ps`]).
    pub clock_ps: u32,
    /// Enable the NoX Scheduled mode (§2.6). Disabling it is an ablation
    /// that isolates the coding half of the design; it only affects
    /// [`Arch::Nox`] networks.
    pub nox_scheduled_mode: bool,
}

impl NetConfig {
    /// The paper's Table 1 configuration for a given architecture:
    /// 8x8 mesh, 4-deep 64-bit buffers, Table 2 clock.
    pub fn paper(arch: Arch) -> Self {
        NetConfig {
            width: 8,
            height: 8,
            concentration: 1,
            ring: false,
            arch,
            buffer_depth: 4,
            flit_bytes: 8,
            credit_delay: 2,
            clock_ps: arch.clock_ps(),
            nox_scheduled_mode: true,
        }
    }

    /// A small 4x4 configuration for fast tests.
    pub fn small(arch: Arch) -> Self {
        NetConfig {
            width: 4,
            height: 4,
            ..Self::paper(arch)
        }
    }

    /// The future-work configuration (§8): a 4x4 concentrated mesh with
    /// four cores per radix-8 router — still 64 cores — with 4 mm
    /// channels and the correspondingly longer clock periods.
    pub fn cmesh_paper(arch: Arch) -> Self {
        NetConfig {
            width: 4,
            height: 4,
            concentration: 4,
            clock_ps: cmesh_clock_ps(arch),
            ..Self::paper(arch)
        }
    }

    /// A wraparound ring of `n` routers, otherwise Table 1 parameters.
    /// The analyzer's (and simulator's) concrete deadlock-prone instance.
    pub fn ring(arch: Arch, n: u8) -> Self {
        NetConfig {
            width: n,
            height: 1,
            ring: true,
            ..Self::paper(arch)
        }
    }

    /// The topology this configuration describes.
    pub fn topology(&self) -> crate::topology::Topology {
        if self.ring {
            crate::topology::Topology::ring(self.width)
        } else if self.concentration <= 1 {
            crate::topology::Topology::mesh(self.width, self.height)
        } else {
            crate::topology::Topology::cmesh(self.width, self.height, self.concentration)
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ps as f64 / 1000.0
    }

    /// Number of cores (network endpoints).
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize * self.concentration.max(1) as usize
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err("mesh dimensions must be non-zero".into());
        }
        if self.buffer_depth < 2 {
            return Err("buffer depth must cover at least head+latch".into());
        }
        if self.clock_ps == 0 {
            return Err("clock period must be non-zero".into());
        }
        if self.flit_bytes == 0 {
            return Err("flit width must be non-zero".into());
        }
        if self.concentration == 0 || self.concentration > 4 {
            return Err("concentration must be 1..=4".into());
        }
        if self.ring {
            if self.height != 1 || self.concentration != 1 {
                return Err("ring topology requires height 1 and concentration 1".into());
            }
            if self.width < 3 {
                return Err("ring topology needs at least 3 routers".into());
            }
        }
        Ok(())
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::paper(Arch::Nox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_clock_periods() {
        assert_eq!(Arch::NonSpec.clock_ps(), 920);
        assert_eq!(Arch::SpecFast.clock_ps(), 690);
        assert_eq!(Arch::SpecAccurate.clock_ps(), 720);
        assert_eq!(Arch::Nox.clock_ps(), 760);
    }

    #[test]
    fn relative_speedups_match_section_6_1() {
        // "Relative to the non-speculative architecture, the Spec-Fast,
        // Spec-Accurate, and NoX architectures are 33.3%, 27.8%, and 21.1%
        // faster on a clock period basis."
        let base = Arch::NonSpec.clock_ps() as f64;
        let faster = |a: Arch| (base - a.clock_ps() as f64) / base * 100.0;
        assert!((faster(Arch::SpecFast) - 25.0).abs() < 0.1); // 230/920
                                                              // The paper's percentages are relative to the *faster* clock:
                                                              // (920-690)/690 = 33.3%.
        let rel = |a: Arch| (base / a.clock_ps() as f64 - 1.0) * 100.0;
        assert!((rel(Arch::SpecFast) - 33.3).abs() < 0.1);
        assert!((rel(Arch::SpecAccurate) - 27.8).abs() < 0.1);
        assert!((rel(Arch::Nox) - 21.1).abs() < 0.1);
    }

    #[test]
    fn nox_decode_overhead_is_40ps() {
        assert_eq!(
            Arch::Nox.clock_ps() - Arch::SpecAccurate.clock_ps(),
            40,
            "§6.1: decoding logic incurs approximately 40 ps"
        );
    }

    #[test]
    fn paper_config_matches_table1() {
        let c = NetConfig::paper(Arch::NonSpec);
        assert_eq!(c.nodes(), 64);
        assert_eq!(c.flit_bytes, 8);
        assert_eq!(c.buffer_depth, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cmesh_preset_keeps_64_cores() {
        let c = NetConfig::cmesh_paper(Arch::Nox);
        assert_eq!(c.nodes(), 64);
        assert_eq!(c.topology().ports(), 8);
        assert_eq!(c.clock_ps, 880);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cmesh_clocks_shrink_nox_relative_penalty() {
        // The fixed decode cost amortizes: NoX's clock penalty vs
        // Spec-Accurate is 5.6% on the mesh but only ~4.8% on the cmesh.
        let mesh_pen = Arch::Nox.clock_ps() as f64 / Arch::SpecAccurate.clock_ps() as f64;
        let cmesh_pen =
            cmesh_clock_ps(Arch::Nox) as f64 / cmesh_clock_ps(Arch::SpecAccurate) as f64;
        assert!(cmesh_pen < mesh_pen);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = NetConfig::paper(Arch::Nox);
        c.buffer_depth = 1;
        assert!(c.validate().is_err());
        let mut c = NetConfig::paper(Arch::Nox);
        c.width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ring_preset_builds_a_ring() {
        let c = NetConfig::ring(Arch::Nox, 8);
        assert!(c.validate().is_ok());
        assert_eq!(c.nodes(), 8);
        assert_eq!(c.topology().kind(), crate::topology::TopologyKind::Ring);
    }

    #[test]
    fn ring_validation_constraints() {
        let mut c = NetConfig::ring(Arch::Nox, 8);
        c.height = 2;
        assert!(c.validate().is_err());
        let mut c = NetConfig::ring(Arch::Nox, 8);
        c.concentration = 2;
        assert!(c.validate().is_err());
        assert!(NetConfig::ring(Arch::Nox, 2).validate().is_err());
    }
}
