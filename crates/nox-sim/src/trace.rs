//! Packet injection traces.
//!
//! Both evaluation modes of the paper are trace-driven: synthetic traffic
//! generators produce a stream of timed injection events, and application
//! traffic replays "processor packet events ... injected into the
//! interconnection network on their corresponding network clock cycles"
//! (§5.2). Times are kept in **nanoseconds** so the same trace drives
//! networks with different clock periods at identical offered load —
//! exactly the paper's "CPU injection bandwidth constant across all
//! interconnection networks" methodology.

use crate::topology::NodeId;

/// One packet-injection event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacketEvent {
    /// Creation time in nanoseconds (entry into the source queue).
    pub time_ns: f64,
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Packet length in flits.
    pub len: u16,
}

/// A time-sorted sequence of injection events for one network.
///
/// # Example
///
/// ```
/// use nox_sim::topology::NodeId;
/// use nox_sim::trace::{PacketEvent, Trace};
///
/// let mut t = Trace::new();
/// t.push(PacketEvent { time_ns: 0.0, src: NodeId(0), dest: NodeId(5), len: 1 });
/// t.push(PacketEvent { time_ns: 3.2, src: NodeId(1), dest: NodeId(2), len: 9 });
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.total_flits(), 10);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    events: Vec<PacketEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the event is not in time order, has a negative time, or a
    /// zero-length packet.
    pub fn push(&mut self, e: PacketEvent) {
        assert!(e.time_ns >= 0.0, "event time must be nonnegative");
        assert!(e.len >= 1, "packets need at least one flit");
        if let Some(last) = self.events.last() {
            assert!(
                e.time_ns >= last.time_ns,
                "trace events must be time-sorted ({} < {})",
                e.time_ns,
                last.time_ns
            );
        }
        self.events.push(e);
    }

    /// Builds a trace from possibly-unsorted events, sorting by time
    /// (stable, so same-time events keep their relative order).
    pub fn from_events(mut events: Vec<PacketEvent>) -> Self {
        events.sort_by(|a, b| a.time_ns.total_cmp(&b.time_ns));
        let mut t = Trace::new();
        for e in events {
            t.push(e);
        }
        t
    }

    /// The events, in time order.
    pub fn events(&self) -> &[PacketEvent] {
        &self.events
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total flits across all packets.
    pub fn total_flits(&self) -> u64 {
        self.events.iter().map(|e| e.len as u64).sum()
    }

    /// Time of the last event, or 0 for an empty trace.
    pub fn horizon_ns(&self) -> f64 {
        self.events.last().map(|e| e.time_ns).unwrap_or(0.0)
    }

    /// Offered load in flits per node per nanosecond over the horizon.
    pub fn offered_flits_per_node_ns(&self, nodes: usize) -> f64 {
        if self.horizon_ns() <= 0.0 || nodes == 0 {
            return 0.0;
        }
        self.total_flits() as f64 / self.horizon_ns() / nodes as f64
    }
}

impl FromIterator<PacketEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = PacketEvent>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl Extend<PacketEvent> for Trace {
    fn extend<I: IntoIterator<Item = PacketEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> PacketEvent {
        PacketEvent {
            time_ns: t,
            src: NodeId(0),
            dest: NodeId(1),
            len: 1,
        }
    }

    #[test]
    fn push_keeps_order() {
        let mut t = Trace::new();
        t.push(ev(1.0));
        t.push(ev(1.0));
        t.push(ev(2.0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn out_of_order_push_rejected() {
        let mut t = Trace::new();
        t.push(ev(2.0));
        t.push(ev(1.0));
    }

    #[test]
    fn from_events_sorts() {
        let t = Trace::from_events(vec![ev(3.0), ev(1.0), ev(2.0)]);
        let times: Vec<f64> = t.events().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn offered_load_computation() {
        let mut t = Trace::new();
        t.push(PacketEvent {
            time_ns: 0.0,
            src: NodeId(0),
            dest: NodeId(1),
            len: 4,
        });
        t.push(PacketEvent {
            time_ns: 10.0,
            src: NodeId(1),
            dest: NodeId(0),
            len: 6,
        });
        // 10 flits over 10 ns across 2 nodes = 0.5 flits/node/ns.
        assert!((t.offered_flits_per_node_ns(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.horizon_ns(), 0.0);
        assert_eq!(t.offered_flits_per_node_ns(64), 0.0);
    }
}

/// Error parsing a trace from its text form.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Serializes the trace to its text form: a `# noxtrace v1` header
    /// followed by one `time_ns src dest len` line per packet.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer. A mutable reference to any
    /// writer can be passed (e.g. `&mut file`).
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# noxtrace v1")?;
        for e in &self.events {
            writeln!(w, "{} {} {} {}", e.time_ns, e.src.0, e.dest.0, e.len)?;
        }
        Ok(())
    }

    /// Parses a trace from its text form (see [`Trace::write_to`]).
    /// Blank lines and `#` comments are ignored; events may appear in any
    /// order and are sorted by time.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the offending line for any
    /// malformed record.
    pub fn parse(text: &str) -> Result<Trace, ParseTraceError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut next = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| ParseTraceError::new(i + 1, format!("missing {what}")))
            };
            let time_ns: f64 = next("time")?
                .parse()
                .map_err(|_| ParseTraceError::new(i + 1, "invalid time"))?;
            let src: u16 = next("src")?
                .parse()
                .map_err(|_| ParseTraceError::new(i + 1, "invalid src"))?;
            let dest: u16 = next("dest")?
                .parse()
                .map_err(|_| ParseTraceError::new(i + 1, "invalid dest"))?;
            let len: u16 = next("len")?
                .parse()
                .map_err(|_| ParseTraceError::new(i + 1, "invalid len"))?;
            if parts.next().is_some() {
                return Err(ParseTraceError::new(i + 1, "trailing fields"));
            }
            if time_ns < 0.0 {
                return Err(ParseTraceError::new(i + 1, "negative time"));
            }
            if len == 0 {
                return Err(ParseTraceError::new(i + 1, "zero-length packet"));
            }
            events.push(PacketEvent {
                time_ns,
                src: NodeId(src),
                dest: NodeId(dest),
                len,
            });
        }
        Ok(Trace::from_events(events))
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(PacketEvent {
            time_ns: 0.5,
            src: NodeId(3),
            dest: NodeId(9),
            len: 1,
        });
        t.push(PacketEvent {
            time_ns: 12.25,
            src: NodeId(0),
            dest: NodeId(63),
            len: 9,
        });
        t
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = Trace::parse("# hello\n\n  # more\n1.0 0 1 1\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let t = Trace::parse("5.0 0 1 1\n1.0 1 0 1\n").unwrap();
        assert_eq!(t.events()[0].time_ns, 1.0);
    }

    #[test]
    fn errors_name_the_line() {
        let err = Trace::parse("1.0 0 1 1\nbogus 0 1 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(Trace::parse("1.0 0 1\n").is_err(), "missing field");
        assert!(Trace::parse("1.0 0 1 1 7\n").is_err(), "trailing field");
        assert!(Trace::parse("-1.0 0 1 1\n").is_err(), "negative time");
        assert!(Trace::parse("1.0 0 1 0\n").is_err(), "zero length");
        assert!(Trace::parse("1.0 99999999 1 1\n").is_err(), "src overflow");
    }
}
