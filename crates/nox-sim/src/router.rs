//! Cycle-accurate router models for all four architectures.
//!
//! A [`Router`] owns five input ports (SRAM FIFO plus, for NoX, the decode
//! register of §2.4) and five output ports (credit counter plus the
//! architecture's per-output control engine from `nox-core`). Each network
//! cycle the router:
//!
//! 1. computes, per input, the *presented* flit — for NoX this runs the
//!    decode plan, possibly consuming the cycle to latch an encoded word;
//! 2. groups presented flits into per-output request sets, qualified by
//!    downstream credit;
//! 3. ticks each output's control engine;
//! 4. applies the decisions: drives link words (possibly XOR-encoded,
//!    possibly invalid on a collision/abort), consumes serviced flits,
//!    returns credits upstream, and counts every energy-relevant event.
//!
//! The router emits link transfers and credit returns into a [`TickCtx`];
//! the surrounding [`Network`](crate::network::Network) owns the wiring
//! and delivers them on the next cycle.

use std::collections::VecDeque;

use nox_core::{
    DecodeAction, DecodePlan, Decoder, NonSpecCtl, NoxOptions, OutputCtl, PortId, PortSet,
    RequestSet, SpecCtl, SpecMode,
};

use crate::config::Arch;
use crate::flit::{FlitInfo, PacketTable, Word};
use crate::stats::Counters;
use crate::topology::{NodeId, Topology};

/// A link-word transfer leaving a router this cycle.
#[derive(Clone, Debug)]
pub struct Send {
    /// Originating node.
    pub node: NodeId,
    /// Originating output port.
    pub out: PortId,
    /// The (possibly encoded) word.
    pub word: Word,
}

/// A freed input-buffer slot whose credit must travel upstream.
#[derive(Clone, Copy, Debug)]
pub struct CreditReturn {
    /// Node whose input buffer freed a slot.
    pub node: NodeId,
    /// The input port of that buffer.
    pub input: PortId,
}

/// Mutable per-cycle context shared by all routers of a network.
pub struct TickCtx<'a> {
    /// Packet metadata (for routing and flow-control qualification).
    pub packets: &'a PacketTable,
    /// Event counters for the energy model.
    pub counters: &'a mut Counters,
    /// Link transfers produced this cycle (delivered next cycle).
    pub sends: &'a mut Vec<Send>,
    /// Credit returns produced this cycle (usable after the credit delay).
    pub credits: &'a mut Vec<CreditReturn>,
    /// Telemetry collector, if one is attached to the network.
    #[cfg(feature = "probe")]
    pub probe: Option<&'a mut crate::probe::Probe>,
    /// Fault-injection state, if a campaign is attached to the network.
    #[cfg(feature = "faults")]
    pub faults: Option<&'a mut crate::fault::FaultState>,
    /// Phase clock, if self-profiling is enabled on the network.
    #[cfg(feature = "telemetry")]
    pub phases: Option<&'a mut nox_telemetry::PhaseClock>,
}

impl<'a> TickCtx<'a> {
    /// Creates a context with no probe attached.
    pub fn new(
        packets: &'a PacketTable,
        counters: &'a mut Counters,
        sends: &'a mut Vec<Send>,
        credits: &'a mut Vec<CreditReturn>,
    ) -> Self {
        TickCtx {
            packets,
            counters,
            sends,
            credits,
            #[cfg(feature = "probe")]
            probe: None,
            #[cfg(feature = "faults")]
            faults: None,
            #[cfg(feature = "telemetry")]
            phases: None,
        }
    }

    /// Attributes time since the previous phase mark to `phase`. A
    /// branch when profiling is attached, nothing otherwise.
    #[cfg(feature = "telemetry")]
    pub(crate) fn phase_mark(&mut self, phase: nox_telemetry::PhaseId) {
        if let Some(clock) = &mut self.phases {
            clock.mark(phase);
        }
    }

    // Fault hook shims: real under the `faults` feature, empty inline
    // no-ops otherwise, so the router call sites stay unconditional.

    /// Fault-aware route selection: detours around stuck-at-dead links.
    #[cfg(feature = "faults")]
    fn fault_route(
        &mut self,
        topo: &Topology,
        node: NodeId,
        info: &FlitInfo,
        preferred: PortId,
    ) -> PortId {
        match &mut self.faults {
            Some(f) => f.reroute(topo, node, info, preferred),
            None => preferred,
        }
    }

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    fn fault_route(
        &mut self,
        _topo: &Topology,
        _node: NodeId,
        _info: &FlitInfo,
        preferred: PortId,
    ) -> PortId {
        preferred
    }

    /// FSM desync self-check: a presented word that is not exactly one
    /// plain flit means the decode register lost sync with the chain
    /// (possible only under fault injection; otherwise `word_info` panics
    /// on this condition as a simulator invariant).
    #[cfg(feature = "faults")]
    fn fault_desync(&mut self, word: &Word) -> bool {
        self.faults.is_some() && !word.is_plain()
    }

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    fn fault_desync(&mut self, _word: &Word) -> bool {
        false
    }

    /// Is this router frozen (transient fault) this cycle?
    #[cfg(feature = "faults")]
    pub(crate) fn fault_frozen(&mut self, node: NodeId) -> bool {
        match &mut self.faults {
            Some(f) => f.frozen_tick(node.0),
            None => false,
        }
    }

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    pub(crate) fn fault_frozen(&mut self, _node: NodeId) -> bool {
        false
    }

    #[cfg(feature = "faults")]
    fn fault_chain_kill(&mut self, node: NodeId, input: PortId, lost: usize) {
        if let Some(f) = &mut self.faults {
            f.note_chain_kill(lost);
        }
        self.probe_fault(node, input, "detect desync");
    }

    #[cfg(all(feature = "faults", feature = "probe"))]
    fn probe_fault(&mut self, node: NodeId, port: PortId, label: &'static str) {
        if let Some(p) = &mut self.probe {
            p.on_fault(node, port, label);
        }
    }

    #[cfg(all(feature = "faults", not(feature = "probe")))]
    #[inline(always)]
    fn probe_fault(&mut self, _node: NodeId, _port: PortId, _label: &'static str) {}

    // Probe hook shims: real under the `probe` feature, empty inline
    // no-ops otherwise, so the router call sites stay unconditional.

    #[cfg(feature = "probe")]
    fn probe_encoded(&mut self, node: NodeId, out: PortId, chain_len: u8) {
        if let Some(p) = &mut self.probe {
            p.on_encoded(node, out, chain_len);
        }
    }

    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    fn probe_encoded(&mut self, _node: NodeId, _out: PortId, _chain_len: u8) {}

    #[cfg(feature = "probe")]
    fn probe_wasted(&mut self, node: NodeId, out: PortId, colliding: u8, abort: bool) {
        if let Some(p) = &mut self.probe {
            p.on_wasted(node, out, colliding, abort);
        }
    }

    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    fn probe_wasted(&mut self, _node: NodeId, _out: PortId, _colliding: u8, _abort: bool) {}

    #[cfg(feature = "probe")]
    fn probe_latch(&mut self, node: NodeId, input: PortId) {
        if let Some(p) = &mut self.probe {
            p.on_latch(node, input);
        }
    }

    #[cfg(not(feature = "probe"))]
    #[inline(always)]
    fn probe_latch(&mut self, _node: NodeId, _input: PortId) {}
}

/// One input port: wormhole FIFO, NoX decode register, and the Spec-Fast
/// freshness flag.
#[derive(Clone, Debug)]
pub struct InputPort {
    fifo: VecDeque<Word>,
    capacity: usize,
    decoder: Decoder<u64>,
    fresh: bool,
    fresh_next: bool,
}

impl InputPort {
    fn new(capacity: usize) -> Self {
        InputPort {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            decoder: Decoder::new(),
            fresh: false,
            fresh_next: false,
        }
    }

    /// Current FIFO occupancy in flits.
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when the FIFO has room for another flit.
    pub fn has_space(&self) -> bool {
        self.fifo.len() < self.capacity
    }

    /// Accepts an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics on buffer overflow — the upstream credit discipline must
    /// make that impossible.
    pub fn receive(&mut self, word: Word) {
        assert!(
            self.has_space(),
            "input buffer overflow: credit protocol violated"
        );
        self.fifo.push_back(word);
    }

    /// `true` when the port holds no flits and no partial decode.
    pub fn is_idle(&self) -> bool {
        self.fifo.is_empty() && !self.decoder.is_mid_chain()
    }

    /// Words currently buffered, head first (sanitizer support).
    #[cfg(feature = "sanitize")]
    pub(crate) fn buffered_words(&self) -> impl Iterator<Item = &Word> {
        self.fifo.iter()
    }

    /// The decode register contents, if a chain is in progress
    /// (sanitizer support).
    #[cfg(feature = "sanitize")]
    pub(crate) fn decode_register(&self) -> Option<&Word> {
        self.decoder.register()
    }

    /// Starts a new cycle: promotes the freshness flag.
    fn begin_cycle(&mut self) {
        self.fresh = self.fresh_next;
        self.fresh_next = false;
    }

    /// Test helper: pops the head flit directly, bypassing control logic.
    #[cfg(test)]
    pub(crate) fn receive_test_pop(&mut self) -> Option<Word> {
        self.fifo.pop_front()
    }

    /// Chain-kill containment: abandons a poisoned decode chain. The
    /// decode register is reset and, if the head-of-line word is encoded
    /// (part of the same broken chain), it is popped too. Returns the
    /// number of constituent flit keys discarded and whether a FIFO slot
    /// was freed (whose credit the caller must return).
    #[cfg(feature = "faults")]
    pub(crate) fn chain_kill(&mut self) -> (usize, bool) {
        let mut lost = 0;
        if let Some(reg) = self.decoder.reset() {
            lost += reg.arity();
        }
        let mut popped = false;
        if self.fifo.front().is_some_and(Word::is_encoded) {
            let head = self.fifo.pop_front().expect("front was Some");
            lost += head.arity();
            popped = true;
        }
        (lost, popped)
    }

    /// Pops the head flit, maintaining the freshness flag for Spec-Fast.
    fn pop(&mut self, popped_is_tail: bool) -> Word {
        let w = self.fifo.pop_front().expect("pop from empty FIFO");
        if popped_is_tail && !self.fifo.is_empty() {
            // The next packet is newly exposed at the head of line.
            self.fresh_next = true;
        }
        w
    }
}

/// The per-architecture output control engine.
#[derive(Clone, Debug)]
enum Engine {
    NonSpec(NonSpecCtl),
    Spec(SpecCtl),
    Nox(OutputCtl),
}

/// One output port: control engine plus downstream credit counter.
#[derive(Clone, Debug)]
pub struct OutputPort {
    engine: Engine,
    credits: usize,
    /// `false` for mesh-edge ports with no link attached.
    connected: bool,
}

impl OutputPort {
    /// Credits (free downstream buffer slots) currently available.
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// Returns one credit (a downstream slot freed).
    pub fn return_credit(&mut self, capacity: usize) {
        self.credits += 1;
        assert!(
            self.credits <= capacity,
            "credit overflow: more credits than buffer slots"
        );
    }

    /// Returns one credit, clamping at capacity instead of panicking.
    /// Under fault injection phantom credits (from credit-counter
    /// corruption or duplication faults) can legitimately over-return;
    /// clamping makes the loop self-balancing.
    #[cfg(feature = "faults")]
    pub(crate) fn return_credit_saturating(&mut self, capacity: usize) {
        self.credits = (self.credits + 1).min(capacity);
    }

    /// Overwrites the credit counter (a credit-corruption fault).
    #[cfg(feature = "faults")]
    pub(crate) fn force_credits(&mut self, credits: usize) {
        self.credits = credits;
    }

    /// `true` when a physical link is attached to this port.
    #[cfg(feature = "faults")]
    pub(crate) fn is_connected(&self) -> bool {
        self.connected
    }
}

/// A presented (decode-complete) flit and its routing information.
#[derive(Clone, Debug)]
struct Presented {
    word: Word,
    info: FlitInfo,
    out: PortId,
    action: DecodeAction,
}

/// One output engine's decision for the cycle, recorded by the arbitrate
/// stage and consumed by the apply stage.
#[derive(Clone, Copy, Debug)]
enum Decision {
    /// Output frozen by credit exhaustion: the engine was not ticked.
    Skip,
    NonSpec(nox_core::NonSpecDecision),
    Spec(nox_core::SpecDecision),
    Nox(nox_core::NoxDecision),
}

/// Per-cycle working state, kept on the router so the tick loop recycles
/// its allocations instead of growing fresh vectors every cycle.
///
/// The vectors are meaningful only between
/// [`tick_present`](Router::tick_present) and the end of
/// [`tick_apply`](Router::tick_apply) of the same cycle.
#[derive(Clone, Debug, Default)]
struct TickScratch {
    presented: Vec<Option<Presented>>,
    reqs: Vec<RequestSet>,
    fresh: Vec<PortSet>,
    decisions: Vec<Decision>,
    /// Transient router freeze this cycle: the later stages are no-ops.
    frozen: bool,
}

/// A router of a given architecture: five ports on the paper's mesh,
/// more on a concentrated mesh.
///
/// A cycle advances in three stages so the network can run each stage
/// across *all* routers and attribute its wall time to a named phase:
///
/// 1. [`tick_present`](Self::tick_present) — decode plans, routing, and
///    request-set construction (phase `sim.route`);
/// 2. [`tick_arbitrate`](Self::tick_arbitrate) — the per-output control
///    engines decide (phase `sim.arbitrate`);
/// 3. [`tick_apply`](Self::tick_apply) — decisions take effect: words
///    drive links, inputs are serviced, credits return, counters count
///    (phases `sim.drive` / `sim.encode`).
///
/// Routers never interact within a cycle (sends and credits emitted into
/// the [`TickCtx`] are delivered by the network on *later* cycles), and
/// within one router the engines consume only state precomputed by the
/// present stage — so staging the loops this way is behaviourally
/// identical to ticking each router start-to-finish.
/// [`tick`](Self::tick) composes the three stages for single-router use.
#[derive(Clone, Debug)]
pub struct Router {
    node: NodeId,
    arch: Arch,
    topo: Topology,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    scratch: TickScratch,
}

impl Router {
    /// Creates a router for grid node `node` with the given buffer depth.
    /// Edge ports without a neighbour are marked unconnected (they never
    /// see traffic under minimal routing, which tests assert).
    pub fn new(node: NodeId, arch: Arch, topo: Topology, buffer_depth: usize) -> Self {
        Self::with_options(node, arch, topo, buffer_depth, NoxOptions::default())
    }

    /// Creates a router with explicit NoX ablation options (only relevant
    /// for [`Arch::Nox`]).
    pub fn with_options(
        node: NodeId,
        arch: Arch,
        topo: Topology,
        buffer_depth: usize,
        options: NoxOptions,
    ) -> Self {
        let ports = topo.ports();
        let inputs = (0..ports).map(|_| InputPort::new(buffer_depth)).collect();
        let outputs = (0..ports)
            .map(|p| {
                let engine = match arch {
                    Arch::NonSpec => Engine::NonSpec(NonSpecCtl::new(ports)),
                    Arch::SpecFast => Engine::Spec(SpecCtl::new(ports, SpecMode::Fast)),
                    Arch::SpecAccurate => Engine::Spec(SpecCtl::new(ports, SpecMode::Accurate)),
                    Arch::Nox => Engine::Nox(OutputCtl::with_options(ports, options)),
                };
                let p = PortId(p);
                OutputPort {
                    engine,
                    credits: buffer_depth,
                    connected: topo.is_local(p) || topo.link_dest(node, p).is_some(),
                }
            })
            .collect();
        Router {
            node,
            arch,
            topo,
            inputs,
            outputs,
            scratch: TickScratch::default(),
        }
    }

    /// Number of ports on this router.
    pub fn ports(&self) -> u8 {
        self.topo.ports()
    }

    /// This router's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Immutable access to an input port (for assertions and tracing).
    pub fn input(&self, p: PortId) -> &InputPort {
        &self.inputs[p.index()]
    }

    /// Mutable access to an input port (the network delivers flits here).
    pub fn input_mut(&mut self, p: PortId) -> &mut InputPort {
        &mut self.inputs[p.index()]
    }

    /// Immutable access to an output port.
    pub fn output(&self, p: PortId) -> &OutputPort {
        &self.outputs[p.index()]
    }

    /// Mutable access to an output port (the network returns credits here).
    pub fn output_mut(&mut self, p: PortId) -> &mut OutputPort {
        &mut self.outputs[p.index()]
    }

    /// `true` when every input port is empty (used to detect drain).
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(InputPort::is_idle)
    }

    /// Total flits buffered across all input ports.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(|i| i.fifo.len()).sum()
    }

    /// The NoX FSM mode of one output's control engine, for telemetry
    /// sampling. `None` for non-NoX architectures.
    #[cfg(feature = "probe")]
    pub fn output_mode(&self, p: PortId) -> Option<nox_core::Mode> {
        match &self.outputs[p.index()].engine {
            Engine::Nox(ctl) => Some(ctl.mode()),
            _ => None,
        }
    }

    /// Watchdog deadlock recovery: resets every output's control engine
    /// (clearing wedged reservations, streams, and collision chains) and
    /// truncates every in-progress decode chain. Returns, per input that
    /// lost state, `(port, constituent flits discarded, slot freed)`.
    ///
    /// Resetting engines mid-wormhole can interleave healthy packets;
    /// their flits then fail the sink sequence check and fall back to
    /// end-to-end retransmission — graceful degradation, not a panic.
    #[cfg(feature = "faults")]
    pub(crate) fn watchdog_flush(&mut self) -> Vec<(PortId, usize, bool)> {
        let ports = self.topo.ports();
        for out in &mut self.outputs {
            out.engine = match &out.engine {
                Engine::NonSpec(_) => Engine::NonSpec(NonSpecCtl::new(ports)),
                Engine::Spec(c) => Engine::Spec(SpecCtl::new(ports, c.spec_mode())),
                Engine::Nox(c) => Engine::Nox(OutputCtl::with_options(ports, c.options())),
            };
        }
        let mut flushed = Vec::new();
        for (idx, input) in self.inputs.iter_mut().enumerate() {
            if input.decoder.is_mid_chain() {
                let (lost, popped) = input.chain_kill();
                flushed.push((PortId(idx as u8), lost, popped));
            }
        }
        flushed
    }

    /// Advances the router by one cycle: the three tick stages back to
    /// back, including the per-cycle transient-freeze draw.
    pub fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        let frozen = ctx.fault_frozen(self.node);
        self.tick_present(frozen, ctx);
        self.tick_arbitrate();
        self.tick_apply(ctx);
    }

    // ------------------------------------------------------- tick stages

    /// Stage 1: starts the cycle (freshness promotion), computes the
    /// presented flit per input — for NoX running the decode plan,
    /// possibly consuming the cycle to latch an encoded word — and builds
    /// the credit-qualified per-output request sets.
    ///
    /// `frozen` is this cycle's transient-fault freeze for this router
    /// (drawn by the caller exactly once per router per cycle); a frozen
    /// router loses the whole cycle, and the later stages no-op.
    pub(crate) fn tick_present(&mut self, frozen: bool, ctx: &mut TickCtx<'_>) {
        self.scratch.frozen = frozen;
        if frozen {
            return;
        }
        for i in &mut self.inputs {
            i.begin_cycle();
        }
        self.collect_presented(ctx);
        self.build_request_sets();
    }

    /// Stage 2: ticks every credited output's control engine against the
    /// request sets from stage 1 and records its decision. Pure control
    /// logic — no counters, no link traffic, no credit movement.
    pub(crate) fn tick_arbitrate(&mut self) {
        if self.scratch.frozen {
            return;
        }
        let TickScratch {
            reqs,
            fresh,
            decisions,
            ..
        } = &mut self.scratch;
        decisions.clear();
        for (o, out) in self.outputs.iter_mut().enumerate() {
            if out.credits == 0 {
                // Credit exhaustion freezes the whole output: nothing can
                // traverse, and ticking the controller would tear down a
                // valid schedule (DESIGN.md, clarification 4).
                decisions.push(Decision::Skip);
                continue;
            }
            decisions.push(match &mut out.engine {
                Engine::NonSpec(e) => Decision::NonSpec(e.tick(reqs[o])),
                Engine::Spec(e) => Decision::Spec(e.tick(reqs[o], fresh[o])),
                Engine::Nox(e) => Decision::Nox(e.tick(reqs[o])),
            });
        }
    }

    /// Stage 3: applies stage 2's decisions — drives link words (possibly
    /// XOR-encoded, possibly invalid on a collision/abort), consumes
    /// serviced flits, returns credits upstream, and counts every
    /// energy-relevant event.
    pub(crate) fn tick_apply(&mut self, ctx: &mut TickCtx<'_>) {
        if self.scratch.frozen {
            return;
        }
        let mut presented = std::mem::take(&mut self.scratch.presented);
        let decisions = std::mem::take(&mut self.scratch.decisions);
        for (o, d) in decisions.iter().enumerate() {
            let out = PortId(o as u8);
            match d {
                Decision::Skip => {}
                Decision::Nox(d) => self.apply_nox(out, *d, &mut presented, ctx),
                Decision::Spec(d) => self.apply_spec(out, *d, &mut presented, ctx),
                Decision::NonSpec(d) => self.apply_nonspec(out, *d, &mut presented, ctx),
            }
        }
        // Return the buffers so the next cycle reuses their allocations.
        self.scratch.presented = presented;
        self.scratch.decisions = decisions;
    }

    // ------------------------------------------------------------ helpers

    /// Computes presented flits for all inputs into the scratch table.
    /// For NoX this also performs decode-register latches (which consume
    /// the input's cycle).
    fn collect_presented(&mut self, ctx: &mut TickCtx<'_>) {
        let out = &mut self.scratch.presented;
        out.clear();
        let node = self.node;
        let topo = self.topo;
        let arch = self.arch;
        for (idx, input) in self.inputs.iter_mut().enumerate() {
            let presented = match arch {
                Arch::Nox => match input.decoder.plan(input.fifo.front()) {
                    DecodePlan::Idle => None,
                    DecodePlan::Latch => {
                        // Known early in the cycle (§2.4): pop the encoded
                        // word into the register; the slot frees now.
                        let w = input.pop(false);
                        input.decoder.latch(w);
                        ctx.counters.buffer_reads += 1;
                        ctx.counters.decode_reg_writes += 1;
                        ctx.probe_latch(node, PortId(idx as u8));
                        if !topo.is_local(PortId(idx as u8)) {
                            ctx.credits.push(CreditReturn {
                                node,
                                input: PortId(idx as u8),
                            });
                        }
                        None
                    }
                    DecodePlan::Present { word, action } => {
                        if ctx.fault_desync(&word) {
                            // The decode register lost sync with its chain
                            // (an injected drop or duplication upstream):
                            // contain by truncating the poisoned chain.
                            Self::chain_kill_input(input, node, PortId(idx as u8), &topo, ctx);
                            None
                        } else {
                            let info = ctx.packets.word_info(&word);
                            let preferred = topo.route(node, info.dest);
                            let out_port = ctx.fault_route(&topo, node, &info, preferred);
                            Some(Presented {
                                word,
                                info,
                                out: out_port,
                                action,
                            })
                        }
                    }
                },
                _ => match input.fifo.front() {
                    Some(w) => {
                        let info = ctx.packets.word_info(w);
                        let preferred = topo.route(node, info.dest);
                        let out_port = ctx.fault_route(&topo, node, &info, preferred);
                        Some(Presented {
                            word: w.clone(),
                            info,
                            out: out_port,
                            action: DecodeAction::Pass,
                        })
                    }
                    None => None,
                },
            };
            out.push(presented);
        }
    }

    /// Truncates a poisoned decode chain at `input`, accounting for the
    /// discarded flits and returning the credit of any freed FIFO slot.
    #[cfg(feature = "faults")]
    fn chain_kill_input(
        input: &mut InputPort,
        node: NodeId,
        port: PortId,
        topo: &Topology,
        ctx: &mut TickCtx<'_>,
    ) {
        let (lost, popped) = input.chain_kill();
        ctx.fault_chain_kill(node, port, lost);
        if popped {
            ctx.counters.buffer_reads += 1;
            if !topo.is_local(port) {
                ctx.credits.push(CreditReturn { node, input: port });
            }
        }
    }

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    fn chain_kill_input(
        _input: &mut InputPort,
        _node: NodeId,
        _port: PortId,
        _topo: &Topology,
        _ctx: &mut TickCtx<'_>,
    ) {
    }

    /// Builds the per-output request sets (and the per-output fresh sets
    /// for Spec-Fast) from the presented flits, qualified by downstream
    /// credit, into the scratch buffers.
    fn build_request_sets(&mut self) {
        let TickScratch {
            presented,
            reqs,
            fresh,
            ..
        } = &mut self.scratch;
        let n = self.inputs.len();
        reqs.clear();
        reqs.resize(n, RequestSet::default());
        fresh.clear();
        fresh.resize(n, PortSet::EMPTY);
        for (idx, p) in presented.iter().enumerate() {
            let Some(p) = p else { continue };
            let o = p.out.index();
            if self.outputs[o].credits == 0 {
                continue; // output-wide stall: nobody requests
            }
            let ip = PortId(idx as u8);
            reqs[o].req.insert(ip);
            if p.info.multiflit {
                reqs[o].multiflit.insert(ip);
            }
            if p.info.tail {
                reqs[o].tail.insert(ip);
            }
            if self.inputs[idx].fresh && p.info.seq == 0 {
                fresh[o].insert(ip);
            }
        }
    }

    /// Consumes a serviced flit at input `i`: commits the decode action,
    /// pops the FIFO as required, and returns the freed slot's credit.
    ///
    /// Takes only the decode action and tail flag (not the whole
    /// [`Presented`]) so callers never clone the presented word — the
    /// word itself has already moved onto the link in
    /// [`drive_link`](Self::drive_link).
    fn service_input(
        &mut self,
        i: PortId,
        action: DecodeAction,
        tail: bool,
        ctx: &mut TickCtx<'_>,
    ) {
        let input = &mut self.inputs[i.index()];
        ctx.counters.buffer_reads += 1;
        match action {
            DecodeAction::Pass => {
                input.pop(tail);
                input.decoder.commit(DecodeAction::Pass, None);
                if !self.topo.is_local(i) {
                    ctx.credits.push(CreditReturn {
                        node: self.node,
                        input: i,
                    });
                }
            }
            DecodeAction::DecodeKeep => {
                // The head stays (it is the chain's final packet); only the
                // decode register clears. No slot frees.
                input.decoder.commit(DecodeAction::DecodeKeep, None);
                ctx.counters.decode_xors += 1;
            }
            DecodeAction::DecodeShift => {
                let head = input.pop(false);
                input.decoder.commit(DecodeAction::DecodeShift, Some(head));
                ctx.counters.decode_xors += 1;
                ctx.counters.decode_reg_writes += 1;
                if !self.topo.is_local(i) {
                    ctx.credits.push(CreditReturn {
                        node: self.node,
                        input: i,
                    });
                }
            }
        }
    }

    /// Drives one productive link word from `drive` and consumes a credit.
    fn drive_link(
        &mut self,
        out: PortId,
        drive: PortSet,
        presented: &mut [Option<Presented>],
        ctx: &mut TickCtx<'_>,
    ) {
        // Move (never clone) each driven word out of the presented table:
        // an input presents toward exactly one output per cycle, and
        // servicing afterwards reads only the decode action and tail
        // flag. In the common single-input case the word reaches the
        // link with zero allocations.
        // A multi-input drive is an XOR encode: bracket the fold with
        // phase marks so its cost lands in `sim.encode`, not `sim.drive`.
        #[cfg(feature = "telemetry")]
        if drive.len() > 1 {
            ctx.phase_mark(nox_telemetry::phase::SIM_DRIVE);
        }
        let mut word: Option<Word> = None;
        for i in drive.iter() {
            let p = presented[i.index()]
                .as_mut()
                .expect("engine drove an input that presented nothing");
            let w = std::mem::replace(&mut p.word, Word::empty());
            word = Some(match word {
                None => w,
                Some(acc) => acc.xor(&w),
            });
        }
        #[cfg(feature = "telemetry")]
        if drive.len() > 1 {
            ctx.phase_mark(nox_telemetry::phase::SIM_ENCODE);
        }
        let word = word.expect("engine drove an empty input set");
        let op = &mut self.outputs[out.index()];
        assert!(op.connected, "drove a word onto an unconnected port");
        assert!(op.credits > 0, "drove a word without downstream credit");
        op.credits -= 1;
        ctx.counters.link_flits += 1;
        ctx.counters.xbar_traversals += 1;
        ctx.counters.xbar_inputs_active += drive.len() as u64;
        ctx.sends.push(Send {
            node: self.node,
            out,
            word,
        });
    }

    // ---------------------------------------------------------------- NoX

    fn apply_nox(
        &mut self,
        out: PortId,
        d: nox_core::NoxDecision,
        presented: &mut [Option<Presented>],
        ctx: &mut TickCtx<'_>,
    ) {
        if d.granted.is_some() {
            ctx.counters.arbitrations += 1;
        }
        if d.aborted {
            // Invalid word on the link: full channel energy, nothing
            // delivered, no credit consumed.
            ctx.counters.aborts += 1;
            ctx.counters.link_wasted += 1;
            ctx.counters.xbar_traversals += 1;
            ctx.counters.xbar_inputs_active += d.drive.len() as u64;
            ctx.probe_wasted(self.node, out, d.drive.len() as u8, true);
            return;
        }
        if !d.drive.is_empty() {
            if d.encoded {
                ctx.counters.encoded_transfers += 1;
                ctx.probe_encoded(self.node, out, d.drive.len() as u8);
            }
            self.drive_link(out, d.drive, presented, ctx);
        }
        for i in d.serviced.iter() {
            let p = presented[i.index()]
                .as_ref()
                .expect("NoX engine serviced an input that presented nothing");
            self.service_input(i, p.action, p.info.tail, ctx);
        }
    }

    // --------------------------------------------------------------- spec

    fn apply_spec(
        &mut self,
        out: PortId,
        d: nox_core::SpecDecision,
        presented: &mut [Option<Presented>],
        ctx: &mut TickCtx<'_>,
    ) {
        if d.granted.is_some() {
            ctx.counters.arbitrations += 1;
        }
        if !d.collided.is_empty() {
            // Speculation failed: an indeterminate value crosses the
            // link (§3.2) — wasted channel energy plus switch activity.
            ctx.counters.collisions += 1;
            ctx.counters.link_wasted += 1;
            ctx.counters.xbar_traversals += 1;
            ctx.counters.xbar_inputs_active += d.collided.len() as u64;
            ctx.probe_wasted(self.node, out, d.collided.len() as u8, false);
        }
        if d.wasted_reservation {
            ctx.counters.wasted_reservations += 1;
        }
        if let Some(i) = d.drive {
            self.drive_link(out, PortSet::single(i), presented, ctx);
            let p = presented[i.index()]
                .as_ref()
                .expect("spec engine granted an input that presented nothing");
            self.service_input(i, p.action, p.info.tail, ctx);
        }
    }

    // ------------------------------------------------------------ nonspec

    fn apply_nonspec(
        &mut self,
        out: PortId,
        d: nox_core::NonSpecDecision,
        presented: &mut [Option<Presented>],
        ctx: &mut TickCtx<'_>,
    ) {
        if d.granted {
            ctx.counters.arbitrations += 1;
        }
        if let Some(i) = d.drive {
            self.drive_link(out, PortSet::single(i), presented, ctx);
            let p = presented[i.index()]
                .as_ref()
                .expect("sequential engine granted an input that presented nothing");
            self.service_input(i, p.action, p.info.tail, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{word_for, FlitKey, PacketMeta};
    use crate::topology::Port;

    fn ctx_parts() -> (PacketTable, Counters, Vec<Send>, Vec<CreditReturn>) {
        (PacketTable::new(), Counters::new(), Vec::new(), Vec::new())
    }

    fn single_flit_packet(t: &mut PacketTable, src: u16, dest: u16) -> FlitKey {
        let id = t.push(PacketMeta {
            src: NodeId(src),
            dest: NodeId(dest),
            len: 1,
            created_cycle: 0,
            measured: false,
        });
        FlitKey { packet: id, seq: 0 }
    }

    #[test]
    fn router_forwards_single_flit_toward_destination() {
        for arch in Arch::ALL {
            let mesh = Topology::mesh(4, 4);
            let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
            // Node 5 = (1,1); destination node 7 = (3,1): East.
            let key = single_flit_packet(&mut packets, 5, 7);
            let mut r = Router::new(NodeId(5), arch, mesh, 4);
            r.input_mut(Port::West.id()).receive(word_for(key));

            // All four designs are single-cycle routers (§3.2): the flit
            // leaves on its arrival cycle, regardless of architecture.
            let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
            r.tick(&mut ctx);
            assert_eq!(sends.len(), 1, "{arch}: single-cycle traversal");
            let s = &sends[0];
            assert_eq!(s.out, Port::East.id(), "{arch}: wrong route");
            assert_eq!(s.word.sole_key(), Some(key.pack()), "{arch}: wrong word");
            // The freed slot's credit returned.
            assert_eq!(credits.len(), 1);
            assert_eq!(credits[0].input, Port::West.id());
        }
    }

    #[test]
    fn credit_exhaustion_blocks_output() {
        for arch in Arch::ALL {
            let mesh = Topology::mesh(4, 4);
            let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
            let key = single_flit_packet(&mut packets, 5, 7);
            let mut r = Router::new(NodeId(5), arch, mesh, 4);
            r.output_mut(Port::East.id()).credits = 0;
            r.input_mut(Port::West.id()).receive(word_for(key));
            for _ in 0..4 {
                let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
                r.tick(&mut ctx);
            }
            assert!(sends.is_empty(), "{arch}: sent without credit");
            assert_eq!(r.input(Port::West.id()).occupancy(), 1);
        }
    }

    #[test]
    fn nox_collision_produces_encoded_word_and_frees_winner() {
        let mesh = Topology::mesh(4, 4);
        let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
        let k1 = single_flit_packet(&mut packets, 5, 7);
        let k2 = single_flit_packet(&mut packets, 5, 7);
        let mut r = Router::new(NodeId(5), Arch::Nox, mesh, 4);
        r.input_mut(Port::West.id()).receive(word_for(k1));
        r.input_mut(Port::North.id()).receive(word_for(k2));

        let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
        r.tick(&mut ctx);

        assert_eq!(sends.len(), 1);
        let w = &sends[0].word;
        assert!(w.is_encoded(), "collision must drive an encoded word");
        assert_eq!(w.keys().len(), 2);
        assert_eq!(counters.encoded_transfers, 1);
        assert_eq!(counters.link_wasted, 0, "NoX collisions are productive");
        // Exactly one input freed (the winner), one remains.
        assert_eq!(
            r.input(Port::West.id()).occupancy() + r.input(Port::North.id()).occupancy(),
            1
        );

        // Next cycle the loser goes out plain.
        sends.clear();
        let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
        r.tick(&mut ctx);
        assert_eq!(sends.len(), 1);
        assert!(sends[0].word.is_plain());
    }

    #[test]
    fn spec_collision_wastes_link_cycle() {
        for arch in [Arch::SpecFast, Arch::SpecAccurate] {
            let mesh = Topology::mesh(4, 4);
            let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
            let k1 = single_flit_packet(&mut packets, 5, 7);
            let k2 = single_flit_packet(&mut packets, 5, 7);
            let mut r = Router::new(NodeId(5), arch, mesh, 4);
            r.input_mut(Port::West.id()).receive(word_for(k1));
            r.input_mut(Port::North.id()).receive(word_for(k2));

            let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
            r.tick(&mut ctx);
            assert!(sends.is_empty(), "{arch}: collision cycle must not deliver");
            assert_eq!(counters.link_wasted, 1);
            assert_eq!(counters.collisions, 1);

            // Both flits still buffered.
            assert_eq!(
                r.input(Port::West.id()).occupancy() + r.input(Port::North.id()).occupancy(),
                2
            );
        }
    }

    #[test]
    fn nonspec_output_stays_busy_with_backlog() {
        let mesh = Topology::mesh(4, 4);
        let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
        let mut r = Router::new(NodeId(5), Arch::NonSpec, mesh, 4);
        for _ in 0..4 {
            let k = single_flit_packet(&mut packets, 5, 7);
            r.input_mut(Port::West.id()).receive(word_for(k));
        }
        let mut delivered = 0;
        for _ in 0..4 {
            let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
            r.tick(&mut ctx);
            delivered += sends.len();
            sends.clear();
        }
        assert_eq!(delivered, 4, "output busy every cycle with a backlog");
    }

    #[test]
    fn multiflit_packet_streams_contiguously_everywhere() {
        for arch in Arch::ALL {
            let mesh = Topology::mesh(4, 4);
            let (mut packets, mut counters, mut sends, mut credits) = ctx_parts();
            let id = packets.push(PacketMeta {
                src: NodeId(5),
                dest: NodeId(7),
                len: 3,
                created_cycle: 0,
                measured: false,
            });
            let k_single = single_flit_packet(&mut packets, 5, 7);
            let mut r = Router::new(NodeId(5), arch, mesh, 4);
            for seq in 0..3 {
                r.input_mut(Port::West.id())
                    .receive(word_for(FlitKey { packet: id, seq }));
            }
            // A competing single-flit on another input.
            r.input_mut(Port::North.id()).receive(word_for(k_single));

            let mut order = Vec::new();
            for _ in 0..12 {
                let mut ctx = TickCtx::new(&packets, &mut counters, &mut sends, &mut credits);
                r.tick(&mut ctx);
                for s in sends.drain(..) {
                    for k in s.word.keys() {
                        order.push(FlitKey::unpack(*k));
                    }
                }
            }
            assert_eq!(order.len(), 4, "{arch}: lost flits");
            // The three multi-flit flits must appear contiguously.
            let pos: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, k)| k.packet == id)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(pos.len(), 3);
            assert!(
                pos[2] - pos[0] == 2,
                "{arch}: multi-flit packet interleaved: {order:?}"
            );
        }
    }
}
