//! Log-bucketed latency histogram with percentile queries.
//!
//! Mean latency (Figures 8 and 10) hides the tails that bursty
//! self-similar traffic creates (§5.1). [`LogHistogram`] records samples
//! into logarithmically spaced buckets — constant memory, O(1) insert —
//! and answers percentile queries with bounded relative error, so sweeps
//! can report p95/p99 alongside the mean without storing per-packet data.

/// A histogram over positive samples with logarithmically spaced buckets.
///
/// Buckets are spaced by a fixed growth ratio; a percentile query returns
/// the geometric centre of the bucket containing it, giving a relative
/// error bounded by half the ratio. The default configuration covers
/// 0.1 ns .. ~100 us at 5% resolution in under 300 buckets.
///
/// # Example
///
/// ```
/// use nox_sim::histogram::LogHistogram;
///
/// let mut h = LogHistogram::default_latency();
/// for i in 1..=100 {
///     h.record(i as f64);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0);
/// assert!((45.0..56.0).contains(&p50), "p50 = {p50}");
/// let p99 = h.percentile(99.0);
/// assert!((93.0..106.0).contains(&p99), "p99 = {p99}");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    min_value: f64,
    ratio: f64,
    log_ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min_value, min_value * ratio^buckets)`
    /// with buckets spaced by `ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `min_value <= 0`, `ratio <= 1`, or `buckets == 0`.
    pub fn new(min_value: f64, ratio: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(ratio > 1.0, "bucket ratio must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        LogHistogram {
            min_value,
            ratio,
            log_ratio: ratio.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// The default configuration for packet latencies in nanoseconds:
    /// 0.1 ns to ~0.1 ms at ~5% relative resolution.
    pub fn default_latency() -> Self {
        // 0.1 * 1.05^n >= 1e5  =>  n ~= 284.
        LogHistogram::new(0.1, 1.05, 290)
    }

    /// Records one sample. Samples below the minimum are counted in an
    /// explicit underflow bucket; samples at or beyond the top edge are
    /// counted in an explicit overflow bucket, so out-of-range mass is
    /// auditable rather than silently folded into the extreme buckets.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        // NaN and sub-minimum samples both land in the underflow bucket.
        if x.partial_cmp(&self.min_value) != Some(std::cmp::Ordering::Greater)
            && x != self.min_value
        {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.min_value).ln() / self.log_ratio) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples that fell below the minimum value (plus NaNs).
    pub fn underflow_count(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or beyond the histogram's top edge
    /// (`min_value * ratio^buckets`).
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// The histogram's top edge: samples at or above this value are
    /// counted as overflow.
    pub fn max_value(&self) -> f64 {
        self.min_value * self.ratio.powf(self.counts.len() as f64)
    }

    /// The value at the given percentile (0 < p <= 100): the geometric
    /// centre of the bucket holding the percentile sample.
    ///
    /// Returns `NaN` — never panics, never a fabricated value — when the
    /// query is unanswerable: an empty histogram has no percentiles, and
    /// a `NaN` or out-of-range `p` is not a percentile. `NaN` serializes
    /// as `null` in the analysis JSON writer, so artifacts distinguish
    /// "no data" from a measured 0.
    pub fn percentile(&self, p: f64) -> f64 {
        if !(p > 0.0 && p <= 100.0) {
            // Catches NaN too: every comparison with NaN is false.
            return f64::NAN;
        }
        if self.total == 0 {
            return f64::NAN;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Geometric centre of bucket i.
                return self.min_value * self.ratio.powf(i as f64 + 0.5);
            }
        }
        // The remaining mass is in the explicit overflow bucket: report the
        // top edge (the tightest lower bound the histogram can give).
        self.max_value()
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.min_value, other.min_value, "mismatched histograms");
        assert_eq!(self.ratio, other.ratio, "mismatched histograms");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "mismatched histograms"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::default_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LogHistogram::default_latency();
        for i in 1..=1000u32 {
            h.record(i as f64 * 0.37);
        }
        let ps: Vec<f64> = [10.0, 50.0, 90.0, 99.0, 100.0]
            .iter()
            .map(|&p| h.percentile(p))
            .collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{ps:?}");
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LogHistogram::new(1.0, 1.05, 300);
        for _ in 0..100 {
            h.record(123.0);
        }
        let p50 = h.percentile(50.0);
        assert!((p50 / 123.0 - 1.0).abs() < 0.05, "p50 = {p50}");
    }

    #[test]
    fn underflow_and_overflow_are_absorbed() {
        let mut h = LogHistogram::new(1.0, 2.0, 4); // covers 1..16
        h.record(0.01); // underflow
        h.record(1e9); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.underflow_count(), 1);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.percentile(25.0), 1.0, "underflow clamps to min");
        assert_eq!(h.percentile(100.0), h.max_value(), "overflow reports edge");
    }

    #[test]
    fn overflow_bucket_is_explicit() {
        let mut h = LogHistogram::new(1.0, 2.0, 4); // buckets cover [1, 16)
        h.record(15.9); // top in-range bucket
        h.record(16.0); // exactly the top edge -> overflow
        h.record(1e6); // far beyond -> overflow
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.underflow_count(), 0);
        assert_eq!(h.max_value(), 16.0);
        // The in-range sample sits in bucket [8, 16); overflow mass answers
        // the tail percentiles with the top edge.
        assert!(h.percentile(33.0) < 16.0);
        assert_eq!(h.percentile(100.0), 16.0);
    }

    #[test]
    fn empty_histogram_percentiles_are_nan_everywhere() {
        let h = LogHistogram::default_latency();
        for p in [0.1, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert!(h.percentile(p).is_nan(), "p{p} of empty must be NaN");
        }
        assert_eq!(h.underflow_count(), 0);
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn merge_carries_under_and_overflow() {
        let mut a = LogHistogram::new(1.0, 2.0, 4);
        let mut b = LogHistogram::new(1.0, 2.0, 4);
        a.record(0.5); // underflow
        a.record(3.0);
        b.record(100.0); // overflow
        b.record(0.2); // underflow
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.underflow_count(), 2);
        assert_eq!(a.overflow_count(), 1);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = LogHistogram::default_latency();
        let mut b = LogHistogram::default_latency();
        let mut all = LogHistogram::default_latency();
        for i in 1..=500u32 {
            let x = (i as f64).sqrt() * 3.0;
            all.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for p in [25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::default_latency();
        assert!(h.percentile(99.0).is_nan());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn invalid_percentile_arguments_return_nan() {
        let mut h = LogHistogram::default_latency();
        h.record(5.0);
        for bad in [0.0, -1.0, 100.5, 1e9, f64::NAN, f64::NEG_INFINITY] {
            assert!(h.percentile(bad).is_nan(), "percentile({bad}) must be NaN");
        }
        // Infinity is also out of (0, 100].
        assert!(h.percentile(f64::INFINITY).is_nan());
        // Valid queries still answer.
        assert!(h.percentile(50.0).is_finite());
        assert!(h.percentile(100.0).is_finite());
    }

    #[test]
    #[should_panic(expected = "mismatched histograms")]
    fn mismatched_merge_rejected() {
        let mut a = LogHistogram::new(1.0, 1.1, 10);
        let b = LogHistogram::new(1.0, 1.2, 10);
        a.merge(&b);
    }

    #[test]
    fn nan_counts_as_underflow() {
        let mut h = LogHistogram::default_latency();
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(100.0), h.percentile(1.0));
    }
}
