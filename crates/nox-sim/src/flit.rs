//! Flits, packets, and link words.
//!
//! The simulator keeps per-flit storage minimal: a flit travelling through
//! the network is a [`Word`] — the XOR-coding wrapper from `nox-core`
//! instantiated with a 64-bit payload and keyed by [`FlitKey`]. All other
//! per-packet information (source, destination, length, timestamps) lives
//! once in the [`PacketTable`] and is recovered from the key via
//! [`PacketTable::flit_info`].
//!
//! Payload bits are a deterministic hash of the flit key, which lets the
//! ejection logic verify — for every flit, in every run — that XOR
//! decoding reproduced the exact original bits.

use crate::topology::NodeId;
use nox_core::Coded;

/// Index of a packet in the [`PacketTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Globally unique identity of one flit: packet id and sequence number,
/// packed into the `u64` key used by [`Coded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlitKey {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet, `0..len`.
    pub seq: u16,
}

impl FlitKey {
    /// Packs the key into the `u64` carried by [`Coded`].
    pub fn pack(self) -> u64 {
        (self.packet.0 << 16) | self.seq as u64
    }

    /// Unpacks a `u64` produced by [`FlitKey::pack`].
    pub fn unpack(raw: u64) -> Self {
        FlitKey {
            packet: PacketId(raw >> 16),
            seq: (raw & 0xFFFF) as u16,
        }
    }

    /// The deterministic payload bits of this flit (for end-to-end data
    /// integrity checks through XOR encode/decode).
    pub fn payload(self) -> u64 {
        // splitmix64 finalizer: cheap, well-distributed, reproducible.
        let mut z = self.pack().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A (possibly encoded) 64-bit link word. Plain words have exactly one
/// constituent flit; encoded words superpose several.
pub type Word = Coded<u64>;

/// Creates the plain link word for one flit.
pub fn word_for(key: FlitKey) -> Word {
    Coded::plain(key.pack(), key.payload())
}

/// Everything a router needs to know about a presented (plain) flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlitInfo {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub seq: u16,
    /// Final destination node.
    pub dest: NodeId,
    /// `true` if the packet has more than one flit.
    pub multiflit: bool,
    /// `true` if this is the packet's last flit.
    pub tail: bool,
}

/// Static description of one packet, created at injection time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketMeta {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Packet length in flits (>= 1).
    pub len: u16,
    /// Creation time (entry into the source queue), in network cycles.
    pub created_cycle: u64,
    /// Whether this packet's latency counts toward measured statistics.
    pub measured: bool,
}

/// The table of all packets in a simulation, indexed by [`PacketId`].
///
/// # Example
///
/// ```
/// use nox_sim::flit::{FlitKey, PacketMeta, PacketTable};
/// use nox_sim::topology::NodeId;
///
/// let mut table = PacketTable::new();
/// let id = table.push(PacketMeta {
///     src: NodeId(0),
///     dest: NodeId(7),
///     len: 9,
///     created_cycle: 0,
///     measured: true,
/// });
/// let info = table.flit_info(FlitKey { packet: id, seq: 8 });
/// assert!(info.tail && info.multiflit);
/// assert_eq!(info.dest, NodeId(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketTable {
    metas: Vec<PacketMeta>,
}

impl PacketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a packet, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `meta.len == 0`.
    pub fn push(&mut self, meta: PacketMeta) -> PacketId {
        assert!(meta.len >= 1, "a packet needs at least one flit");
        let id = PacketId(self.metas.len() as u64);
        self.metas.push(meta);
        id
    }

    /// Number of packets registered.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// `true` if no packets are registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The packet's static metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn meta(&self, id: PacketId) -> &PacketMeta {
        &self.metas[id.0 as usize]
    }

    /// Routing/flow-control information for one flit.
    pub fn flit_info(&self, key: FlitKey) -> FlitInfo {
        let m = self.meta(key.packet);
        FlitInfo {
            packet: key.packet,
            seq: key.seq,
            dest: m.dest,
            multiflit: m.len > 1,
            tail: key.seq + 1 == m.len,
        }
    }

    /// Routing/flow-control information for a *plain* word.
    ///
    /// # Panics
    ///
    /// Panics if the word is encoded or empty — router control logic must
    /// never inspect the fields of a superposed word.
    pub fn word_info(&self, word: &Word) -> FlitInfo {
        let key = word
            .sole_key()
            .expect("control logic peeked at an encoded word");
        self.flit_info(FlitKey::unpack(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_pack_roundtrip() {
        let k = FlitKey {
            packet: PacketId(123_456_789),
            seq: 77,
        };
        assert_eq!(FlitKey::unpack(k.pack()), k);
    }

    #[test]
    fn payload_is_deterministic_and_distinct() {
        let a = FlitKey {
            packet: PacketId(1),
            seq: 0,
        };
        let b = FlitKey {
            packet: PacketId(1),
            seq: 1,
        };
        assert_eq!(a.payload(), a.payload());
        assert_ne!(a.payload(), b.payload());
    }

    #[test]
    fn word_for_is_plain_with_matching_key() {
        let k = FlitKey {
            packet: PacketId(9),
            seq: 3,
        };
        let w = word_for(k);
        assert!(w.is_plain());
        assert_eq!(w.sole_key(), Some(k.pack()));
        assert_eq!(*w.payload(), k.payload());
    }

    #[test]
    fn flit_info_single_flit_packet() {
        let mut t = PacketTable::new();
        let id = t.push(PacketMeta {
            src: NodeId(1),
            dest: NodeId(2),
            len: 1,
            created_cycle: 5,
            measured: false,
        });
        let info = t.flit_info(FlitKey { packet: id, seq: 0 });
        assert!(info.tail);
        assert!(!info.multiflit);
    }

    #[test]
    fn flit_info_multiflit_head_body_tail() {
        let mut t = PacketTable::new();
        let id = t.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(3),
            len: 3,
            created_cycle: 0,
            measured: true,
        });
        let head = t.flit_info(FlitKey { packet: id, seq: 0 });
        let body = t.flit_info(FlitKey { packet: id, seq: 1 });
        let tail = t.flit_info(FlitKey { packet: id, seq: 2 });
        assert!(head.multiflit && !head.tail);
        assert!(body.multiflit && !body.tail);
        assert!(tail.multiflit && tail.tail);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let mut t = PacketTable::new();
        t.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(0),
            len: 0,
            created_cycle: 0,
            measured: false,
        });
    }

    #[test]
    #[should_panic(expected = "encoded word")]
    fn word_info_rejects_encoded_words() {
        let mut t = PacketTable::new();
        let id = t.push(PacketMeta {
            src: NodeId(0),
            dest: NodeId(1),
            len: 1,
            created_cycle: 0,
            measured: false,
        });
        let id2 = t.push(PacketMeta {
            src: NodeId(2),
            dest: NodeId(1),
            len: 1,
            created_cycle: 0,
            measured: false,
        });
        let w = word_for(FlitKey { packet: id, seq: 0 }).xor(&word_for(FlitKey {
            packet: id2,
            seq: 0,
        }));
        let _ = t.word_info(&w);
    }
}
