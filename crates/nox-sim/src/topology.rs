//! Mesh topology: nodes, coordinates, ports, and link wiring.
//!
//! The paper evaluates an 8x8 mesh of five-port routers (Table 1). Ports
//! are numbered Local, North, East, South, West; the same numbering is
//! used for input and output ports. Output port `P` of a node connects to
//! input port `opposite(P)` of the neighbouring node in direction `P`.

use std::fmt;

use nox_core::PortId;

/// Identifier of a mesh node, `y * width + x`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the node index as a `usize` for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Grid coordinates of a node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u8,
    /// Row, `0..height`.
    pub y: u8,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The five router ports of a mesh router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// Injection/ejection port to the local tile.
    Local,
    /// Toward decreasing `y`.
    North,
    /// Toward increasing `x`.
    East,
    /// Toward increasing `y`.
    South,
    /// Toward decreasing `x`.
    West,
}

/// Number of ports on a mesh router.
pub const PORTS: u8 = 5;

impl Port {
    /// All ports, in index order.
    pub const ALL: [Port; PORTS as usize] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    /// The dense index used for arrays and [`PortId`]s.
    pub fn id(self) -> PortId {
        PortId(match self {
            Port::Local => 0,
            Port::North => 1,
            Port::East => 2,
            Port::South => 3,
            Port::West => 4,
        })
    }

    /// Inverse of [`Port::id`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `0..5`.
    pub fn from_id(id: PortId) -> Port {
        Port::ALL[id.index()]
    }

    /// The port a link from this direction arrives on at the neighbour.
    pub fn opposite(self) -> Port {
        match self {
            Port::Local => Port::Local,
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::Local => "L",
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
        };
        f.write_str(s)
    }
}

/// A `width x height` mesh.
///
/// # Example
///
/// ```
/// use nox_sim::topology::{Mesh, NodeId, Port};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.nodes(), 64);
/// let c = mesh.coord(NodeId(9));
/// assert_eq!((c.x, c.y), (1, 1));
/// assert_eq!(mesh.neighbor(NodeId(9), Port::East), Some(NodeId(10)));
/// assert_eq!(mesh.neighbor(NodeId(7), Port::East), None); // mesh edge
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u8,
    height: u8,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u8 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u8 {
        self.height
    }

    /// Total number of nodes.
    pub fn nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn coord(self, n: NodeId) -> Coord {
        assert!(n.index() < self.nodes(), "node {n} outside mesh");
        Coord {
            x: (n.0 % self.width as u16) as u8,
            y: (n.0 / self.width as u16) as u8,
        }
    }

    /// The node at given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node(self, c: Coord) -> NodeId {
        assert!(c.x < self.width && c.y < self.height, "{c} outside mesh");
        NodeId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// The neighbour of `n` in direction `dir`, or `None` at a mesh edge
    /// (or for [`Port::Local`]).
    pub fn neighbor(self, n: NodeId, dir: Port) -> Option<NodeId> {
        let c = self.coord(n);
        let (x, y) = match dir {
            Port::Local => return None,
            Port::North => (c.x as i16, c.y as i16 - 1),
            Port::East => (c.x as i16 + 1, c.y as i16),
            Port::South => (c.x as i16, c.y as i16 + 1),
            Port::West => (c.x as i16 - 1, c.y as i16),
        };
        if x < 0 || y < 0 || x >= self.width as i16 || y >= self.height as i16 {
            None
        } else {
            Some(self.node(Coord {
                x: x as u8,
                y: y as u8,
            }))
        }
    }

    /// Iterates over all node ids.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_node_roundtrip() {
        let m = Mesh::new(8, 8);
        for n in m.iter() {
            assert_eq!(m.node(m.coord(n)), n);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = Mesh::new(5, 3);
        for n in m.iter() {
            for dir in [Port::North, Port::East, Port::South, Port::West] {
                if let Some(nb) = m.neighbor(n, dir) {
                    assert_eq!(m.neighbor(nb, dir.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn edges_have_no_neighbors() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.neighbor(NodeId(0), Port::North), None);
        assert_eq!(m.neighbor(NodeId(0), Port::West), None);
        assert_eq!(m.neighbor(NodeId(15), Port::South), None);
        assert_eq!(m.neighbor(NodeId(15), Port::East), None);
    }

    #[test]
    fn local_has_no_neighbor() {
        let m = Mesh::new(2, 2);
        assert_eq!(m.neighbor(NodeId(0), Port::Local), None);
    }

    #[test]
    fn port_id_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_id(p.id()), p);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
        }
    }

    #[test]
    fn hop_distance() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.hops(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.hops(NodeId(10), NodeId(10)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_range_node_rejected() {
        let m = Mesh::new(2, 2);
        let _ = m.coord(NodeId(4));
    }
}

/// The topology family of a network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// One core per router, five router ports (the paper's baseline).
    Mesh,
    /// Concentrated mesh: `concentration` cores share each router, giving
    /// higher-radix routers and longer channels — the paper's future-work
    /// direction (§8).
    CMesh {
        /// Cores per router (2..=4).
        concentration: u8,
    },
    /// Unidirectional-pair ring: `n` five-port routers in a cycle, with the
    /// East/West links wrapping around. Shortest-path routing on this
    /// topology is *not* deadlock-free (the wraparound closes a channel
    /// dependency cycle) — it exists as the concrete unsafe instance for
    /// the `nox-statics` channel-dependency analyzer and as the seed of the
    /// ROADMAP's torus/ring expansion.
    Ring,
}

/// A router-grid topology with per-core endpoints.
///
/// Routers form a `width x height` grid; each router serves
/// [`n_locals`](Topology::n_locals) cores on dedicated local ports (ports
/// `0..n_locals`) and four direction ports after them (N, E, S, W). For
/// [`TopologyKind::Mesh`] this reduces exactly to the paper's five-port
/// router; for a concentrated mesh the router radix grows and inter-tile
/// channels lengthen by `sqrt(concentration)` (same die, fewer routers).
///
/// Core `c` attaches to router `c / n_locals` on local port `c % n_locals`.
///
/// # Example
///
/// ```
/// use nox_sim::topology::{Topology, NodeId};
///
/// // 64 cores either way:
/// let mesh = Topology::mesh(8, 8);
/// assert_eq!((mesh.routers(), mesh.cores(), mesh.ports()), (64, 64, 5));
///
/// let cmesh = Topology::cmesh(4, 4, 4);
/// assert_eq!((cmesh.routers(), cmesh.cores(), cmesh.ports()), (16, 64, 8));
/// assert_eq!(cmesh.router_of(NodeId(63)), NodeId(15));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    kind: TopologyKind,
    grid: Mesh,
}

impl Topology {
    /// The paper's topology: one core per five-port router.
    pub fn mesh(width: u8, height: u8) -> Self {
        Topology {
            kind: TopologyKind::Mesh,
            grid: Mesh::new(width, height),
        }
    }

    /// A concentrated mesh with `concentration` cores per router.
    ///
    /// # Panics
    ///
    /// Panics if `concentration` is not in `2..=4` (use
    /// [`Topology::mesh`] for 1).
    pub fn cmesh(width: u8, height: u8, concentration: u8) -> Self {
        assert!(
            (2..=4).contains(&concentration),
            "concentration must be 2..=4, got {concentration}"
        );
        Topology {
            kind: TopologyKind::CMesh { concentration },
            grid: Mesh::new(width, height),
        }
    }

    /// A ring of `n` five-port routers, one core each, with wraparound
    /// East/West links (the North/South ports stay unwired).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`: a 2-ring would wire two parallel links between
    /// the same router pair, which the port-indexed link model cannot
    /// represent.
    pub fn ring(n: u8) -> Self {
        assert!(n >= 3, "ring needs at least 3 routers, got {n}");
        Topology {
            kind: TopologyKind::Ring,
            grid: Mesh::new(n, 1),
        }
    }

    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The underlying router grid.
    pub fn grid(&self) -> Mesh {
        self.grid
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.grid.nodes()
    }

    /// Cores per router (local ports).
    pub fn n_locals(&self) -> u8 {
        match self.kind {
            TopologyKind::Mesh | TopologyKind::Ring => 1,
            TopologyKind::CMesh { concentration } => concentration,
        }
    }

    /// Number of cores (network endpoints).
    pub fn cores(&self) -> usize {
        self.routers() * self.n_locals() as usize
    }

    /// Router radix: local ports plus the four directions.
    pub fn ports(&self) -> u8 {
        self.n_locals() + 4
    }

    /// `true` if `port` is a local (core-facing) port.
    pub fn is_local(&self, port: PortId) -> bool {
        port.0 < self.n_locals()
    }

    /// The router a core attaches to.
    pub fn router_of(&self, core: NodeId) -> NodeId {
        debug_assert!(core.index() < self.cores(), "core {core} out of range");
        NodeId(core.0 / self.n_locals() as u16)
    }

    /// The local port a core attaches to.
    pub fn local_port(&self, core: NodeId) -> PortId {
        PortId((core.0 % self.n_locals() as u16) as u8)
    }

    /// The core attached to a router's local port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a local port.
    pub fn core_at(&self, router: NodeId, port: PortId) -> NodeId {
        assert!(self.is_local(port), "{port} is not a local port");
        NodeId(router.0 * self.n_locals() as u16 + port.0 as u16)
    }

    /// The port index of a mesh direction.
    pub fn direction_port(&self, dir: Port) -> PortId {
        let off = match dir {
            Port::Local => panic!("use local_port for core-facing ports"),
            Port::North => 0,
            Port::East => 1,
            Port::South => 2,
            Port::West => 3,
        };
        PortId(self.n_locals() + off)
    }

    /// The direction of a non-local port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is a local port or out of range.
    pub fn port_direction(&self, port: PortId) -> Port {
        assert!(!self.is_local(port), "{port} is a local port");
        match port.0 - self.n_locals() {
            0 => Port::North,
            1 => Port::East,
            2 => Port::South,
            3 => Port::West,
            _ => panic!("{port} out of range"),
        }
    }

    /// The neighbouring router in direction `dir`, or `None` where no link
    /// exists. Unlike [`Mesh::neighbor`] this is wraparound-aware: on a
    /// ring, East from the last router lands on router 0.
    pub fn neighbor(&self, router: NodeId, dir: Port) -> Option<NodeId> {
        match self.kind {
            TopologyKind::Ring => {
                let n = self.grid.width() as u16;
                debug_assert!(router.0 < n, "router {router} outside ring");
                match dir {
                    Port::East => Some(NodeId((router.0 + 1) % n)),
                    Port::West => Some(NodeId((router.0 + n - 1) % n)),
                    _ => None,
                }
            }
            TopologyKind::Mesh | TopologyKind::CMesh { .. } => self.grid.neighbor(router, dir),
        }
    }

    /// Where a router output port's link lands: `(router, input port)` of
    /// the neighbour, or `None` for local ports and unwired directions.
    pub fn link_dest(&self, router: NodeId, out: PortId) -> Option<(NodeId, PortId)> {
        if self.is_local(out) {
            return None;
        }
        let dir = self.port_direction(out);
        let nb = self.neighbor(router, dir)?;
        Some((nb, self.direction_port(dir.opposite())))
    }

    /// The deterministic route: the output port a flit at `router` takes
    /// toward `dest_core`. XY dimension order on grids, shortest path
    /// (ties broken East) on rings.
    pub fn route(&self, router: NodeId, dest_core: NodeId) -> PortId {
        let dest_router = self.router_of(dest_core);
        if dest_router == router {
            return self.local_port(dest_core);
        }
        let dir = match self.kind {
            TopologyKind::Ring => {
                crate::routing::route_ring(self.grid.width(), router, dest_router)
            }
            TopologyKind::Mesh | TopologyKind::CMesh { .. } => {
                crate::routing::route_xy(self.grid, router, dest_router)
            }
        };
        self.direction_port(dir)
    }

    /// Inter-router channel length in millimetres: the paper's 2 mm tiles,
    /// scaled by `sqrt(concentration)` for concentrated meshes (same die
    /// area, fewer and farther routers).
    pub fn channel_mm(&self) -> f64 {
        2.0 * (self.n_locals() as f64).sqrt()
    }

    /// Hop distance between two *routers* along the routing function's
    /// path: Manhattan on grids, shortest way around on rings.
    pub fn router_hops(&self, a: NodeId, b: NodeId) -> u32 {
        match self.kind {
            TopologyKind::Ring => {
                let n = self.grid.width() as u16;
                let east = (b.0 + n - a.0) % n;
                east.min(n - east) as u32
            }
            TopologyKind::Mesh | TopologyKind::CMesh { .. } => self.grid.hops(a, b),
        }
    }

    /// Router-to-router hop distance between two cores' routers.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.router_hops(self.router_of(a), self.router_of(b))
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;

    #[test]
    fn mesh_topology_matches_legacy_layout() {
        let t = Topology::mesh(8, 8);
        assert_eq!(t.ports(), PORTS);
        assert_eq!(t.n_locals(), 1);
        assert!(t.is_local(PortId(0)));
        assert_eq!(t.direction_port(Port::North), Port::North.id());
        assert_eq!(t.direction_port(Port::West), Port::West.id());
        assert_eq!(t.router_of(NodeId(17)), NodeId(17));
        assert_eq!(t.local_port(NodeId(17)), PortId(0));
    }

    #[test]
    fn cmesh_core_router_mapping_roundtrips() {
        let t = Topology::cmesh(4, 4, 4);
        for core in 0..t.cores() as u16 {
            let r = t.router_of(NodeId(core));
            let p = t.local_port(NodeId(core));
            assert_eq!(t.core_at(r, p), NodeId(core));
        }
    }

    #[test]
    fn cmesh_link_wiring_is_symmetric() {
        let t = Topology::cmesh(4, 4, 2);
        for r in t.grid().iter() {
            for port in 0..t.ports() {
                if let Some((nb, inp)) = t.link_dest(r, PortId(port)) {
                    // The neighbour's opposite output lands back here.
                    let dir_back = t.port_direction(inp);
                    let (back, back_in) = t.link_dest(nb, t.direction_port(dir_back)).unwrap();
                    assert_eq!(back, r);
                    assert_eq!(back_in, PortId(port));
                }
            }
        }
    }

    #[test]
    fn route_to_local_core_uses_its_port() {
        let t = Topology::cmesh(4, 4, 4);
        // Core 7 lives at router 1, local port 3.
        assert_eq!(t.route(NodeId(1), NodeId(7)), PortId(3));
        // From another router it heads toward router 1 first.
        let p = t.route(NodeId(3), NodeId(7));
        assert!(!t.is_local(p));
    }

    #[test]
    fn cmesh_routes_follow_xy() {
        let t = Topology::cmesh(4, 4, 4);
        // Core 0 (router 0) to core 63 (router 15 = (3,3)): East first.
        assert_eq!(t.port_direction(t.route(NodeId(0), NodeId(63))), Port::East);
    }

    #[test]
    fn channel_lengths_scale_with_concentration() {
        assert_eq!(Topology::mesh(8, 8).channel_mm(), 2.0);
        assert_eq!(Topology::cmesh(4, 4, 4).channel_mm(), 4.0);
    }

    #[test]
    fn local_ports_have_no_link() {
        let t = Topology::cmesh(4, 4, 3);
        for p in 0..3 {
            assert!(t.link_dest(NodeId(0), PortId(p)).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "concentration must be")]
    fn oversized_concentration_rejected() {
        let _ = Topology::cmesh(4, 4, 9);
    }

    #[test]
    fn ring_wraps_east_and_west() {
        let t = Topology::ring(8);
        assert_eq!(t.neighbor(NodeId(7), Port::East), Some(NodeId(0)));
        assert_eq!(t.neighbor(NodeId(0), Port::West), Some(NodeId(7)));
        assert_eq!(t.neighbor(NodeId(3), Port::North), None);
        assert_eq!(t.neighbor(NodeId(3), Port::South), None);
    }

    #[test]
    fn ring_link_wiring_is_symmetric() {
        let t = Topology::ring(5);
        for r in t.grid().iter() {
            for port in 0..t.ports() {
                if let Some((nb, inp)) = t.link_dest(r, PortId(port)) {
                    let dir_back = t.port_direction(inp);
                    let (back, back_in) = t.link_dest(nb, t.direction_port(dir_back)).unwrap();
                    assert_eq!(back, r);
                    assert_eq!(back_in, PortId(port));
                }
            }
        }
    }

    #[test]
    fn ring_routes_shortest_way_around() {
        let t = Topology::ring(8);
        // 1 hop East beats 7 hops West.
        assert_eq!(t.port_direction(t.route(NodeId(7), NodeId(0))), Port::East);
        // 2 hops West beats 6 hops East.
        assert_eq!(t.port_direction(t.route(NodeId(1), NodeId(7))), Port::West);
        // Antipodal tie breaks East.
        assert_eq!(t.port_direction(t.route(NodeId(2), NodeId(6))), Port::East);
        assert_eq!(t.router_hops(NodeId(7), NodeId(1)), 2);
        assert_eq!(t.hops(NodeId(2), NodeId(6)), 4);
    }

    #[test]
    fn ring_routes_terminate_at_destination() {
        let t = Topology::ring(7);
        for s in 0..7u16 {
            for d in 0..7u16 {
                let mut cur = NodeId(s);
                let mut steps = 0;
                while cur != NodeId(d) {
                    let out = t.route(cur, NodeId(d));
                    cur = t.link_dest(cur, out).unwrap().0;
                    steps += 1;
                    assert!(steps <= 7, "route {s}->{d} did not terminate");
                }
                assert_eq!(steps, t.router_hops(NodeId(s), NodeId(d)));
                assert!(t.is_local(t.route(cur, NodeId(d))));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 routers")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2);
    }
}
