//! Failure injection: the simulator is self-checking, and these tests
//! prove the checks actually fire. Every protocol violation a router bug
//! could introduce — buffer overflow, credit overflow, corrupted payload
//! bits, misrouted flits, undecodable words — must abort the simulation
//! loudly instead of skewing results silently.

use nox_core::Coded;
use nox_sim::config::Arch;
use nox_sim::flit::{word_for, FlitKey, PacketMeta, PacketTable};
use nox_sim::router::Router;
use nox_sim::sink::Sink;
use nox_sim::stats::Counters;
use nox_sim::topology::{NodeId, Port, Topology};

fn one_packet(table: &mut PacketTable, dest: u16) -> FlitKey {
    let id = table.push(PacketMeta {
        src: NodeId(0),
        dest: NodeId(dest),
        len: 1,
        created_cycle: 0,
        measured: false,
    });
    FlitKey { packet: id, seq: 0 }
}

#[test]
#[should_panic(expected = "buffer overflow")]
fn input_buffer_overflow_is_caught() {
    let mut table = PacketTable::new();
    let mut r = Router::new(NodeId(0), Arch::Nox, Topology::mesh(2, 2), 2);
    for _ in 0..3 {
        let k = one_packet(&mut table, 3);
        r.input_mut(Port::West.id()).receive(word_for(k));
    }
}

#[test]
#[should_panic(expected = "credit overflow")]
fn credit_overflow_is_caught() {
    let mut r = Router::new(NodeId(0), Arch::Nox, Topology::mesh(2, 2), 4);
    // Returning a credit to a full counter means a slot was double-freed.
    r.output_mut(Port::East.id()).return_credit(4);
}

#[test]
#[should_panic(expected = "payload corrupted")]
fn corrupted_payload_bits_are_caught() {
    let mut table = PacketTable::new();
    let mut c = Counters::new();
    let key = one_packet(&mut table, 3);
    // A word whose key says "flit key" but whose bits disagree — the kind
    // of corruption a broken XOR datapath would produce.
    let forged = Coded::plain(key.pack(), key.payload() ^ 0xDEAD);
    let mut sink = Sink::new(NodeId(3), 4);
    sink.receive(forged);
    let _ = sink.drain(&table, &mut c);
}

#[test]
#[should_panic(expected = "wrong node")]
fn misrouted_flit_is_caught() {
    let mut table = PacketTable::new();
    let mut c = Counters::new();
    let key = one_packet(&mut table, 3);
    let mut sink = Sink::new(NodeId(2), 4); // not the destination
    sink.receive(word_for(key));
    let _ = sink.drain(&table, &mut c);
}

#[test]
#[should_panic(expected = "undecodable word at sink")]
fn dangling_encoded_word_is_caught() {
    // An encoded word whose chain never completes cannot be consumed —
    // presenting it would deliver garbage, so the sink asserts.
    let mut table = PacketTable::new();
    let mut c = Counters::new();
    let a = one_packet(&mut table, 3);
    let b = one_packet(&mut table, 3);
    let x = one_packet(&mut table, 3);
    let mut sink = Sink::new(NodeId(3), 4);
    // enc{a,b} followed by an unrelated plain word x: decode presents
    // {a,b}^{x} — a three-key word, which must be rejected.
    sink.receive(word_for(a).xor(&word_for(b)));
    sink.receive(word_for(x));
    let _ = sink.drain(&table, &mut c); // latch
    let _ = sink.drain(&table, &mut c); // must panic
}

#[test]
#[should_panic(expected = "encoded word")]
fn routing_on_encoded_word_is_caught() {
    // Control logic must never read destination fields out of a
    // superposed word.
    let mut table = PacketTable::new();
    let a = one_packet(&mut table, 1);
    let b = one_packet(&mut table, 2);
    let enc = word_for(a).xor(&word_for(b));
    let _ = table.word_info(&enc);
}

#[test]
fn checks_do_not_fire_on_legal_traffic() {
    // Sanity guard for the suite above: the same operations in their
    // legal forms pass.
    let mut table = PacketTable::new();
    let mut c = Counters::new();
    let key = one_packet(&mut table, 3);
    let mut sink = Sink::new(NodeId(3), 4);
    sink.receive(word_for(key));
    let out = sink.drain(&table, &mut c);
    assert!(out.consumed.is_some());
}
