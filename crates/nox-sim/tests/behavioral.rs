//! Deterministic network-level micro-scenarios: two or three packets with
//! hand-computable timing, checked cycle-exactly against the architecture
//! semantics. These are the network-scale companions to the Figure 2/3/7
//! golden traces in `nox-core`.

use nox_sim::config::{Arch, NetConfig};
use nox_sim::network::Network;
use nox_sim::topology::NodeId;
use nox_sim::trace::{PacketEvent, Trace};

fn net(arch: Arch, trace: &Trace) -> Network {
    let mut n = Network::new(NetConfig::small(arch), trace, (0.0, f64::MAX));
    n.enable_eject_log();
    n
}

fn eject_cycles(net: &Network) -> Vec<(u64, u64)> {
    net.eject_log()
        .unwrap()
        .iter()
        .map(|&(p, c)| (p.0, c))
        .collect()
}

/// A single packet 0 -> 15 on the 4x4 mesh: 6 router hops. Single-cycle
/// routers: inject cycle 1 (source runs at cycle 0, flit in FIFO at 0,
/// presented at... measured end-to-end pipeline is identical for all
/// three single-cycle designs, and exactly computable.
#[test]
fn zero_load_cycle_counts_are_exact() {
    let mut t = Trace::new();
    t.push(PacketEvent {
        time_ns: 0.0,
        src: NodeId(0),
        dest: NodeId(15),
        len: 1,
    });
    let mut cycles_by_arch = Vec::new();
    for arch in Arch::ALL {
        let mut n = net(arch, &t);
        assert!(n.run_to_quiescence(100));
        let (_, eject) = eject_cycles(&n)[0];
        cycles_by_arch.push((arch, eject));
    }
    // All four designs are single-cycle routers: identical cycle counts.
    let first = cycles_by_arch[0].1;
    for (arch, c) in &cycles_by_arch {
        assert_eq!(*c, first, "{arch} took {c} cycles vs {first}");
    }
    // Inject during cycle 0; 6 router hops land the flit in the sink FIFO
    // at cycle 7; the sink consumes it that cycle (recorded as cycle 8).
    assert_eq!(first, 8, "6-hop zero-load pipeline length changed");
}

/// Two single-flit packets colliding at their merge router: NoX encodes
/// (one productive link word carrying both), the speculative routers burn
/// a cycle, and everyone delivers both packets.
#[test]
fn merge_collision_microtiming() {
    // Under XY routing, 0 -> 1 arrives at router 1 from the West and
    // 2 -> 1 from the East on the same cycle: they collide at router 1's
    // ejection (local) output.
    let mut t = Trace::new();
    t.push(PacketEvent {
        time_ns: 0.0,
        src: NodeId(0),
        dest: NodeId(1),
        len: 1,
    });
    t.push(PacketEvent {
        time_ns: 0.0,
        src: NodeId(2),
        dest: NodeId(1),
        len: 1,
    });

    let mut n = net(Arch::Nox, &t);
    assert!(n.run_to_quiescence(100));
    assert_eq!(
        n.counters().encoded_transfers,
        1,
        "the merge must produce exactly one encoded transfer"
    );
    assert_eq!(n.counters().link_wasted, 0);
    let nox_last = eject_cycles(&n).iter().map(|&(_, c)| c).max().unwrap();

    let mut n = net(Arch::SpecAccurate, &t);
    assert!(n.run_to_quiescence(100));
    assert_eq!(n.counters().collisions, 1, "speculation must fail once");
    assert_eq!(n.counters().link_wasted, 1);
    let acc_last = eject_cycles(&n).iter().map(|&(_, c)| c).max().unwrap();

    assert!(
        nox_last <= acc_last,
        "NoX ({nox_last}) must not trail Spec-Accurate ({acc_last}) in cycles here"
    );
}

/// An uncontended back-to-back stream flows at one packet per cycle on
/// every architecture: with the router draining as fast as the source
/// injects, no FIFO ever holds a second packet, so even Spec-Fast's
/// fresh-packet rule has nothing to throttle.
#[test]
fn uncontended_streams_run_at_full_rate_everywhere() {
    let mut t = Trace::new();
    for i in 0..8 {
        t.push(PacketEvent {
            time_ns: i as f64 * 0.1, // essentially back to back
            src: NodeId(0),
            dest: NodeId(3),
            len: 1,
        });
    }
    for arch in Arch::ALL {
        let mut n = net(arch, &t);
        assert!(n.run_to_quiescence(200));
        let ejects: Vec<u64> = eject_cycles(&n).iter().map(|&(_, c)| c).collect();
        let spacing = (ejects[ejects.len() - 1] - ejects[0]) as f64 / (ejects.len() - 1) as f64;
        assert!(
            (spacing - 1.0).abs() < 0.01,
            "{arch}: expected 1 packet/cycle, got spacing {spacing}"
        );
    }
}

/// Two merging streams create the backlog that exposes each router's
/// contention behaviour: NoX keeps every link cycle productive (zero
/// wasted transitions) and finishes no later than the speculative
/// routers, which must misspeculate at least once (Spec-Fast can instead
/// monopolize the output through self-renewing reservations — unfair but
/// waste-free, which is precisely its §3.1.2 character).
#[test]
fn merging_streams_rank_the_architectures() {
    let mut t = Trace::new();
    for i in 0..6 {
        for src in [0u16, 1] {
            t.push(PacketEvent {
                time_ns: i as f64 * 0.1,
                src: NodeId(src),
                dest: NodeId(3),
                len: 1,
            });
        }
    }
    let t = Trace::from_events(t.events().to_vec());
    let finish = |arch: Arch| {
        let mut n = net(arch, &t);
        assert!(n.run_to_quiescence(500));
        let wasted = n.counters().link_wasted;
        (
            eject_cycles(&n).iter().map(|&(_, c)| c).max().unwrap(),
            wasted,
        )
    };
    let (nox, nox_wasted) = finish(Arch::Nox);
    let (acc, acc_wasted) = finish(Arch::SpecAccurate);
    let (fast, _fast_wasted) = finish(Arch::SpecFast);
    assert_eq!(nox_wasted, 0);
    assert!(
        acc_wasted > 0,
        "Spec-Accurate must misspeculate under merge"
    );
    assert!(
        nox <= acc,
        "NoX ({nox}) must finish no later than Spec-Acc ({acc})"
    );
    assert!(
        nox <= fast,
        "NoX ({nox}) must finish no later than Spec-Fast ({fast})"
    );
}

/// A 9-flit packet crossing the mesh occupies a wormhole: its ejection
/// spans exactly 9 consecutive sink cycles, and a trailing packet on the
/// same path is delayed behind it, never interleaved.
#[test]
fn wormhole_stream_timing() {
    let mut t = Trace::new();
    t.push(PacketEvent {
        time_ns: 0.0,
        src: NodeId(0),
        dest: NodeId(3),
        len: 9,
    });
    t.push(PacketEvent {
        time_ns: 0.1,
        src: NodeId(0),
        dest: NodeId(3),
        len: 1,
    });
    for arch in Arch::ALL {
        let mut n = net(arch, &t);
        assert!(n.run_to_quiescence(200));
        let log = eject_cycles(&n);
        // Tail of the 9-flit packet ejects first; the single-flit follows
        // at least 1 cycle later (it sat behind the stream).
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 0, "{arch}: big packet must finish first");
        assert!(log[1].1 > log[0].1, "{arch}: trailing packet interleaved");
    }
}
