//! Property-based tests of the whole simulator: random traffic on random
//! topologies must conserve every flit, preserve per-packet order, keep
//! payload bits intact through arbitrary XOR encode/decode sequences, and
//! drain deadlock-free — on every router architecture.
//!
//! (Payload and ordering assertions fire *inside* the simulator; these
//! properties drive diverse inputs through them and check the global
//! accounting afterwards.)

use proptest::prelude::*;

use nox_sim::config::{Arch, NetConfig};
use nox_sim::network::Network;
use nox_sim::topology::NodeId;
use nox_sim::trace::{PacketEvent, Trace};

#[derive(Clone, Debug)]
struct RandomTraffic {
    events: Vec<(u16, u16, u16, u16)>, // (time slot, src, dest, len)
    concentration: u8,
}

fn traffic_strategy() -> impl Strategy<Value = RandomTraffic> {
    (1u8..=4).prop_flat_map(|concentration| {
        // 4x4 router grid; cores = 16 * concentration.
        let cores = 16 * concentration as u16;
        let events = prop::collection::vec(
            (
                0u16..500, // injection time slot (~0.5 ns units)
                0..cores,  // src
                0..cores,  // dest
                prop_oneof![Just(1u16), Just(2), Just(9)],
            ),
            1..60,
        );
        events.prop_map(move |events| RandomTraffic {
            events,
            concentration,
        })
    })
}

fn build(t: &RandomTraffic) -> Trace {
    Trace::from_events(
        t.events
            .iter()
            .filter(|&&(_, s, d, _)| s != d)
            .map(|&(slot, s, d, len)| PacketEvent {
                time_ns: slot as f64 * 0.5,
                src: NodeId(s),
                dest: NodeId(d),
                len,
            })
            .collect(),
    )
}

fn config(arch: Arch, concentration: u8) -> NetConfig {
    let mut cfg = NetConfig::small(arch);
    cfg.concentration = concentration;
    if concentration > 1 {
        // Longer clock for the wider router, as in the cmesh preset.
        cfg.clock_ps = nox_sim::config::cmesh_clock_ps(arch);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation on the NoX router over random topologies and traffic.
    #[test]
    fn nox_conserves_all_flits(t in traffic_strategy()) {
        let trace = build(&t);
        let mut net = Network::new(config(Arch::Nox, t.concentration), &trace, (0.0, f64::MAX));
        prop_assert!(net.run_to_quiescence(200_000), "failed to drain");
        prop_assert_eq!(net.counters().packets_ejected, trace.len() as u64);
        prop_assert_eq!(net.counters().flits_injected, net.counters().flits_ejected);
        // NoX never wastes link cycles except on multi-flit aborts.
        prop_assert_eq!(net.counters().link_wasted, net.counters().aborts);
    }

    /// All four architectures agree on *what* is delivered (same packet
    /// set), differing only in timing.
    #[test]
    fn all_architectures_deliver_the_same_packets(t in traffic_strategy()) {
        let trace = build(&t);
        let mut delivered: Option<u64> = None;
        for arch in Arch::ALL {
            let mut net = Network::new(config(arch, t.concentration), &trace, (0.0, f64::MAX));
            prop_assert!(net.run_to_quiescence(400_000), "{} failed to drain", arch);
            let got = net.counters().packets_ejected;
            if let Some(d) = delivered {
                prop_assert_eq!(d, got, "{} delivered a different packet count", arch);
            }
            delivered = Some(got);
        }
    }

    /// The sequential router never drives a wasted link cycle, and the
    /// speculative routers waste exactly one per collision.
    #[test]
    fn wasted_link_cycle_accounting(t in traffic_strategy()) {
        let trace = build(&t);
        let mut net = Network::new(config(Arch::NonSpec, t.concentration), &trace, (0.0, f64::MAX));
        prop_assert!(net.run_to_quiescence(400_000));
        prop_assert_eq!(net.counters().link_wasted, 0);

        for arch in [Arch::SpecFast, Arch::SpecAccurate] {
            let mut net = Network::new(config(arch, t.concentration), &trace, (0.0, f64::MAX));
            prop_assert!(net.run_to_quiescence(400_000));
            prop_assert_eq!(net.counters().link_wasted, net.counters().collisions);
        }
    }

    /// Per-packet latency is at least the ideal unloaded bound (hops + 1
    /// ejection + injection handling), for every packet.
    #[test]
    fn latency_never_beats_physics(t in traffic_strategy()) {
        let trace = build(&t);
        let cfg = config(Arch::Nox, t.concentration);
        let topo = cfg.topology();
        let mut net = Network::new(cfg, &trace, (0.0, f64::MAX));
        net.enable_eject_log();
        prop_assert!(net.run_to_quiescence(200_000));
        for &(pkt, eject_cycle) in net.eject_log().unwrap() {
            let meta = *net.packets().meta(pkt);
            let hops = topo.hops(meta.src, meta.dest) as u64;
            let min_cycles = hops + meta.len as u64;
            prop_assert!(
                eject_cycle - meta.created_cycle >= min_cycles,
                "packet {:?} beat the physical bound",
                pkt
            );
        }
    }
}
