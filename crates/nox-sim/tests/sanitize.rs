//! Sanitized end-to-end runs: every architecture under contention-heavy
//! traffic with the per-cycle conservation audits enabled. Only compiled
//! with the `sanitize` feature (the workspace `nox` facade enables it by
//! default, so `cargo test` at the workspace root runs these).
#![cfg(feature = "sanitize")]

use nox_sim::config::{Arch, NetConfig};
use nox_sim::topology::NodeId;
use nox_sim::trace::{PacketEvent, Trace};
use nox_sim::Network;

/// Hotspot traffic: every node fires at a single destination so the
/// victim router sees sustained multi-way collisions, plus a few long
/// packets to exercise streaming, aborts, and mid-chain credit stalls.
fn contention_trace(cores: u16) -> Trace {
    let mut events = Vec::new();
    for i in 0..cores {
        events.push(PacketEvent {
            time_ns: i as f64 * 0.3,
            src: NodeId(i),
            dest: NodeId(5),
            len: if i % 3 == 0 { 4 } else { 1 },
        });
        events.push(PacketEvent {
            time_ns: 2.0 + i as f64 * 0.2,
            src: NodeId(i),
            dest: NodeId((i + 7) % cores),
            len: 2,
        });
    }
    events.sort_by(|a, b| a.time_ns.total_cmp(&b.time_ns));
    let mut t = Trace::new();
    for e in events {
        t.push(e);
    }
    t
}

#[test]
fn sanitized_contention_run_stays_clean_on_every_arch() {
    for arch in Arch::ALL {
        let cfg = NetConfig::small(arch);
        let mut net = Network::new(cfg, &contention_trace(16), (0.0, f64::MAX));
        net.enable_sanitizer();
        assert!(
            net.run_to_quiescence(20_000),
            "{arch} failed to drain under sanitizer"
        );
        let c = net.counters();
        assert_eq!(c.flits_injected, c.flits_ejected, "{arch} lost flits");
    }
}

#[test]
fn sanitizer_audits_an_idle_network_without_complaint() {
    let mut net = Network::new(NetConfig::small(Arch::Nox), &Trace::new(), (0.0, f64::MAX));
    net.enable_sanitizer();
    net.run(50);
    assert!(net.is_quiescent());
}

#[test]
fn sanitizer_stays_clean_on_a_fully_drained_network() {
    // After the last flit ejects, every structure is empty; continuing
    // to tick must keep every audit clean and move no flits.
    for arch in Arch::ALL {
        let cfg = NetConfig::small(arch);
        let mut net = Network::new(cfg, &contention_trace(16), (0.0, f64::MAX));
        net.enable_sanitizer();
        assert!(
            net.run_to_quiescence(20_000),
            "{arch} failed to drain under sanitizer"
        );
        let drained = *net.counters();
        net.run(500);
        let after = *net.counters();
        assert!(net.is_quiescent(), "{arch} woke up after draining");
        assert_eq!(drained.flits_injected, after.flits_injected);
        assert_eq!(
            drained.flits_ejected, after.flits_ejected,
            "{arch} ejected post-drain"
        );
    }
}

/// A zero-rate fault plan with no dead links, freezes, or retransmission
/// must be completely inert: same counters as a fault-free run, zero
/// fault events, settled from the first cycle — with the sanitizer
/// auditing the combination the whole way.
#[cfg(feature = "faults")]
#[test]
fn zero_rate_fault_plan_is_inert_under_the_sanitizer() {
    use nox_fault::FaultConfig;

    for trace in [contention_trace(16), Trace::new()] {
        let baseline = {
            let mut net = Network::new(NetConfig::small(Arch::Nox), &trace, (0.0, f64::MAX));
            net.enable_sanitizer();
            assert!(net.run_to_quiescence(20_000));
            *net.counters()
        };
        let mut net = Network::new(NetConfig::small(Arch::Nox), &trace, (0.0, f64::MAX));
        net.enable_sanitizer();
        net.enable_faults(FaultConfig::bit_flips(0x5EED, 0.0));
        assert!(
            net.faults_settled(),
            "zero-rate plan not settled at cycle 0"
        );
        assert!(net.run_to_settlement(20_000));
        assert_eq!(
            *net.counters(),
            baseline,
            "zero-rate plan perturbed the run"
        );
        let stats = net.fault_state().unwrap().stats();
        assert_eq!(stats.injected_bit_flips, 0);
        assert_eq!(stats.silent_corruptions, 0);
        assert_eq!(stats.detected_crc, 0);
    }
}
