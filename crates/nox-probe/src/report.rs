//! Machine-readable JSON run reports.
//!
//! One [`run_report`] call turns a [`ProbedRun`] into a self-describing
//! JSON document: configuration, measurement results, the three probe
//! layers (per-router metrics, windowed saturation telemetry, latency
//! decomposition), and the simulator's own wall-clock profile. The schema
//! is versioned via the `schema` field so downstream tooling can evolve.

use nox_core::PortId;
use nox_sim::histogram::LogHistogram;
use nox_sim::probe::Probe;
use nox_sim::stats::LatencyStats;
use nox_sim::topology::NodeId;

use crate::json::Json;
use crate::ProbedRun;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "nox-probe/run-report/v1";

fn latency_block(stats: &LatencyStats, hist: &LogHistogram) -> Json {
    let mut b = Json::obj()
        .field("count", stats.count())
        .field("mean_ns", stats.mean())
        .field("std_dev_ns", stats.std_dev());
    if stats.count() > 0 {
        b = b
            .field("min_ns", stats.min())
            .field("max_ns", stats.max())
            .field("p50_ns", hist.percentile(50.0))
            .field("p95_ns", hist.percentile(95.0))
            .field("p99_ns", hist.percentile(99.0));
    }
    b
}

fn router_block(probe: &Probe, node: NodeId) -> Json {
    let topo = probe.topology();
    let coord = topo.grid().coord(node);
    let m = &probe.totals()[node.index()];
    let cycles = probe.cycles_observed().max(1);

    let mut links = Vec::new();
    for p in 0..topo.ports() {
        let port = PortId(p);
        if !topo.is_local(port) && topo.link_dest(node, port).is_none() {
            continue; // mesh-edge port: no link attached
        }
        let busy = m.link_busy[port.index()];
        let wasted = m.link_wasted[port.index()];
        links.push(
            Json::obj()
                .field("port", format!("{port}"))
                .field("busy", busy)
                .field("wasted", wasted)
                .field("utilization", (busy + wasted) as f64 / cycles as f64),
        );
    }

    let mode_cycles: [u64; 3] = m.mode_cycles.iter().fold([0; 3], |mut acc, per_out| {
        for (a, b) in acc.iter_mut().zip(per_out) {
            *a += b;
        }
        acc
    });

    Json::obj()
        .field("node", u64::from(node.0))
        .field("x", u64::from(coord.x))
        .field("y", u64::from(coord.y))
        .field("max_link_utilization", probe.max_link_utilization(node))
        .field("avg_buffer_occupancy", probe.avg_occupancy(node))
        .field("collisions", m.collisions)
        .field("aborts", m.aborts)
        .field("encoded", m.encoded)
        .field(
            "fsm_occupancy",
            Json::obj()
                .field("recovery", mode_cycles[0])
                .field("scheduled", mode_cycles[1])
                .field("stream", mode_cycles[2]),
        )
        .field("chain_length_hist", m.chain_hist.clone())
        .field("links", Json::Arr(links))
}

/// Builds the full JSON run report for one probed run.
pub fn run_report(run: &ProbedRun) -> Json {
    let probe = &run.probe;
    let r = &run.result;
    let cfg = &r.cfg;
    let topo = probe.topology();

    let routers: Vec<Json> = (0..topo.routers())
        .map(|i| router_block(probe, NodeId(i as u16)))
        .collect();

    let windows: Vec<Json> = probe
        .windows()
        .iter()
        .map(|w| {
            Json::obj()
                .field("start_cycle", w.start_cycle)
                .field("cycles", w.cycles)
                .field("max_link_utilization", w.max_link_util)
                .field("mean_link_utilization", w.mean_link_util)
                .field("saturated_links", w.saturated_links)
                .field("avg_buffer_occupancy", w.avg_occupancy)
                .field("collisions", w.collisions)
                .field("aborts", w.aborts)
                .field("encoded", w.encoded)
        })
        .collect();

    let modes = probe.mode_occupancy();
    let b = probe.breakdown();

    Json::obj()
        .field("schema", SCHEMA)
        .field(
            "config",
            Json::obj()
                .field("arch", format!("{}", cfg.arch))
                .field("width", u64::from(cfg.width))
                .field("height", u64::from(cfg.height))
                .field("concentration", u64::from(cfg.concentration))
                .field("clock_ps", cfg.clock_ps)
                .field("buffer_depth", cfg.buffer_depth),
        )
        .field(
            "result",
            Json::obj()
                .field("cycles", r.cycles)
                .field("drained", r.drained)
                .field("measured_total", r.measured_total)
                .field("measured_ejected", r.measured_ejected)
                .field("avg_latency_ns", r.avg_latency_ns())
                .field("accepted_mbps_per_node", r.accepted_mbps_per_node())
                .field(
                    "accepted_flits_per_node_cycle",
                    r.accepted_flits_per_node_cycle(),
                ),
        )
        .field(
            "latency_decomposition",
            Json::obj()
                .field("total", latency_block(&b.total, &b.total_hist))
                .field("source_queueing", latency_block(&b.queue, &b.queue_hist))
                .field("network", latency_block(&b.network, &b.network_hist)),
        )
        .field(
            "fsm_occupancy",
            Json::obj()
                .field("recovery", modes[0])
                .field("scheduled", modes[1])
                .field("stream", modes[2]),
        )
        .field("chain_length_hist", probe.chain_histogram())
        .field("routers", Json::Arr(routers))
        .field("windows", Json::Arr(windows))
        .field("saturation_onset_cycle", probe.saturation_onset_cycle())
        .field("avg_sink_occupancy", probe.avg_sink_occupancy())
        .field("events_buffered", probe.events().count())
        .field("events_dropped", probe.events_dropped())
        .field("profile", run.profile.to_json())
}

#[cfg(test)]
mod tests {
    use crate::probed_run;
    use nox_sim::config::{Arch, NetConfig};
    use nox_sim::probe::ProbeConfig;
    use nox_sim::sim::RunSpec;
    use nox_sim::topology::NodeId;
    use nox_sim::trace::{PacketEvent, Trace};

    fn contended_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..150u32 {
            for src in [6u16, 9] {
                t.push(PacketEvent {
                    time_ns: i as f64 * 4.0,
                    src: NodeId(src),
                    dest: NodeId(10),
                    len: 1,
                });
            }
        }
        t
    }

    #[test]
    fn report_contains_all_sections() {
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &contended_trace(),
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        let doc = super::run_report(&run).to_string();
        for key in [
            "\"schema\":\"nox-probe/run-report/v1\"",
            "\"routers\"",
            "\"fsm_occupancy\"",
            "\"recovery\"",
            "\"chain_length_hist\"",
            "\"latency_decomposition\"",
            "\"source_queueing\"",
            "\"p99_ns\"",
            "\"windows\"",
            "\"max_link_utilization\"",
            "\"profile\"",
            "\"cycles_per_sec\"",
        ] {
            assert!(doc.contains(key), "report missing {key}: {doc}");
        }
        // 4x4 mesh: 16 router blocks.
        assert_eq!(doc.matches("\"node\":").count(), 16);
    }

    #[test]
    fn contended_nox_run_reports_encoded_activity() {
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &contended_trace(),
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        let doc = super::run_report(&run).to_string();
        // The merge router saw encoded words; the histogram's 2-chain
        // bucket must be non-zero, so the array cannot be all zeros.
        let chain = run.probe.chain_histogram();
        assert!(chain[2] > 0, "no encoded chains recorded: {chain:?}");
        assert!(doc.contains("\"chain_length_hist\":[0,0,"));
    }
}
