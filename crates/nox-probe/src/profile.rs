//! Simulator self-profiling: where the wall-clock time of a run went.
//!
//! The ROADMAP's north star — hot paths measurably faster — needs a
//! trajectory, and a trajectory needs numbers. [`SelfProfile`] records the
//! wall time of each phase of a measured run (warmup, measurement window,
//! drain) and the simulation rate in cycles per second, which is the
//! simulator's own figure of merit independent of the modeled network.

use std::fmt;
use std::time::Duration;

use crate::json::Json;

/// Wall-clock timing of one simulation run, by phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfProfile {
    /// Wall time of the warmup phase.
    pub warmup: Duration,
    /// Wall time of the measurement window.
    pub measure: Duration,
    /// Wall time of the drain phase.
    pub drain: Duration,
    /// Total cycles simulated across all phases.
    pub cycles: u64,
}

impl SelfProfile {
    /// Total wall time across all phases.
    pub fn total(&self) -> Duration {
        self.warmup + self.measure + self.drain
    }

    /// Simulated cycles per wall-clock second, or 0 for an instant run.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.total().as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// The profile as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("warmup_s", self.warmup.as_secs_f64())
            .field("measure_s", self.measure.as_secs_f64())
            .field("drain_s", self.drain.as_secs_f64())
            .field("total_s", self.total().as_secs_f64())
            .field("cycles", self.cycles)
            .field("cycles_per_sec", self.cycles_per_sec())
    }
}

impl fmt::Display for SelfProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles in {:.3} s ({:.2} Mcycles/s; warmup {:.3} s, window {:.3} s, drain {:.3} s)",
            self.cycles,
            self.total().as_secs_f64(),
            self.cycles_per_sec() / 1e6,
            self.warmup.as_secs_f64(),
            self.measure.as_secs_f64(),
            self.drain.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_cycles_over_total() {
        let p = SelfProfile {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(300),
            drain: Duration::from_millis(100),
            cycles: 5_000_000,
        };
        assert!((p.cycles_per_sec() - 1e7).abs() < 1.0);
        assert_eq!(p.total(), Duration::from_millis(500));
    }

    #[test]
    fn instant_run_reports_zero_rate() {
        let p = SelfProfile::default();
        assert_eq!(p.cycles_per_sec(), 0.0);
    }
}
