//! Chrome trace-event export.
//!
//! Converts a probe's event ring buffer into the Trace Event Format that
//! `chrome://tracing` and Perfetto load directly: one complete (`"X"`)
//! event per simulator event, with the router/core as the process id and
//! the port as the thread id, so the timeline groups per-node per-port
//! lanes. Timestamps are in microseconds of simulated time.

use nox_sim::flit::FlitKey;
use nox_sim::probe::{EventKind, Probe, TraceEvent};

use crate::json::Json;

fn flit_label(keys: &[u64]) -> String {
    let parts: Vec<String> = keys
        .iter()
        .map(|&k| {
            let fk = FlitKey::unpack(k);
            format!("p{}.{}", fk.packet.0, fk.seq)
        })
        .collect();
    parts.join("^")
}

fn event_json(e: &TraceEvent, clock_ns: f64) -> Json {
    let (name, cat, args) = match &e.kind {
        EventKind::Inject { packet } => (
            format!("inject p{}", packet.0),
            "packet",
            Json::obj().field("packet", packet.0),
        ),
        EventKind::Send { keys, encoded } => (
            if *encoded {
                format!("send {} (encoded)", flit_label(keys))
            } else {
                format!("send {}", flit_label(keys))
            },
            "link",
            Json::obj()
                .field("flits", keys.len())
                .field("encoded", *encoded),
        ),
        EventKind::Wasted { colliding, abort } => (
            if *abort {
                "abort (invalid word)".to_string()
            } else {
                "collision (invalid word)".to_string()
            },
            "wasted",
            Json::obj()
                .field("colliding", u64::from(*colliding))
                .field("abort", *abort),
        ),
        EventKind::Latch => ("latch decode register".to_string(), "decode", Json::obj()),
        EventKind::Eject { packet } => (
            format!("eject p{}", packet.0),
            "packet",
            Json::obj().field("packet", packet.0),
        ),
        EventKind::Fault { label } => ((*label).to_string(), "fault", Json::obj()),
    };
    Json::obj()
        .field("name", name)
        .field("cat", cat)
        .field("ph", "X")
        .field("ts", e.cycle as f64 * clock_ns / 1_000.0)
        .field("dur", clock_ns / 1_000.0)
        .field("pid", u64::from(e.node.0))
        .field("tid", u64::from(e.port.0))
        .field("args", args)
}

/// Renders profiler span events (from `nox-telemetry`) as a Chrome
/// trace-event JSON document: one complete (`"X"`) event per recorded
/// span, with the phase name as the event name, the worker thread tag as
/// both process and thread id (so each worker gets a lane), and
/// wall-clock microseconds since the process epoch as the timestamp.
/// This is the span-profile counterpart of [`chrome_trace`], which
/// exports *simulated*-time probe events.
pub fn chrome_spans(events: &[nox_telemetry::SpanEvent]) -> String {
    let spans: Vec<Json> = events
        .iter()
        .map(|e| {
            Json::obj()
                .field("name", e.phase.name())
                .field("cat", "profile")
                .field("ph", "X")
                .field("ts", e.start_ns as f64 / 1_000.0)
                .field("dur", e.dur_ns as f64 / 1_000.0)
                .field("pid", u64::from(e.tid))
                .field("tid", u64::from(e.tid))
                .field("args", Json::obj().field("index", u64::from(e.index)))
        })
        .collect();
    Json::obj()
        .field("traceEvents", Json::Arr(spans))
        .field("displayTimeUnit", "ns")
        .to_string()
}

/// Renders the probe's buffered events as a Chrome trace-event JSON
/// document (the `traceEvents` object form, with metadata).
pub fn chrome_trace(probe: &Probe) -> String {
    let clock_ns = probe.clock_ns();
    let events: Vec<Json> = probe.events().map(|e| event_json(e, clock_ns)).collect();
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ns")
        .field(
            "otherData",
            Json::obj()
                .field("clock_ns", clock_ns)
                .field("events_dropped", probe.events_dropped()),
        )
        .to_string()
}

#[cfg(test)]
mod tests {
    use crate::probed_run;
    use nox_sim::config::{Arch, NetConfig};
    use nox_sim::probe::ProbeConfig;
    use nox_sim::sim::RunSpec;
    use nox_sim::topology::NodeId;
    use nox_sim::trace::{PacketEvent, Trace};

    #[test]
    fn span_export_emits_one_lane_per_worker() {
        use nox_telemetry::{phase, SpanEvent};
        let events = [
            SpanEvent {
                phase: phase::EXEC_JOB,
                index: 3,
                tid: 1,
                start_ns: 2_000,
                dur_ns: 500,
            },
            SpanEvent {
                phase: phase::HARNESS_POINT,
                index: 0,
                tid: 2,
                start_ns: 2_100,
                dur_ns: 250,
            },
        ];
        let doc = super::chrome_spans(&events);
        assert!(doc.contains("\"name\":\"exec.job\""));
        assert!(doc.contains("\"name\":\"harness.point\""));
        assert!(doc.contains("\"ts\":2,\"dur\":0.5,\"pid\":1,\"tid\":1"));
        assert!(doc.contains("\"index\":3"));
    }

    #[test]
    fn trace_has_inject_send_eject_lifecycle() {
        let mut t = Trace::new();
        t.push(PacketEvent {
            time_ns: 0.0,
            src: NodeId(0),
            dest: NodeId(15),
            len: 2,
        });
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &t,
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        let doc = super::chrome_trace(&run.probe);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("inject p0"));
        assert!(doc.contains("send p0.0"));
        assert!(doc.contains("send p0.1"));
        assert!(doc.contains("eject p0"));
        assert!(doc.contains("\"ph\":\"X\""));
    }
}
