//! Telemetry analysis and export for probed NoX simulations.
//!
//! The `nox-sim` crate's `probe` feature threads an observer — the
//! [`Probe`] — through the simulator's hot loops; this crate turns what it
//! collects into artifacts:
//!
//! * [`report::run_report`] — a machine-readable JSON run report with
//!   per-router link utilization, NoX FSM occupancy, encoded-chain
//!   histograms, windowed saturation telemetry, per-packet latency
//!   decomposition percentiles, and simulator self-profiling;
//! * [`chrome::chrome_trace`] — the event ring buffer as Chrome
//!   trace-event JSON (load it in `chrome://tracing` or Perfetto);
//! * [`waveform::waveform`] — the same events as the textual waveform
//!   format of the paper's Figure 2/3/7 timing diagrams, for any router
//!   of any run;
//! * [`heatmap::render`] — per-router utilization/occupancy grids.
//!
//! The entry point is [`probed_run`], a drop-in variant of
//! [`nox_sim::sim::run`] that attaches a probe and times each phase:
//!
//! ```
//! use nox_probe::probed_run;
//! use nox_sim::config::{Arch, NetConfig};
//! use nox_sim::probe::ProbeConfig;
//! use nox_sim::sim::RunSpec;
//! use nox_sim::topology::NodeId;
//! use nox_sim::trace::{PacketEvent, Trace};
//!
//! let mut trace = Trace::new();
//! for i in 0..50u32 {
//!     trace.push(PacketEvent {
//!         time_ns: i as f64 * 10.0,
//!         src: NodeId(0),
//!         dest: NodeId(15),
//!         len: 1,
//!     });
//! }
//! let run = probed_run(
//!     NetConfig::small(Arch::Nox),
//!     &trace,
//!     &RunSpec::quick(),
//!     ProbeConfig::default(),
//! );
//! assert!(run.result.drained);
//! let report = nox_probe::report::run_report(&run);
//! assert!(report.to_string().contains("\"routers\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod heatmap;
pub mod profile;
pub mod report;
pub mod waveform;

/// The workspace-wide JSON value type (builder + parser), re-exported
/// from `nox-analysis` so probe reports share one serializer with the
/// harness `--json` outputs, the claims report, and the perf artifact.
pub use nox_analysis::json;

use std::time::Instant;

use nox_sim::config::NetConfig;
use nox_sim::network::Network;
use nox_sim::probe::{Probe, ProbeConfig};
use nox_sim::sim::{RunSpec, SimResult};
use nox_sim::stats::Counters;
use nox_sim::trace::Trace;

pub use json::Json;
pub use profile::SelfProfile;

/// The outcome of one probed simulation run: the ordinary measurement
/// result, the telemetry collector (windows already flushed), and the
/// wall-clock profile.
#[derive(Clone, Debug)]
pub struct ProbedRun {
    /// The standard measurement-harness result.
    pub result: SimResult,
    /// The probe, with [`Probe::finish`] already called.
    pub probe: Probe,
    /// Wall-clock timing of the run's phases.
    pub profile: SelfProfile,
}

/// Runs `trace` through a probed network: identical warmup / measurement
/// window / drain structure to [`nox_sim::sim::run`], with a [`Probe`]
/// attached from cycle zero and per-phase wall-clock timing.
pub fn probed_run(
    cfg: NetConfig,
    trace: &Trace,
    spec: &RunSpec,
    probe_cfg: ProbeConfig,
) -> ProbedRun {
    let window = (spec.warmup_ns, spec.warmup_ns + spec.measure_ns);
    let mut net = Network::new(cfg, trace, window);
    net.enable_probe(probe_cfg);
    let clock = cfg.clock_ns();

    let warmup_cycles = (spec.warmup_ns / clock).ceil() as u64;
    let window_cycles = (spec.measure_ns / clock).ceil() as u64;
    let drain_cycles = (spec.drain_ns / clock).ceil() as u64;

    // Self-profiling of the *harness* (host wall time per phase), reported
    // alongside — never inside — the simulation results; the simulated
    // artifact bytes do not depend on these readings.
    let t0 = Instant::now(); // detlint: allow(wall_clock)
    net.run(warmup_cycles);
    let t1 = Instant::now(); // detlint: allow(wall_clock)
    let at_open = *net.counters();
    net.run(window_cycles);
    let t2 = Instant::now(); // detlint: allow(wall_clock)
    let at_close = *net.counters();

    let mut remaining = drain_cycles;
    while remaining > 0 && net.measured_ejected() < net.measured_total() {
        net.step();
        remaining -= 1;
    }
    let t3 = Instant::now(); // detlint: allow(wall_clock)

    let result = SimResult {
        cfg,
        cycles: net.cycle(),
        window_counters: delta(&at_open, &at_close),
        latency_ns: *net.latency_measured_ns(),
        latency_hist: net.latency_histogram_ns().clone(),
        measured_total: net.measured_total(),
        measured_ejected: net.measured_ejected(),
        window_ns: window_cycles as f64 * clock,
        drained: net.measured_ejected() == net.measured_total(),
    };
    let profile = SelfProfile {
        warmup: t1 - t0,
        measure: t2 - t1,
        drain: t3 - t2,
        cycles: net.cycle(),
    };
    let mut probe = net.take_probe().expect("probe was attached above");
    probe.finish();

    ProbedRun {
        result,
        probe,
        profile,
    }
}

fn delta(open: &Counters, close: &Counters) -> Counters {
    let mut d = Counters::new();
    macro_rules! sub {
        ($($f:ident),+ $(,)?) => { $( d.$f = close.$f - open.$f; )+ };
    }
    sub!(
        cycles,
        link_flits,
        link_wasted,
        xbar_traversals,
        xbar_inputs_active,
        buffer_writes,
        buffer_reads,
        arbitrations,
        decode_xors,
        decode_reg_writes,
        collisions,
        aborts,
        encoded_transfers,
        wasted_reservations,
        flits_injected,
        flits_ejected,
        packets_injected,
        packets_ejected,
    );
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use nox_sim::config::Arch;
    use nox_sim::topology::NodeId;
    use nox_sim::trace::PacketEvent;

    fn light_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..200u32 {
            t.push(PacketEvent {
                time_ns: i as f64 * 5.0,
                src: NodeId((i % 16) as u16),
                dest: NodeId(((i * 7 + 3) % 16) as u16),
                len: 1 + (i % 3) as u16,
            });
        }
        t
    }

    #[test]
    fn probed_run_matches_plain_run() {
        // Observation must not perturb the simulation: the measurement
        // results of a probed run and a plain run are identical.
        for arch in Arch::ALL {
            let spec = RunSpec::quick();
            let plain = nox_sim::sim::run(NetConfig::small(arch), &light_trace(), &spec);
            let probed = probed_run(
                NetConfig::small(arch),
                &light_trace(),
                &spec,
                ProbeConfig::default(),
            );
            assert_eq!(probed.result.cycles, plain.cycles, "{arch}");
            assert_eq!(
                probed.result.window_counters, plain.window_counters,
                "{arch}"
            );
            assert_eq!(
                probed.result.latency_ns.mean(),
                plain.latency_ns.mean(),
                "{arch}"
            );
            assert_eq!(probed.result.drained, plain.drained, "{arch}");
        }
    }

    #[test]
    fn profile_covers_all_cycles() {
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &light_trace(),
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        assert_eq!(run.profile.cycles, run.result.cycles);
        assert_eq!(run.probe.cycles_observed(), run.result.cycles);
        assert!(run.profile.cycles_per_sec() > 0.0);
    }
}
