//! A minimal JSON document builder.
//!
//! The build environment is fully offline (no serde), so the report
//! exporters construct documents from this small value type and serialize
//! them with [`std::fmt::Display`]. Only what the exporters need: objects
//! preserve insertion order, floats render via Rust's shortest-roundtrip
//! `Display` (which never emits `NaN`/`inf` — those become `null`), and
//! `u64` counters are kept lossless rather than squeezed through `f64`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered losslessly.
    UInt(u64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Serializes the document to a string (single line).
    pub fn to_string_compact(&self) -> String {
        self.to_string()
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n.into())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj()
            .field("name", "sweep")
            .field("drained", true)
            .field("count", 42u64)
            .field("ratio", 0.5)
            .field("missing", Json::Null)
            .field("xs", vec![1u64, 2, 3]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"sweep","drained":true,"count":42,"ratio":0.5,"missing":null,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(doc.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn u64_counters_are_lossless() {
        let big = u64::MAX - 1;
        assert_eq!(Json::UInt(big).to_string(), format!("{big}"));
    }

    #[test]
    fn option_maps_to_null_or_value() {
        assert_eq!(Json::from(None::<u64>).to_string(), "null");
        assert_eq!(Json::from(Some(7u64)).to_string(), "7");
    }
}
