//! Textual waveform rendering.
//!
//! Replays a router's slice of the event trace in the same textual format
//! the `timing_diagram` example uses for the paper's Figure 2/3/7
//! diagrams — `cycle N: out E = p3.0^p5.0 (encoded)` — so *any* simulated
//! run can be inspected cycle by cycle at any router, not just the
//! hand-scripted figures.

use std::fmt::Write as _;

use nox_core::PortId;
use nox_sim::flit::FlitKey;
use nox_sim::probe::{EventKind, Probe, TraceEvent};
use nox_sim::topology::{NodeId, Topology};

fn port_label(topo: &Topology, port: PortId) -> String {
    if topo.is_local(port) {
        if topo.n_locals() > 1 {
            format!("L{}", port.0)
        } else {
            "L".to_string()
        }
    } else {
        format!("{}", topo.port_direction(port))
    }
}

fn flit_label(keys: &[u64]) -> String {
    let parts: Vec<String> = keys
        .iter()
        .map(|&k| {
            let fk = FlitKey::unpack(k);
            format!("p{}.{}", fk.packet.0, fk.seq)
        })
        .collect();
    parts.join("^")
}

fn event_line(topo: &Topology, e: &TraceEvent) -> String {
    let port = port_label(topo, e.port);
    match &e.kind {
        EventKind::Inject { packet } => format!("inject p{} at core", packet.0),
        EventKind::Send { keys, encoded } => {
            if *encoded {
                format!("out {port} = {} (encoded)", flit_label(keys))
            } else {
                format!("out {port} = {}", flit_label(keys))
            }
        }
        EventKind::Wasted { colliding, abort } => {
            if *abort {
                format!("out {port} = XX (abort, {colliding} colliding)")
            } else {
                format!("out {port} = XX (collision, {colliding} colliding)")
            }
        }
        EventKind::Latch => format!("in  {port} latch into decode register"),
        EventKind::Eject { packet } => format!("eject p{} at core", packet.0),
        EventKind::Fault { label } => format!("fault {port}: {label}"),
    }
}

/// Renders the buffered events of one node as a textual waveform, one
/// line per event, in cycle order. `node` selects a router for link-level
/// events; inject/eject events are attributed to cores, so on the paper
/// mesh (concentration 1, where core id == router id) the full packet
/// lifecycle appears in one listing.
///
/// Returns a note instead of an empty string when the node saw no events
/// (or they were dropped from the bounded ring).
pub fn waveform(probe: &Probe, node: NodeId) -> String {
    let topo = probe.topology();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "waveform for node {} ({} events buffered, {} dropped)",
        node.0,
        probe.events().count(),
        probe.events_dropped()
    );
    // Eject events are stamped one cycle after the step that latched them,
    // so the ring is not strictly cycle-ordered; a stable sort restores
    // chronological order while keeping same-cycle insertion order.
    let mut events: Vec<&TraceEvent> = probe.events().filter(|e| e.node == node).collect();
    events.sort_by_key(|e| e.cycle);
    for e in &events {
        let _ = writeln!(out, "  cycle {}: {}", e.cycle, event_line(&topo, e));
    }
    if events.is_empty() {
        let _ = writeln!(
            out,
            "  (no events at this node; the ring buffer holds the most recent {} events)",
            probe.config().ring_capacity
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probed_run;
    use nox_sim::config::{Arch, NetConfig};
    use nox_sim::probe::ProbeConfig;
    use nox_sim::sim::RunSpec;
    use nox_sim::trace::{PacketEvent, Trace};

    #[test]
    fn waveform_shows_encoded_collision_at_merge_router() {
        // Equidistant sources 6 and 9 collide at router 10 (see the probe
        // module's tests for the geometry).
        let mut t = Trace::new();
        for i in 0..30u32 {
            for src in [6u16, 9] {
                t.push(PacketEvent {
                    time_ns: i as f64 * 4.0,
                    src: NodeId(src),
                    dest: NodeId(10),
                    len: 1,
                });
            }
        }
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &t,
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        let wave = waveform(&run.probe, NodeId(10));
        assert!(wave.contains("(encoded)"), "no encoded line:\n{wave}");
        assert!(wave.contains("latch into decode register"), "{wave}");
        assert!(wave.contains("eject p"), "{wave}");
        assert!(wave.contains("out L = "), "{wave}");
    }

    #[test]
    fn quiet_node_renders_placeholder() {
        let mut t = Trace::new();
        t.push(PacketEvent {
            time_ns: 0.0,
            src: NodeId(0),
            dest: NodeId(1),
            len: 1,
        });
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &t,
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        // Node 15 is far from the 0 -> 1 path.
        let wave = waveform(&run.probe, NodeId(15));
        assert!(wave.contains("no events at this node"), "{wave}");
    }
}
