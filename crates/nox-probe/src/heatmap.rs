//! Per-router heatmap rendering.
//!
//! Renders the probe's whole-run per-router metrics as text grids laid
//! out like the mesh itself (row 0 at the top): link utilization shows
//! which links saturate first, buffer occupancy shows where queueing
//! builds — the spatial view the paper's network-global counters cannot
//! give.

use std::fmt::Write as _;

use nox_sim::probe::Probe;
use nox_sim::topology::{Coord, NodeId};

/// One labelled grid of per-router values.
fn grid(probe: &Probe, title: &str, value: impl Fn(NodeId) -> f64, unit: &str) -> String {
    let mesh = probe.topology().grid();
    let mut out = String::new();
    let _ = writeln!(out, "{title} ({unit})");
    // Column header.
    let _ = write!(out, "      ");
    for x in 0..mesh.width() {
        let _ = write!(out, " x={x:<4}");
    }
    let _ = writeln!(out);
    for y in 0..mesh.height() {
        let _ = write!(out, "  y={y:<2}");
        for x in 0..mesh.width() {
            let n = mesh.node(Coord { x, y });
            let _ = write!(out, " {:>5.1}", value(n));
        }
        let _ = writeln!(out);
    }
    out
}

/// Maximum output-link utilization per router, in percent of cycles.
pub fn utilization_grid(probe: &Probe) -> String {
    grid(
        probe,
        "link utilization, max over a router's outputs",
        |n| probe.max_link_utilization(n) * 100.0,
        "% of cycles",
    )
}

/// Mean total input-buffer occupancy per router, in flits.
pub fn occupancy_grid(probe: &Probe) -> String {
    grid(
        probe,
        "mean input-buffer occupancy",
        |n| probe.avg_occupancy(n),
        "flits, summed over a router's inputs",
    )
}

/// Renders both grids plus a saturation note.
pub fn render(probe: &Probe) -> String {
    let mut out = String::new();
    out.push_str(&utilization_grid(probe));
    out.push('\n');
    out.push_str(&occupancy_grid(probe));
    out.push('\n');
    match probe.saturation_onset_cycle() {
        Some(c) => {
            let _ = writeln!(
                out,
                "saturation onset: first window with a link at >= {:.0}% utilization starts at cycle {c}",
                nox_sim::probe::SATURATION_UTIL * 100.0
            );
        }
        None => {
            let _ = writeln!(
                out,
                "saturation onset: none (no link reached {:.0}% utilization in any window)",
                nox_sim::probe::SATURATION_UTIL * 100.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probed_run;
    use nox_sim::config::{Arch, NetConfig};
    use nox_sim::probe::ProbeConfig;
    use nox_sim::sim::RunSpec;
    use nox_sim::trace::{PacketEvent, Trace};

    #[test]
    fn grids_have_mesh_shape_and_show_hotspot() {
        // Everyone floods node 5: its router must stand out in both grids.
        let mut t = Trace::new();
        for i in 0..300u32 {
            for src in 0..16u16 {
                if src != 5 {
                    t.push(PacketEvent {
                        time_ns: i as f64 * 2.0,
                        src: NodeId(src),
                        dest: NodeId(5),
                        len: 1,
                    });
                }
            }
        }
        let run = probed_run(
            NetConfig::small(Arch::Nox),
            &t,
            &RunSpec::quick(),
            ProbeConfig::default(),
        );
        let text = render(&run.probe);
        // 4x4 mesh: 4 row labels per grid, 2 grids.
        assert_eq!(text.matches("y=0").count(), 2, "{text}");
        assert_eq!(text.matches("y=3").count(), 2, "{text}");
        assert!(text.contains("x=3"), "{text}");
        assert!(text.contains("saturation onset"), "{text}");
        // The hotspot's ejection link runs hot.
        assert!(
            run.probe.max_link_utilization(NodeId(5)) > 0.5,
            "hotspot not hot: {text}"
        );
    }
}
